//! Shared helpers for the integration-test package.
