//! Behavioural verification of the quantum arithmetic (Draper adders and
//! the Beauregard modular blocks) against the simulator: every block must
//! implement its classical specification on computational basis states.

use qcor_circuit::arith::{c_mult_mod, cc_phi_add_mod, phi_add_const, phi_sub_const, ShorLayout};
use qcor_circuit::library::{append_iqft, append_qft};
use qcor_circuit::Circuit;
use qcor_sim::{run_once, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Prepare basis value `v` on the (little-endian) qubit list.
fn encode(c: &mut Circuit, qubits: &[usize], v: u64) {
    for (pos, &q) in qubits.iter().enumerate() {
        if v >> pos & 1 == 1 {
            c.x(q);
        }
    }
}

/// Read the (deterministic) basis state off `state`, asserting it is a
/// computational basis state; returns the full index.
fn decode_basis_index(state: &StateVector) -> usize {
    let mut idx = None;
    for i in 0..state.len() {
        let p = state.amp(i).norm_sqr();
        if p > 0.99 {
            idx = Some(i);
        } else {
            assert!(p < 1e-6, "state is not a basis state: amp[{i}] has p={p}");
        }
    }
    idx.expect("no dominant basis state")
}

fn extract(idx: usize, qubits: &[usize]) -> u64 {
    let mut v = 0u64;
    for (pos, &q) in qubits.iter().enumerate() {
        if idx >> q & 1 == 1 {
            v |= 1 << pos;
        }
    }
    v
}

#[test]
fn draper_adder_adds_constants() {
    // b (4 qubits) += a (mod 16) for a grid of (b0, a).
    let m = 4;
    let qubits: Vec<usize> = (0..m).collect();
    let mut rng = StdRng::seed_from_u64(0);
    for b0 in [0u64, 1, 5, 9, 15] {
        for a in [0u64, 1, 3, 7, 12, 15] {
            let mut c = Circuit::new(m);
            encode(&mut c, &qubits, b0);
            append_qft(&mut c, &qubits);
            phi_add_const(&mut c, &qubits, a);
            append_iqft(&mut c, &qubits);
            let mut state = StateVector::new(m);
            run_once(&mut state, &c, &mut rng);
            let got = extract(decode_basis_index(&state), &qubits);
            assert_eq!(got, (b0 + a) % 16, "b0={b0} a={a}");
        }
    }
}

#[test]
fn draper_subtractor_subtracts() {
    let m = 4;
    let qubits: Vec<usize> = (0..m).collect();
    let mut rng = StdRng::seed_from_u64(1);
    for b0 in [0u64, 3, 8, 15] {
        for a in [0u64, 1, 9, 15] {
            let mut c = Circuit::new(m);
            encode(&mut c, &qubits, b0);
            append_qft(&mut c, &qubits);
            phi_sub_const(&mut c, &qubits, a);
            append_iqft(&mut c, &qubits);
            let mut state = StateVector::new(m);
            run_once(&mut state, &c, &mut rng);
            let got = extract(decode_basis_index(&state), &qubits);
            assert_eq!(got, (b0 + 16 - a) % 16, "b0={b0} a={a}");
        }
    }
}

#[test]
fn modular_adder_is_addition_mod_n() {
    // Beauregard ΦADDMOD on N = 15 with both controls held |1⟩:
    // b ← (b + a) mod 15, ancilla restored.
    let n_mod = 15u64;
    let layout = ShorLayout::for_modulus(n_mod);
    let total = layout.num_qubits();
    let mut rng = StdRng::seed_from_u64(2);
    // Use x[0] and ctrl as the two controls.
    let (c0, c1) = (layout.ctrl, layout.x[0]);
    for b0 in [0u64, 1, 7, 14] {
        for a in [0u64, 1, 8, 14] {
            let mut c = Circuit::new(total);
            c.x(c0).x(c1);
            encode(&mut c, &layout.b, b0);
            append_qft(&mut c, &layout.b);
            cc_phi_add_mod(&mut c, c0, c1, &layout.b, layout.anc, a, n_mod);
            append_iqft(&mut c, &layout.b);
            let mut state = StateVector::new(total);
            run_once(&mut state, &c, &mut rng);
            let idx = decode_basis_index(&state);
            assert_eq!(extract(idx, &layout.b), (b0 + a) % n_mod, "b0={b0} a={a}");
            assert_eq!(idx >> layout.anc & 1, 0, "ancilla must be restored (b0={b0}, a={a})");
        }
    }
}

#[test]
fn modular_adder_control_off_is_identity() {
    let n_mod = 15u64;
    let layout = ShorLayout::for_modulus(n_mod);
    let total = layout.num_qubits();
    let mut rng = StdRng::seed_from_u64(3);
    let (c0, c1) = (layout.ctrl, layout.x[0]);
    // Only one control set: must be the identity on b.
    let mut c = Circuit::new(total);
    c.x(c0);
    encode(&mut c, &layout.b, 9);
    append_qft(&mut c, &layout.b);
    cc_phi_add_mod(&mut c, c0, c1, &layout.b, layout.anc, 7, n_mod);
    append_iqft(&mut c, &layout.b);
    let mut state = StateVector::new(total);
    run_once(&mut state, &c, &mut rng);
    let idx = decode_basis_index(&state);
    assert_eq!(extract(idx, &layout.b), 9);
    assert_eq!(idx >> layout.anc & 1, 0);
}

#[test]
fn controlled_multiplier_accumulates_ax() {
    // CMULT(a) mod N: b ← b + a·x (mod N) with the control set.
    let n_mod = 15u64;
    let layout = ShorLayout::for_modulus(n_mod);
    let total = layout.num_qubits();
    let mut rng = StdRng::seed_from_u64(4);
    for x0 in [1u64, 3, 7] {
        for b0 in [0u64, 5] {
            for a in [2u64, 7, 11] {
                let mut c = Circuit::new(total);
                c.x(layout.ctrl);
                encode(&mut c, &layout.x, x0);
                encode(&mut c, &layout.b, b0);
                c_mult_mod(&mut c, layout.ctrl, &layout.x, &layout.b, layout.anc, a, n_mod);
                let mut state = StateVector::new(total);
                run_once(&mut state, &c, &mut rng);
                let idx = decode_basis_index(&state);
                assert_eq!(extract(idx, &layout.b), (b0 + a * x0) % n_mod, "x={x0} b={b0} a={a}");
                assert_eq!(extract(idx, &layout.x), x0, "x register must be preserved");
                assert_eq!(idx >> layout.anc & 1, 0);
            }
        }
    }
}

#[test]
fn full_modexp_step_on_superposition_preserves_norm() {
    // Not just basis states: a superposed control must still give a valid
    // normalized state (the QPE situation).
    let n_mod = 15u64;
    let layout = ShorLayout::for_modulus(n_mod);
    let step = layout.controlled_modexp_step(7, 1, n_mod); // U_{7²}=U_4
    let mut rng = StdRng::seed_from_u64(5);
    let mut c = Circuit::new(layout.num_qubits());
    c.h(layout.ctrl);
    c.x(layout.x[0]); // x = 1
    c.extend(&step);
    let mut state = StateVector::new(layout.num_qubits());
    run_once(&mut state, &c, &mut rng);
    assert!((state.norm_sqr() - 1.0).abs() < 1e-9);
    // The two branches: ctrl=0 keeps x=1; ctrl=1 maps x to 4.
    let idx_off = 1usize << layout.x[0];
    let mut idx_on = 1usize << layout.ctrl;
    idx_on |= 1 << layout.x[2]; // 4 = bit 2
    assert!((state.amp(idx_off).norm_sqr() - 0.5).abs() < 1e-9);
    assert!((state.amp(idx_on).norm_sqr() - 0.5).abs() < 1e-9);
}
