//! Cross-crate property tests: kernels written as XASM text, compiled,
//! executed through the accelerator stack, must behave identically to the
//! same circuits driven directly through the simulator — at any pool size
//! and with either cloneable backend instance.

use proptest::prelude::*;
use qcor_circuit::{library, xasm, Circuit};
use qcor_pool::ThreadPool;
use qcor_sim::{
    derive_stream_seed, run_once_interpreted, run_sharded, run_shots, run_shots_task_parallel, AmpShards,
    CompiledCircuit, RunConfig, ShotPlan, StateVector,
};
use qcor_xacc::{registry, AcceleratorBuffer, ExecOptions, HetMap};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Generate a small random XASM kernel source over 3 qubits ending with
/// measurements.
fn xasm_source() -> impl Strategy<Value = String> {
    let gate = prop_oneof![
        (0usize..3).prop_map(|q| format!("H(q[{q}]);")),
        (0usize..3).prop_map(|q| format!("X(q[{q}]);")),
        (0usize..3).prop_map(|q| format!("T(q[{q}]);")),
        ((0usize..3), (-3.0f64..3.0)).prop_map(|(q, t)| format!("Ry(q[{q}], {t});")),
        ((0usize..3), (0usize..3))
            .prop_filter_map("distinct", |(a, b)| { (a != b).then(|| format!("CX(q[{a}], q[{b}]);")) }),
    ];
    prop::collection::vec(gate, 0..12).prop_map(|gates| {
        format!(
            "__qpu__ void k(qreg q) {{ {} for (int i = 0; i < q.size(); i++) {{ Measure(q[i]); }} }}",
            gates.join(" ")
        )
    })
}

const BUILDER_QUBITS: usize = 4;

/// Encoded random builder-circuit ops: `(kind, a, b, theta)` tuples
/// decoded by [`build_circuit`]. Includes the gate classes the pair-fusing
/// compiler treats specially: dense runs (pair fusion into `Dense2`),
/// swaps and controlled swaps (operand relabeling), multi-controlled
/// entanglers, and optional mid-circuit measure/reset boundaries.
fn builder_ops() -> impl Strategy<Value = Vec<(u8, usize, usize, f64)>> {
    prop::collection::vec(
        ((0u8..12), (0usize..BUILDER_QUBITS), (0usize..BUILDER_QUBITS), (-3.0f64..3.0)),
        0..24,
    )
}

/// Decode [`builder_ops`] tuples into a circuit. Operand clashes (e.g. a
/// swap of a qubit with itself) skip the op rather than filter the input,
/// so every generated vector is a valid circuit. `with_boundaries`
/// enables the mid-circuit `Measure`/`Reset` ops (kinds 10/11); without
/// it those kinds fall back to unitary gates so the circuit stays
/// measurement-free for amplitude comparison.
fn build_circuit(ops: &[(u8, usize, usize, f64)], with_boundaries: bool) -> Circuit {
    let mut c = Circuit::new(BUILDER_QUBITS);
    for &(kind, a, b, theta) in ops {
        match kind {
            0 => {
                c.h(a);
            }
            1 => {
                c.t(a);
            }
            2 => {
                c.ry(a, theta);
            }
            3 => {
                c.rz(a, theta);
            }
            4 => {
                c.s(a).h(a).tdg(a);
            }
            5 if a != b => {
                c.cx(a, b);
            }
            6 if a != b => {
                c.cz(a, b);
            }
            7 if a != b => {
                c.swap(a, b);
            }
            8 if a != b => {
                let ctrl = (a + b) % BUILDER_QUBITS;
                if ctrl != a && ctrl != b {
                    c.cswap(ctrl, a, b);
                }
            }
            9 if a != b => {
                let t = (a + b) % BUILDER_QUBITS;
                if t != a && t != b {
                    c.ccx(a, b, t);
                }
            }
            10 => {
                if with_boundaries {
                    c.measure(a);
                } else {
                    c.x(a);
                }
            }
            11 => {
                if with_boundaries {
                    c.reset(a);
                } else {
                    c.crz(a, (a + 1) % BUILDER_QUBITS, theta);
                }
            }
            _ => {}
        }
    }
    c
}

fn counts_via_accelerator(circuit: &Circuit, threads: usize, seed: u64) -> qcor_sim::Counts {
    let params = HetMap::new().with("threads", threads);
    let acc = registry::get_accelerator("qpp", &params).unwrap();
    let mut buf = AcceleratorBuffer::with_name("prop", circuit.num_qubits());
    acc.execute(&mut buf, circuit, &ExecOptions::with_shots(64).seeded(seed)).unwrap();
    buf.measurements().clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn accelerator_matches_direct_simulation(src in xasm_source(), seed in 0u64..500) {
        let circuit = xasm::parse_kernel(&src, 3).unwrap().bind(&[]).unwrap();
        let direct = run_shots(
            &circuit,
            Arc::new(ThreadPool::new(1)),
            &RunConfig { shots: 64, seed: Some(seed), ..RunConfig::default() },
        );
        let via_acc = counts_via_accelerator(&circuit, 1, seed);
        prop_assert_eq!(direct, via_acc);
    }

    #[test]
    fn pool_size_does_not_change_seeded_counts(src in xasm_source(), seed in 0u64..500) {
        let circuit = xasm::parse_kernel(&src, 3).unwrap().bind(&[]).unwrap();
        let config = RunConfig { shots: 48, seed: Some(seed), ..RunConfig::default() };
        let seq = run_shots(&circuit, Arc::new(ThreadPool::new(1)), &config);
        let par = run_shots(&circuit, Arc::new(ThreadPool::new(3)), &config);
        prop_assert_eq!(seq, par, "thread count must never affect results");
    }

    #[test]
    fn distinct_cloneable_instances_agree(src in xasm_source(), seed in 0u64..500) {
        let circuit = xasm::parse_kernel(&src, 3).unwrap().bind(&[]).unwrap();
        let a = counts_via_accelerator(&circuit, 1, seed);
        let b = counts_via_accelerator(&circuit, 2, seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn total_shots_always_conserved(src in xasm_source(), seed in 0u64..500) {
        let circuit = xasm::parse_kernel(&src, 3).unwrap().bind(&[]).unwrap();
        let counts = counts_via_accelerator(&circuit, 1, seed);
        let total: usize = counts.values().sum();
        prop_assert_eq!(total, 64);
        for bits in counts.keys() {
            prop_assert_eq!(bits.len(), 3, "every qubit is measured exactly once");
        }
    }

    // ---- batched shot scheduler properties ------------------------------

    /// Merged counts from the batched scheduler always sum to
    /// `config.shots`, for arbitrary (shots, tasks, chunk_shots) — both via
    /// the task-parallel entry point and via a plain `run_shots`.
    #[test]
    fn scheduler_merged_counts_sum_to_shots(
        shots in 0usize..300,
        tasks in 1usize..6,
        chunk in 0usize..40,
        seed in 0u64..500,
    ) {
        let circuit = library::bell_kernel();
        // chunk 0 encodes "no explicit override" (adaptive granularity).
        let chunk_shots = (chunk > 0).then_some(chunk);
        let config = RunConfig { shots, seed: Some(seed), chunk_shots, ..RunConfig::default() };
        let merged = run_shots_task_parallel(&circuit, tasks, 1, &config);
        prop_assert_eq!(merged.values().sum::<usize>(), shots);
        let direct = run_shots(&circuit, Arc::new(ThreadPool::new(2)), &config);
        prop_assert_eq!(direct.values().sum::<usize>(), shots);
    }

    /// The chunk partition covers `0..shots` exactly once: chunks are
    /// contiguous, in order, non-empty, and their lengths sum to `shots` —
    /// for explicit chunk sizes and for the task-capped planner.
    #[test]
    fn shot_plan_partitions_cover_exactly_once(
        shots in 0usize..5000,
        tasks in 1usize..9,
        chunk in 1usize..700,
    ) {
        let explicit = ShotPlan::with_chunk_shots(shots, chunk);
        let config = RunConfig { shots, chunk_shots: Some(chunk), ..RunConfig::default() };
        let planned = ShotPlan::for_tasks(&library::bell_kernel(), &config, tasks);
        for plan in [explicit, planned] {
            let mut next = 0usize;
            let mut chunks = 0usize;
            for span in plan.chunks() {
                prop_assert_eq!(span.start, next, "chunks must be contiguous and ordered");
                prop_assert!(!span.is_empty(), "no chunk may be empty");
                next = span.end;
                chunks += 1;
            }
            prop_assert_eq!(next, shots, "chunks must cover 0..shots");
            prop_assert_eq!(chunks, plan.num_chunks());
        }
    }

    /// A fixed (seed, tasks, chunk_shots) schedule is reproducible: two
    /// runs merge to byte-identical counts, whatever the pool size.
    #[test]
    fn scheduler_is_deterministic_for_fixed_tuple(
        shots in 0usize..200,
        tasks in 1usize..6,
        chunk in 0usize..30,
        seed in 0u64..500,
    ) {
        let circuit = library::ghz_kernel(3);
        let chunk_shots = (chunk > 0).then_some(chunk);
        let config = RunConfig { shots, seed: Some(seed), chunk_shots, ..RunConfig::default() };
        let a = run_shots_task_parallel(&circuit, tasks, 1, &config);
        let b = run_shots_task_parallel(&circuit, tasks, 2, &config);
        prop_assert_eq!(a, b);
    }

    // ---- compiled (fused) vs interpreted execution ----------------------

    /// The compiled replay of a random kernel produces the same amplitudes
    /// as the interpreted executor to 1e-12 — gate fusion must be exactly
    /// circuit-equivalent, not just statistically close. (Measurements are
    /// stripped so the comparison sees the full unitary prefix.)
    #[test]
    fn fused_and_unfused_amplitudes_agree(src in xasm_source(), seed in 0u64..500) {
        let circuit = xasm::parse_kernel(&src, 3).unwrap().bind(&[]).unwrap();
        let mut unitary = Circuit::new(circuit.num_qubits());
        for inst in circuit.instructions() {
            if inst.gate.is_unitary() {
                unitary.push(inst.clone());
            }
        }
        let mut interp = StateVector::new(3);
        let mut fused = StateVector::new(3);
        let mut rng1 = StdRng::seed_from_u64(seed);
        let mut rng2 = StdRng::seed_from_u64(seed);
        run_once_interpreted(&mut interp, &unitary, &mut rng1);
        let compiled = CompiledCircuit::compile(&unitary);
        prop_assert!(compiled.len() <= compiled.source_len(), "fusion must never grow the op list");
        compiled.run_once(&mut fused, &mut rng2);
        for (a, b) in interp.amplitudes().iter().zip(fused.amplitudes()) {
            prop_assert!(a.approx_eq(*b, 1e-12), "fused {b} != interpreted {a}");
        }
    }

    /// Seeded counts are identical with fusion on and off, across the full
    /// scheduler (random circuits with mid-stream measurements included):
    /// both executors consume the same RNG stream in the same order, so
    /// the `(seed, tasks, chunk_shots)` determinism contract holds across
    /// the fusion knob.
    #[test]
    fn fused_and_unfused_seeded_counts_identical(
        src in xasm_source(),
        seed in 0u64..500,
        chunk in 0usize..20,
    ) {
        let circuit = xasm::parse_kernel(&src, 3).unwrap().bind(&[]).unwrap();
        let chunk_shots = (chunk > 0).then_some(chunk);
        let fused_cfg = RunConfig {
            shots: 48, seed: Some(seed), chunk_shots, fusion: Some(true), ..RunConfig::default()
        };
        let interp_cfg = RunConfig { fusion: Some(false), ..fused_cfg.clone() };
        let fused = run_shots(&circuit, Arc::new(ThreadPool::new(1)), &fused_cfg);
        let interp = run_shots(&circuit, Arc::new(ThreadPool::new(2)), &interp_cfg);
        prop_assert_eq!(fused, interp, "fusion knob must not change seeded counts");
    }

    // ---- two-qubit block fusion + swap relabeling -----------------------

    /// The pair-fusing compiler (Dense2 blocks, swap relabeling, the
    /// permutation flush) is exactly circuit-equivalent on random
    /// swap-heavy builder circuits: fused amplitudes match the interpreted
    /// executor to 1e-12.
    #[test]
    fn pair_fused_swap_circuits_amplitudes_agree(
        ops in builder_ops(),
        seed in 0u64..500,
    ) {
        let circuit = build_circuit(&ops, false);
        let mut interp = StateVector::new(BUILDER_QUBITS);
        let mut fused = StateVector::new(BUILDER_QUBITS);
        run_once_interpreted(&mut interp, &circuit, &mut StdRng::seed_from_u64(seed));
        let compiled = CompiledCircuit::compile(&circuit);
        compiled.run_once(&mut fused, &mut StdRng::seed_from_u64(seed));
        for (a, b) in interp.amplitudes().iter().zip(fused.amplitudes()) {
            prop_assert!(a.approx_eq(*b, 1e-12), "fused {b} != interpreted {a}");
        }
    }

    /// Mid-circuit `Measure`/`Reset` instructions are hard fusion
    /// boundaries: with random swaps and entanglers around them, fused and
    /// interpreted execution still consume identical RNG streams and merge
    /// identical seeded counts through the full scheduler.
    #[test]
    fn pair_fused_mid_measure_counts_identical(
        ops in builder_ops(),
        seed in 0u64..500,
        chunk in 0usize..16,
    ) {
        let mut circuit = build_circuit(&ops, true);
        circuit.measure_all();
        let chunk_shots = (chunk > 0).then_some(chunk);
        let fused_cfg = RunConfig {
            shots: 32, seed: Some(seed), chunk_shots, fusion: Some(true), ..RunConfig::default()
        };
        let interp_cfg = RunConfig { fusion: Some(false), ..fused_cfg.clone() };
        let fused = run_shots(&circuit, Arc::new(ThreadPool::new(1)), &fused_cfg);
        let interp = run_shots(&circuit, Arc::new(ThreadPool::new(2)), &interp_cfg);
        prop_assert_eq!(fused, interp, "fusion knob must not change seeded counts");
    }

    // ---- amplitude sharding + process-level shot sharding ---------------

    /// Amplitude-sharded kernel dispatch is **bit-identical** to the
    /// sequential sweep: replaying a random builder circuit on a sharded
    /// state (any fixed shard count, any pool size) must reproduce every
    /// amplitude exactly — shard boundaries are a function of the shard
    /// count only, and each shard job owns both halves of every pair it
    /// updates.
    #[test]
    fn sharded_amplitudes_bit_identical_to_sequential(
        ops in builder_ops(),
        seed in 0u64..500,
        shards in 2usize..6,
        threads in 1usize..4,
    ) {
        let circuit = build_circuit(&ops, false);
        let compiled = CompiledCircuit::compile(&circuit);
        let mut plain = StateVector::new(BUILDER_QUBITS);
        compiled.run_once(&mut plain, &mut StdRng::seed_from_u64(seed));
        let mut sharded = StateVector::with_pool(BUILDER_QUBITS, Arc::new(ThreadPool::new(threads)));
        sharded.set_amp_shards(Some(shards));
        compiled.run_once(&mut sharded, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(plain.amplitudes(), sharded.amplitudes());
    }

    /// The amp-shards knob never changes seeded counts, through the full
    /// scheduler and with mid-circuit `Measure`/`Reset` in play: sharded
    /// measurement reductions sum through the same ordered reduce, so the
    /// RNG consumes identical draws.
    #[test]
    fn sharded_seeded_counts_identical(
        ops in builder_ops(),
        seed in 0u64..500,
        chunk in 0usize..16,
        shards in 2usize..6,
    ) {
        let mut circuit = build_circuit(&ops, true);
        circuit.measure_all();
        let chunk_shots = (chunk > 0).then_some(chunk);
        let off_cfg = RunConfig {
            shots: 32, seed: Some(seed), chunk_shots,
            amp_shards: Some(AmpShards::Off), ..RunConfig::default()
        };
        let on_cfg = RunConfig { amp_shards: Some(AmpShards::Fixed(shards)), ..off_cfg.clone() };
        let off = run_shots(&circuit, Arc::new(ThreadPool::new(1)), &off_cfg);
        let on = run_shots(&circuit, Arc::new(ThreadPool::new(2)), &on_cfg);
        prop_assert_eq!(off, on, "amp-shards must not change seeded counts");
    }

    /// Process-level shot shards merge byte-identically: for any process
    /// count, summing each shard's owned-chunk counts reproduces the
    /// single-process run exactly — mid-circuit `Measure`/`Reset`
    /// included, since shards replay the very chunk streams the single
    /// run would have drawn.
    #[test]
    fn shot_shards_merge_to_single_process_counts(
        ops in builder_ops(),
        seed in 0u64..500,
        chunk in 0usize..16,
        procs in 1usize..6,
    ) {
        let mut circuit = build_circuit(&ops, true);
        circuit.measure_all();
        let chunk_shots = (chunk > 0).then_some(chunk);
        let config = RunConfig { shots: 32, seed: Some(seed), chunk_shots, ..RunConfig::default() };
        let single = run_shots(&circuit, Arc::new(ThreadPool::new(1)), &config);
        let merged = run_sharded(&circuit, Arc::new(ThreadPool::new(2)), &config, procs);
        prop_assert_eq!(single, merged, "shard merge must be byte-identical");
    }

    /// The `(seed, shard)` stream contract: shard `s`'s first owned chunk
    /// is chunk `s`, so when every shard owns exactly one chunk its counts
    /// equal a standalone run seeded with `derive_stream_seed(seed, s)` —
    /// shards derive from `(seed, shard)` exactly like chunks derive from
    /// `(seed, chunk)`.
    #[test]
    fn shard_streams_derive_from_seed_and_shard(
        seed in 0u64..500,
        procs in 1usize..5,
        chunk in 1usize..12,
    ) {
        let circuit = library::ghz_kernel(3);
        let config = RunConfig {
            shots: chunk * procs, // exactly one chunk per shard
            seed: Some(seed),
            chunk_shots: Some(chunk),
            ..RunConfig::default()
        };
        for shard in 0..procs {
            let owned = qcor_sim::shard::run_shard(
                &circuit, Arc::new(ThreadPool::new(1)), &config, shard, procs,
            );
            let replay_cfg = RunConfig {
                shots: chunk,
                seed: Some(derive_stream_seed(seed, shard)),
                chunk_shots: Some(chunk),
                ..RunConfig::default()
            };
            let replay = run_shots(&circuit, Arc::new(ThreadPool::new(1)), &replay_cfg);
            prop_assert_eq!(owned, replay, "shard {} must draw stream (seed, {})", shard, shard);
        }
    }

    /// Relabeled measurement reports logical qubits: a shot record from
    /// the compiled replay of a swap-permuted circuit has one outcome per
    /// measured logical qubit, bit-exact with the interpreted record when
    /// every amplitude is concentrated on one basis state (X/Swap-only
    /// circuits are deterministic).
    #[test]
    fn swap_relabel_reports_logical_outcomes(
        flips in prop::collection::vec(0usize..BUILDER_QUBITS, 0..6),
        swaps in prop::collection::vec(((0usize..BUILDER_QUBITS), (0usize..BUILDER_QUBITS)), 0..6),
        seed in 0u64..100,
    ) {
        let mut circuit = Circuit::new(BUILDER_QUBITS);
        for &q in &flips {
            circuit.x(q);
        }
        for &(a, b) in &swaps {
            if a != b {
                circuit.swap(a, b);
            }
        }
        circuit.measure_all();
        let mut interp = StateVector::new(BUILDER_QUBITS);
        let mut fused = StateVector::new(BUILDER_QUBITS);
        let rec_i = run_once_interpreted(&mut interp, &circuit, &mut StdRng::seed_from_u64(seed));
        let rec_f = CompiledCircuit::compile(&circuit)
            .run_once(&mut fused, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(rec_i.bitstring(), rec_f.bitstring());
    }
}
