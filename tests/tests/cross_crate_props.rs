//! Cross-crate property tests: kernels written as XASM text, compiled,
//! executed through the accelerator stack, must behave identically to the
//! same circuits driven directly through the simulator — at any pool size
//! and with either cloneable backend instance.

use proptest::prelude::*;
use qcor_circuit::{xasm, Circuit};
use qcor_pool::ThreadPool;
use qcor_sim::{run_shots, RunConfig};
use qcor_xacc::{registry, AcceleratorBuffer, ExecOptions, HetMap};
use std::sync::Arc;

/// Generate a small random XASM kernel source over 3 qubits ending with
/// measurements.
fn xasm_source() -> impl Strategy<Value = String> {
    let gate = prop_oneof![
        (0usize..3).prop_map(|q| format!("H(q[{q}]);")),
        (0usize..3).prop_map(|q| format!("X(q[{q}]);")),
        (0usize..3).prop_map(|q| format!("T(q[{q}]);")),
        ((0usize..3), (-3.0f64..3.0)).prop_map(|(q, t)| format!("Ry(q[{q}], {t});")),
        ((0usize..3), (0usize..3))
            .prop_filter_map("distinct", |(a, b)| { (a != b).then(|| format!("CX(q[{a}], q[{b}]);")) }),
    ];
    prop::collection::vec(gate, 0..12).prop_map(|gates| {
        format!(
            "__qpu__ void k(qreg q) {{ {} for (int i = 0; i < q.size(); i++) {{ Measure(q[i]); }} }}",
            gates.join(" ")
        )
    })
}

fn counts_via_accelerator(circuit: &Circuit, threads: usize, seed: u64) -> qcor_sim::Counts {
    let params = HetMap::new().with("threads", threads);
    let acc = registry::get_accelerator("qpp", &params).unwrap();
    let mut buf = AcceleratorBuffer::with_name("prop", circuit.num_qubits());
    acc.execute(&mut buf, circuit, &ExecOptions::with_shots(64).seeded(seed)).unwrap();
    buf.measurements().clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn accelerator_matches_direct_simulation(src in xasm_source(), seed in 0u64..500) {
        let circuit = xasm::parse_kernel(&src, 3).unwrap().bind(&[]).unwrap();
        let direct = run_shots(
            &circuit,
            Arc::new(ThreadPool::new(1)),
            &RunConfig { shots: 64, seed: Some(seed), par_threshold: 2 },
        );
        let via_acc = counts_via_accelerator(&circuit, 1, seed);
        prop_assert_eq!(direct, via_acc);
    }

    #[test]
    fn pool_size_does_not_change_seeded_counts(src in xasm_source(), seed in 0u64..500) {
        let circuit = xasm::parse_kernel(&src, 3).unwrap().bind(&[]).unwrap();
        let config = RunConfig { shots: 48, seed: Some(seed), par_threshold: 2 };
        let seq = run_shots(&circuit, Arc::new(ThreadPool::new(1)), &config);
        let par = run_shots(&circuit, Arc::new(ThreadPool::new(3)), &config);
        prop_assert_eq!(seq, par, "thread count must never affect results");
    }

    #[test]
    fn distinct_cloneable_instances_agree(src in xasm_source(), seed in 0u64..500) {
        let circuit = xasm::parse_kernel(&src, 3).unwrap().bind(&[]).unwrap();
        let a = counts_via_accelerator(&circuit, 1, seed);
        let b = counts_via_accelerator(&circuit, 2, seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn total_shots_always_conserved(src in xasm_source(), seed in 0u64..500) {
        let circuit = xasm::parse_kernel(&src, 3).unwrap().bind(&[]).unwrap();
        let counts = counts_via_accelerator(&circuit, 1, seed);
        let total: usize = counts.values().sum();
        prop_assert_eq!(total, 64);
        for bits in counts.keys() {
            prop_assert_eq!(bits.len(), 3, "every qubit is measured exactly once");
        }
    }
}
