//! Cross-crate wire-format and compile-cache integration: a circuit that
//! travels through the versioned binary codec must execute identically to
//! the original through the full accelerator stack, and the structural
//! compile cache must be invisible in results while observable in its
//! hit/miss counters.

use proptest::prelude::*;
use qcor_circuit::{library, wire as cwire, Circuit};
use qcor_pool::ThreadPool;
use qcor_sim::{
    clear_compile_cache, compile_cached, run_shots, wire as swire, CompiledCircuit, RunConfig, StateVector,
};
use qcor_xacc::{registry, AcceleratorBuffer, ExecOptions, HetMap};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A parameterized workload touching every serialized gate class the
/// compiler treats specially: dense singles, phase folds, controlled
/// entanglers, swaps and mid-circuit measurement.
fn sweep_kernel(theta: f64) -> Circuit {
    let mut c = Circuit::new(4);
    c.h(0).rx(1, theta).rz(2, -0.5 * theta).cx(0, 1).cphase(1, 2, 0.25 * theta);
    c.swap(2, 3).crz(0, 3, theta).t(3).measure(1);
    c.ry(2, 0.3 * theta);
    c.measure_all();
    c
}

#[test]
fn circuit_wire_round_trip_preserves_seeded_counts() {
    for (i, theta) in [0.0, 0.7, -2.4, std::f64::consts::PI].into_iter().enumerate() {
        let original = sweep_kernel(theta);
        let decoded = cwire::decode(&cwire::encode(&original)).unwrap();
        assert_eq!(original, decoded, "wire round trip must be lossless");
        let config = RunConfig { shots: 128, seed: Some(40 + i as u64), ..RunConfig::default() };
        let pool = Arc::new(ThreadPool::new(1));
        let a = run_shots(&original, Arc::clone(&pool), &config);
        let b = run_shots(&decoded, pool, &config);
        assert_eq!(a, b, "decoded circuit must execute identically (theta = {theta})");
    }
}

#[test]
fn compiled_plan_wire_round_trip_replays_identically() {
    let circuit = sweep_kernel(1.1);
    let plan = CompiledCircuit::compile(&circuit);
    let decoded = swire::decode_compiled(&swire::encode_compiled(&plan)).unwrap();
    let mut s1 = StateVector::new(4);
    let mut s2 = StateVector::new(4);
    let mut r1 = StdRng::seed_from_u64(9);
    let mut r2 = StdRng::seed_from_u64(9);
    assert_eq!(
        plan.run_once(&mut s1, &mut r1),
        decoded.run_once(&mut s2, &mut r2),
        "decoded plan must record identically"
    );
    for (a, b) in s1.amplitudes().iter().zip(s2.amplitudes()) {
        assert_eq!(a.re.to_bits(), b.re.to_bits(), "amplitudes must be bit-identical");
        assert_eq!(a.im.to_bits(), b.im.to_bits(), "amplitudes must be bit-identical");
    }
}

#[test]
fn circuit_and_compiled_wire_kinds_are_not_interchangeable() {
    let circuit = sweep_kernel(0.4);
    let circuit_bytes = cwire::encode(&circuit);
    let plan_bytes = swire::encode_compiled(&CompiledCircuit::compile(&circuit));
    assert!(matches!(swire::decode_compiled(&circuit_bytes), Err(qcor_circuit::WireError::WrongKind { .. })));
    assert!(matches!(cwire::decode(&plan_bytes), Err(qcor_circuit::WireError::WrongKind { .. })));
}

#[test]
fn cached_sweep_matches_cold_through_accelerator_stack() {
    clear_compile_cache();
    let hits0 = qcor_sim::stats::compile_cache_hits();
    let cached =
        registry::get_accelerator("qpp", &HetMap::new().with("threads", 1usize).with("compile-cache", true))
            .unwrap();
    let cold =
        registry::get_accelerator("qpp", &HetMap::new().with("threads", 1usize).with("compile-cache", false))
            .unwrap();
    for i in 0..5 {
        let circuit = sweep_kernel(0.3 + 0.9 * i as f64);
        let opts = ExecOptions::with_shots(96).seeded(70 + i as u64);
        let mut buf_a = AcceleratorBuffer::with_name("cached", 4);
        let mut buf_b = AcceleratorBuffer::with_name("cold", 4);
        cached.execute(&mut buf_a, &circuit, &opts).unwrap();
        cold.execute(&mut buf_b, &circuit, &opts).unwrap();
        assert_eq!(
            buf_a.measurements(),
            buf_b.measurements(),
            "cache must not change seeded counts (sweep step {i})"
        );
    }
    // All five sweep steps share one structure; after the first compile the
    // cached backend must hit (counters are process-global, so assert on
    // the delta).
    assert!(
        qcor_sim::stats::compile_cache_hits() - hits0 >= 4,
        "angle sweep through the accelerator must reuse the cached template"
    );
}

#[test]
fn cache_hits_skip_lowering_but_cold_path_unaffected() {
    clear_compile_cache();
    let circuit = library::qft(4);
    let misses0 = qcor_sim::stats::compile_cache_misses();
    let hits0 = qcor_sim::stats::compile_cache_hits();
    let a = compile_cached(&circuit);
    let b = compile_cached(&circuit);
    assert!(qcor_sim::stats::compile_cache_misses() - misses0 >= 1);
    assert!(qcor_sim::stats::compile_cache_hits() - hits0 >= 1);
    let cold = CompiledCircuit::compile(&circuit);
    let run = |plan: &CompiledCircuit| {
        let mut s = StateVector::new(4);
        let mut r = StdRng::seed_from_u64(3);
        plan.run_once(&mut s, &mut r);
        s
    };
    let (sa, sb, sc) = (run(&a), run(&b), run(&cold));
    for ((x, y), z) in sa.amplitudes().iter().zip(sb.amplitudes()).zip(sc.amplitudes()) {
        assert_eq!(x.re.to_bits(), y.re.to_bits(), "hit and miss rebinds must agree exactly");
        assert_eq!(x.im.to_bits(), y.im.to_bits(), "hit and miss rebinds must agree exactly");
        assert!(x.approx_eq(*z, 1e-12), "cached {x} vs cold {z}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any sweep angle round-trips through the circuit codec and merges
    /// identical seeded counts, and its compiled plan survives the
    /// compiled-plan codec with a byte-identical measurement record.
    #[test]
    fn wire_round_trips_preserve_execution(theta in -6.0f64..6.0, seed in 0u64..300) {
        let circuit = sweep_kernel(theta);
        let decoded = cwire::decode(&cwire::encode(&circuit)).unwrap();
        let config = RunConfig { shots: 32, seed: Some(seed), ..RunConfig::default() };
        let pool = Arc::new(ThreadPool::new(1));
        prop_assert_eq!(
            run_shots(&circuit, Arc::clone(&pool), &config),
            run_shots(&decoded, pool, &config)
        );
        let plan = CompiledCircuit::compile(&circuit);
        let replayed = swire::decode_compiled(&swire::encode_compiled(&plan)).unwrap();
        let mut s1 = StateVector::new(4);
        let mut s2 = StateVector::new(4);
        let mut r1 = StdRng::seed_from_u64(seed);
        let mut r2 = StdRng::seed_from_u64(seed);
        prop_assert_eq!(plan.run_once(&mut s1, &mut r1), replayed.run_once(&mut s2, &mut r2));
    }

    /// The structural hash is angle-independent: every angle pair maps to
    /// the same key, and the cached rebind agrees with a cold compile.
    #[test]
    fn structural_hash_is_angle_independent(a in -6.0f64..6.0, b in -6.0f64..6.0, seed in 0u64..300) {
        let ca = sweep_kernel(a);
        let cb = sweep_kernel(b);
        prop_assert_eq!(cwire::structural_hash(&ca), cwire::structural_hash(&cb));
        prop_assert!(cwire::structurally_equal(&ca, &cb));
        let cached = compile_cached(&ca);
        let cold = CompiledCircuit::compile(&ca);
        let mut s1 = StateVector::new(4);
        let mut s2 = StateVector::new(4);
        let mut r1 = StdRng::seed_from_u64(seed);
        let mut r2 = StdRng::seed_from_u64(seed);
        prop_assert_eq!(cached.run_once(&mut s1, &mut r1), cold.run_once(&mut s2, &mut r2));
    }
}
