//! Opt-in stress harness for the pool fork/join layer.
//!
//! Background: during PR 3 a single hang of
//! `shot_statistics.rs::scheduler_counts_…` was observed on the 1-CPU CI
//! container — 0% CPU, the test thread **and** one `qcor-pool-0` worker
//! both parked in futex wait on a team-2 pool, pointing at a rare lost
//! wakeup somewhere in the `CountLatch`/`WaitGroup`/channel stack. It
//! never reproduced in targeted re-runs, so this file turns the signature
//! into a repeatable hammer:
//!
//! * thousands of team-2 fork/join cycles through the *full* stack the
//!   hanging test exercised (`run_shots_task_parallel` → `ShotPlan` →
//!   `submit_batch` → `scope`/`WaitGroup` → `parallel_for`/`CountLatch`),
//! * plus tight loops on each fork/join primitive in isolation, so a hang
//!   localizes the layer,
//! * plus a ping-pong/MPMC hammer over the vendored crossbeam channel
//!   stub — the flake's remaining suspect, audited and hardened (notify
//!   under the lock + wakeup chaining) in `vendor/crossbeam/src/channel.rs`.
//!
//! The tests are **opt-in** (`QCOR_STRESS=1`) because they trade minutes
//! of wall clock for wakeup-race coverage; without the variable they skip
//! instantly and print how to enable them. A lost wakeup shows up as a
//! hang, which the test harness timeout turns into a failure.
//!
//! The audit companion lives in `qcor-pool`'s `latch.rs`: the condvar
//! discipline (predicate re-checked under the lock, final decrementer
//! notifies while holding it) is documented there and hammered by the
//! always-on `latch_wakeup_race_*` tests.

use qcor_circuit::library;
use qcor_pool::{CountLatch, ThreadPool, WaitGroup};
use qcor_sim::{run_shots_task_parallel, RunConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn stress_enabled() -> bool {
    let enabled = std::env::var("QCOR_STRESS").map(|v| v.trim() == "1").unwrap_or(false);
    if !enabled {
        eprintln!("skipping pool stress test (set QCOR_STRESS=1 to run)");
    }
    enabled
}

/// The shot_statistics hang signature, end to end: seeded Bell sampling
/// with 2-way task parallelism on a shared team-2 pool, repeated a few
/// thousand times. Every iteration builds a fresh pool (worker spawn +
/// shutdown are part of the suspect window) and crosses the full
/// `submit_batch` → `scope` → `WaitGroup` fork/join path.
#[test]
fn team2_fork_join_shot_sampling_stress() {
    if !stress_enabled() {
        return;
    }
    let circuit = library::bell_kernel();
    for iter in 0..4000 {
        let config =
            RunConfig { shots: 16, seed: Some(iter as u64), chunk_shots: Some(1), ..RunConfig::default() };
        let counts = run_shots_task_parallel(&circuit, 2, 1, &config);
        assert_eq!(counts.values().sum::<usize>(), 16, "iteration {iter}");
    }
}

/// `parallel_for` on a long-lived team-2 pool: the `CountLatch` barrier at
/// the end of every construct is the narrowest wait in the stack.
#[test]
fn team2_parallel_for_latch_stress() {
    if !stress_enabled() {
        return;
    }
    let pool = ThreadPool::new(2);
    let hits = AtomicUsize::new(0);
    for iter in 0..200_000 {
        hits.store(0, Ordering::Relaxed);
        pool.parallel_for(0..8, |chunk| {
            hits.fetch_add(chunk.len(), Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8, "iteration {iter}");
    }
}

/// `scope`/`WaitGroup` fork/join in isolation, team of 2.
#[test]
fn team2_scope_waitgroup_stress() {
    if !stress_enabled() {
        return;
    }
    let pool = ThreadPool::new(2);
    let counter = AtomicUsize::new(0);
    for iter in 0..100_000 {
        counter.store(0, Ordering::Relaxed);
        pool.scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 3, "iteration {iter}");
    }
}

/// Channel ping-pong hammer over the vendored crossbeam stub (the
/// ROADMAP flake's remaining suspect, audited + hardened in the channel
/// module): two threads bounce a token through a pair of bounded(1)
/// channels tens of thousands of times — every round trip crosses the
/// park/notify window twice, so a lost wakeup hangs within seconds.
/// A second phase hammers the MPMC shape the pool actually uses (several
/// cloned receivers racing one sender on an unbounded channel).
#[test]
fn channel_ping_pong_stress() {
    if !stress_enabled() {
        return;
    }
    use crossbeam::channel::{bounded, unbounded};

    // Phase 1: strict ping-pong, fresh channels every few thousand rounds
    // so construction/teardown join the suspect window.
    for round in 0..8 {
        let (ping_tx, ping_rx) = bounded::<u64>(1);
        let (pong_tx, pong_rx) = bounded::<u64>(1);
        let pong = std::thread::spawn(move || {
            while let Ok(v) = ping_rx.recv() {
                if pong_tx.send(v + 1).is_err() {
                    break;
                }
            }
        });
        let mut value = 0u64;
        for i in 0..25_000u64 {
            ping_tx.send(value).unwrap();
            value = pong_rx.recv().unwrap();
            assert_eq!(value, 2 * i + 1, "round {round}, iteration {i}");
            value += 1;
        }
        drop(ping_tx);
        pong.join().unwrap();
    }

    // Phase 2: the worker_loop shape — one producer, a team of cloned
    // receivers splitting messages, repeated with fresh channels.
    for iter in 0..2_000 {
        let (tx, rx) = unbounded::<u64>();
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || (0..).map_while(|_| rx.recv().ok()).sum::<u64>())
            })
            .collect();
        drop(rx);
        let n = 64u64;
        for v in 1..=n {
            tx.send(v).unwrap();
        }
        drop(tx);
        let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, n * (n + 1) / 2, "iteration {iter}");
    }
}

/// Raw latch wait/notify races without any pool machinery: one waiter, one
/// decrementer, fresh latch per iteration.
#[test]
fn raw_latch_and_waitgroup_wakeup_stress() {
    if !stress_enabled() {
        return;
    }
    for _ in 0..50_000 {
        let latch = Arc::new(CountLatch::new(1));
        let l = Arc::clone(&latch);
        let t = std::thread::spawn(move || l.count_down());
        latch.wait();
        t.join().unwrap();

        let wg = Arc::new(WaitGroup::new());
        wg.add(1);
        let w = Arc::clone(&wg);
        let t = std::thread::spawn(move || w.done());
        wg.wait();
        t.join().unwrap();
    }
}
