//! Statistical correctness of the batched shot scheduler.
//!
//! Every scheduling configuration — single chunk, per-shot chunks, odd
//! chunk sizes, task-level parallelism, the legacy sequential path — must
//! sample from the **same distribution**, namely the circuit's exact
//! output distribution. Each case draws a seeded sample and runs a
//! chi-squared goodness-of-fit test against `exact_distribution`.
//!
//! # Tolerance
//!
//! The chi-squared statistic is compared against the critical value at
//! significance α = 0.001 for the distribution's degrees of freedom
//! (`#outcomes with p > 0` − 1). With seeded RNG streams the test is fully
//! deterministic — the α only calibrates how extreme a (fixed) sample we
//! tolerate; a correctly-distributed sampler fails a fresh seed with
//! probability 0.1% per cell, and the seeds below were not cherry-picked.
//!
//! The file also carries the scheduler's determinism regression tests:
//! for a fixed `(seed, tasks, chunk_shots)` the merged counts must be
//! byte-identical across runs, pool sizes, and scheduling edge cases
//! (`tasks > shots`, `shots % tasks != 0`).

use qcor_circuit::{library, Circuit};
use qcor_pool::ThreadPool;
use qcor_sim::{exact_distribution, run_shots, run_shots_task_parallel, Counts, Granularity, RunConfig};
use std::sync::Arc;

/// Critical values of the chi-squared distribution at α = 0.001.
/// Index = degrees of freedom (0 unused).
const CHI2_CRIT_P001: [f64; 9] = [f64::NAN, 10.828, 13.816, 16.266, 18.467, 20.515, 22.458, 24.322, 26.124];

fn seq_pool() -> Arc<ThreadPool> {
    Arc::new(ThreadPool::new(1))
}

/// Map a counts bitstring (leftmost char = lowest-indexed qubit) back to
/// the little-endian basis-state index of `exact_distribution`.
fn basis_index(bits: &str) -> usize {
    bits.bytes().enumerate().map(|(pos, b)| (usize::from(b == b'1')) << pos).sum()
}

/// Chi-squared goodness-of-fit of `counts` against the exact distribution
/// `probs`. Returns `(statistic, degrees_of_freedom)`. Outcomes with
/// probability 0 must not appear in `counts` at all (asserted here — a
/// forbidden outcome is a simulator bug, not a statistical fluctuation).
fn chi_squared(counts: &Counts, probs: &[f64], shots: usize) -> (f64, usize) {
    let mut observed = vec![0usize; probs.len()];
    for (bits, &count) in counts {
        observed[basis_index(bits)] += count;
    }
    let mut statistic = 0.0;
    let mut cells = 0usize;
    for (index, &p) in probs.iter().enumerate() {
        if p < 1e-12 {
            assert_eq!(
                observed[index], 0,
                "outcome {index:b} has probability 0 but was sampled {} times",
                observed[index]
            );
            continue;
        }
        let expected = p * shots as f64;
        let diff = observed[index] as f64 - expected;
        statistic += diff * diff / expected;
        cells += 1;
    }
    (statistic, cells - 1)
}

/// Run the chi-squared check for one (circuit, scheduler-config) cell.
fn assert_well_distributed(label: &str, circuit: &Circuit, counts: Counts, shots: usize) {
    assert_eq!(counts.values().sum::<usize>(), shots, "{label}: counts must sum to shots");
    let probs = exact_distribution(circuit, seq_pool()).unwrap();
    let (statistic, df) = chi_squared(&counts, &probs, shots);
    let critical = CHI2_CRIT_P001[df];
    assert!(
        statistic < critical,
        "{label}: chi² = {statistic:.2} exceeds the α=0.001 critical value {critical} (df = {df})"
    );
}

/// A biased two-qubit product state: Ry rotations make every outcome
/// probability distinct and non-zero (df = 3).
fn biased_circuit() -> Circuit {
    let mut c = Circuit::new(2);
    c.ry(0, 1.0).ry(1, 2.2).measure(0).measure(1);
    c
}

/// A uniform three-qubit superposition (df = 7).
fn uniform3_circuit() -> Circuit {
    let mut c = Circuit::new(3);
    c.h(0).h(1).h(2).measure(0).measure(1).measure(2);
    c
}

const SHOTS: usize = 4096;

#[test]
fn scheduler_counts_fit_exact_distribution_across_configs() {
    let circuits: [(&str, Circuit); 4] = [
        ("bell", library::bell_kernel()),
        ("ghz3", library::ghz_kernel(3)),
        ("biased_ry", biased_circuit()),
        ("uniform3", uniform3_circuit()),
    ];
    for (name, circuit) in &circuits {
        // Every scheduling shape must draw from the same distribution:
        // adaptive single-chunk, pathological per-shot chunks, odd chunk
        // sizes, and the legacy sequential (inner-parallel) path.
        let configs: [(&str, RunConfig, usize); 5] = [
            ("auto/pool1", RunConfig { shots: SHOTS, seed: Some(101), ..RunConfig::default() }, 1),
            ("auto/pool3", RunConfig { shots: SHOTS, seed: Some(202), ..RunConfig::default() }, 3),
            (
                "chunk1/pool2",
                RunConfig { shots: SHOTS, seed: Some(303), chunk_shots: Some(1), ..RunConfig::default() },
                2,
            ),
            (
                "chunk37/pool2",
                RunConfig { shots: SHOTS, seed: Some(404), chunk_shots: Some(37), ..RunConfig::default() },
                2,
            ),
            (
                "sequential/pool2",
                RunConfig {
                    shots: SHOTS,
                    seed: Some(505),
                    granularity: Granularity::Sequential,
                    ..RunConfig::default()
                },
                2,
            ),
        ];
        for (config_name, config, threads) in configs {
            let counts = run_shots(circuit, Arc::new(ThreadPool::new(threads)), &config);
            assert_well_distributed(&format!("{name}/{config_name}"), circuit, counts, SHOTS);
        }
    }
}

#[test]
fn task_parallel_counts_fit_exact_distribution() {
    let circuit = library::bell_kernel();
    for (tasks, chunk_shots) in [(3usize, None), (5, Some(13)), (2, Some(256))] {
        let config = RunConfig { shots: SHOTS, seed: Some(606), chunk_shots, ..RunConfig::default() };
        let counts = run_shots_task_parallel(&circuit, tasks, 1, &config);
        let label = format!("bell/tasks{tasks}/chunk{chunk_shots:?}");
        assert_well_distributed(&label, &circuit, counts, SHOTS);
    }
}

#[test]
fn merged_streams_fit_distribution_with_biased_outcomes() {
    // Chunk-derived RNG streams must stay independent: merging many short
    // streams over a biased distribution is where correlated streams
    // would show up as a chi-squared blow-up.
    let circuit = biased_circuit();
    let config = RunConfig { shots: SHOTS, seed: Some(707), chunk_shots: Some(8), ..RunConfig::default() };
    let counts = run_shots_task_parallel(&circuit, 4, 2, &config);
    assert_well_distributed("biased_ry/tasks4x2/chunk8", &circuit, counts, SHOTS);
}

// ---- determinism regression -------------------------------------------

/// Render counts in a canonical byte form (BTreeMap order is already
/// deterministic; the string makes "byte-identical" literal).
fn canonical(counts: &Counts) -> String {
    counts.iter().map(|(bits, n)| format!("{bits}:{n};")).collect()
}

#[test]
fn fixed_tuple_reproduces_byte_identical_counts() {
    let circuit = library::ghz_kernel(3);
    for (shots, tasks, chunk_shots) in [
        (1000, 3, None),       // shots % tasks != 0
        (1000, 4, Some(77)),   // explicit chunking, uneven tail
        (5, 7, None),          // tasks > shots
        (3, 64, Some(2)),      // tasks >> shots with explicit chunks
        (1024, 1, Some(1024)), // single chunk
    ] {
        let config = RunConfig { shots, seed: Some(99), chunk_shots, ..RunConfig::default() };
        let first = run_shots_task_parallel(&circuit, tasks, 1, &config);
        let second = run_shots_task_parallel(&circuit, tasks, 1, &config);
        assert_eq!(
            canonical(&first),
            canonical(&second),
            "(shots={shots}, tasks={tasks}, chunk_shots={chunk_shots:?}) must be reproducible"
        );
        // Pool size is not part of the determinism tuple: more threads per
        // task must not change the merged counts either.
        let wider = run_shots_task_parallel(&circuit, tasks, 3, &config);
        assert_eq!(canonical(&first), canonical(&wider));
        assert_eq!(first.values().sum::<usize>(), shots);
    }
}

#[test]
fn direct_run_shots_is_pool_size_invariant() {
    let circuit = biased_circuit();
    let config = RunConfig { shots: 512, seed: Some(1234), chunk_shots: Some(19), ..RunConfig::default() };
    let narrow = run_shots(&circuit, Arc::new(ThreadPool::new(1)), &config);
    let wide = run_shots(&circuit, Arc::new(ThreadPool::new(4)), &config);
    assert_eq!(canonical(&narrow), canonical(&wide));
}
