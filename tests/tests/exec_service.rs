//! Integration tests for the async execution service (bounded kernel
//! queue + backpressure) and QPUManager multi-backend routing.
//!
//! The routing tests rotate the QPUManager's process-wide shared cursor;
//! a static lock serializes them within this binary so the exact-balance
//! assertions aren't perturbed by each other.

use qcor::{
    initialize, qalloc, BackendCapability, BackpressurePolicy, ExecServiceConfig, ExecutionService,
    InitOptions, Kernel, QPUManager, QcorError, TaskFuture, TaskPriority,
};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

fn route_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|poison| poison.into_inner())
}

const BELL: &str = "H(q[0]); CX(q[0], q[1]); Measure(q[0]); Measure(q[1]);";

fn run_bell(shots: usize, seed: u64) -> usize {
    initialize(InitOptions::default().threads(1).shots(shots).seed(seed)).unwrap();
    let q = qalloc(2);
    Kernel::from_xasm(BELL, 2).unwrap().invoke(&q, &[]).unwrap();
    q.total_shots()
}

// ---------------------------------------------------------------------------
// Queue backpressure semantics
// ---------------------------------------------------------------------------

/// The ISSUE's saturation acceptance test: queue capacity K, block policy,
/// far more than K in-flight submissions — the queue never exceeds K and
/// the number of distinct executing threads never exceeds the pool size.
#[test]
fn saturation_respects_capacity_and_thread_budget() {
    const K: usize = 4;
    const TASKS: usize = 64;
    let svc = Arc::new(ExecutionService::new(
        ExecServiceConfig::default().threads(3).capacity(K).policy(BackpressurePolicy::Block),
    ));
    let executing_threads = Arc::new(Mutex::new(HashSet::new()));
    let peak_concurrent = Arc::new(AtomicUsize::new(0));
    let concurrent = Arc::new(AtomicUsize::new(0));

    // Submit from several producer threads to actually saturate the queue.
    let mut producers = Vec::new();
    for p in 0..4u64 {
        let svc = Arc::clone(&svc);
        let executing_threads = Arc::clone(&executing_threads);
        let peak_concurrent = Arc::clone(&peak_concurrent);
        let concurrent = Arc::clone(&concurrent);
        producers.push(std::thread::spawn(move || {
            let futures: Vec<_> = (0..TASKS / 4)
                .map(|i| {
                    let executing_threads = Arc::clone(&executing_threads);
                    let peak = Arc::clone(&peak_concurrent);
                    let concurrent = Arc::clone(&concurrent);
                    svc.submit(move || {
                        let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        executing_threads.lock().unwrap().insert(std::thread::current().id());
                        let shots = run_bell(32, p * 1000 + i as u64);
                        concurrent.fetch_sub(1, Ordering::SeqCst);
                        shots
                    })
                    .unwrap()
                })
                .collect();
            futures.into_iter().map(|f| f.get()).sum::<usize>()
        }));
    }
    let total: usize = producers.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, TASKS * 32, "every submission must run exactly once");

    let stats = svc.stats();
    assert_eq!(stats.submitted, TASKS);
    assert_eq!(stats.completed, TASKS);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.shed, 0);
    assert!(stats.peak_queue_len <= K, "queue exceeded its high-water mark: {stats:?}");

    let distinct = executing_threads.lock().unwrap().len();
    assert!(
        distinct <= svc.pool_threads(),
        "{distinct} distinct executor threads for a pool of {}",
        svc.pool_threads()
    );
    assert!(
        peak_concurrent.load(Ordering::SeqCst) <= svc.pool_threads(),
        "more tasks ran concurrently than the thread budget allows"
    );
}

/// Reject policy: a full queue returns `QueueFull` instead of dropping
/// work silently — and everything that *was* admitted still runs.
#[test]
fn reject_policy_errors_instead_of_dropping() {
    let svc = ExecutionService::new(
        ExecServiceConfig::default().threads(2).capacity(2).policy(BackpressurePolicy::Reject),
    );
    let gate = Arc::new(AtomicBool::new(false));
    let g = Arc::clone(&gate);
    let blocker = svc
        .submit(move || {
            while !g.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        })
        .unwrap();

    // Admitted futures must all complete; rejections must be visible.
    let mut admitted = Vec::new();
    let mut rejections = 0usize;
    for i in 0..200usize {
        match svc.submit(move || i) {
            Ok(f) => admitted.push((i, f)),
            Err(QcorError::QueueFull) => rejections += 1,
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
    assert!(rejections > 0, "200 instant submissions against capacity 2 must overflow");
    assert_eq!(svc.stats().rejected, rejections);

    gate.store(true, Ordering::Release);
    blocker.get();
    for (i, f) in admitted {
        assert_eq!(f.get(), i, "admitted work must never be dropped");
    }
}

/// Shed-oldest policy: over-submission resolves the oldest queued future
/// as `TaskShed` (observable, not silent) while the newest work runs.
#[test]
fn shed_oldest_policy_is_observable_and_keeps_newest() {
    let svc = ExecutionService::new(
        ExecServiceConfig::default().threads(2).capacity(1).policy(BackpressurePolicy::ShedOldest),
    );
    let gate = Arc::new(AtomicBool::new(false));
    let g = Arc::clone(&gate);
    let blocker = svc
        .submit(move || {
            while !g.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        })
        .unwrap();
    while svc.stats().running == 0 {
        std::thread::yield_now();
    }

    let first = svc.submit(|| "first").unwrap();
    let second = svc.submit(|| "second").unwrap(); // sheds `first`
    assert_eq!(first.wait(), Err(QcorError::TaskShed));
    gate.store(true, Ordering::Release);
    blocker.get();
    assert_eq!(second.wait(), Ok("second"));
    let stats = svc.stats();
    assert_eq!((stats.shed, stats.rejected), (1, 0));
}

/// Futures resolve with their own task's value regardless of completion
/// order, and a one-executor service preserves FIFO execution order.
#[test]
fn task_future_completion_ordering() {
    let svc = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(32));
    let log = Arc::new(Mutex::new(Vec::new()));
    let futures: Vec<_> = (0..10usize)
        .map(|i| {
            let log = Arc::clone(&log);
            svc.submit(move || {
                // Stagger runtimes so completion wall-times scramble.
                std::thread::sleep(Duration::from_millis(((10 - i) % 3) as u64));
                log.lock().unwrap().push(i);
                i * i
            })
            .unwrap()
        })
        .collect();
    let values: Vec<usize> = futures.into_iter().map(|f| f.get()).collect();
    assert_eq!(values, (0..10).map(|i| i * i).collect::<Vec<_>>());
    // threads(2) = one executor => strict FIFO queue order.
    assert_eq!(*log.lock().unwrap(), (0..10).collect::<Vec<_>>());
}

/// Kernel workloads through the queue still get isolated accelerator
/// instances: concurrent Bell tasks from one initialized parent see clean
/// per-task counts.
#[test]
fn queued_kernel_tasks_keep_instance_isolation() {
    std::thread::spawn(|| {
        initialize(InitOptions::default().threads(1).shots(64).seed(7)).unwrap();
        let tasks: Vec<_> = (0..8)
            .map(|_| {
                qcor::spawn(|| {
                    let q = qalloc(2);
                    Kernel::from_xasm(BELL, 2).unwrap().invoke(&q, &[]).unwrap();
                    let counts = q.measurement_counts();
                    assert!(counts.keys().all(|k| k == "00" || k == "11"), "{counts:?}");
                    q.total_shots()
                })
            })
            .collect();
        for t in tasks {
            assert_eq!(t.get(), 64);
        }
        QPUManager::instance().clear_current();
    })
    .join()
    .unwrap();
}

// ---------------------------------------------------------------------------
// Work-conserving joins, cancellation, deadlines, priority lanes
// ---------------------------------------------------------------------------

/// Run `scenario` on a helper thread under a deadlock watchdog: if it has
/// not finished within `limit`, the test fails instead of hanging the
/// whole suite. The regression scenarios below deadlocked forever before
/// the work-conserving join.
fn with_watchdog(limit: Duration, name: &str, scenario: impl FnOnce() + Send + 'static) {
    let done = Arc::new(AtomicBool::new(false));
    let d = Arc::clone(&done);
    let runner = std::thread::spawn(move || {
        scenario();
        d.store(true, Ordering::Release);
    });
    let start = Instant::now();
    while !done.load(Ordering::Acquire) {
        assert!(
            start.elapsed() < limit,
            "{name}: watchdog fired after {limit:?} — the service deadlocked \
             (the pre-work-conserving-join failure mode)"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    runner.join().unwrap();
}

/// The ISSUE's acceptance scenario, shape 1 (deadlocks the pre-fix
/// service): `permit_budget + 2` top-level tasks where task *i* `wait()`s
/// on the future of its **sibling** *i + 1*. Pre-fix, the first
/// `permit_budget` tasks park on futures of tasks stuck in the queue
/// behind them, every permit is held, and nothing ever runs again.
/// Post-fix, each waiter helps drain the queue on its own permit.
fn sibling_chain_scenario(threads: usize) {
    let svc = Arc::new(ExecutionService::new(ExecServiceConfig::default().threads(threads).capacity(64)));
    let n = svc.permit_budget() + 2;
    let handoff: Arc<Mutex<HashMap<usize, TaskFuture<usize>>>> = Arc::new(Mutex::new(HashMap::new()));
    let mut head = None;
    for i in 0..n {
        let handoff_in = Arc::clone(&handoff);
        let f = svc
            .submit(move || {
                if i + 1 == n {
                    return 0usize;
                }
                // Spin until the main thread has parked the sibling's
                // future in the handoff map (it is submitted after us).
                let sibling = loop {
                    if let Some(f) = handoff_in.lock().unwrap().remove(&(i + 1)) {
                        break f;
                    }
                    std::thread::yield_now();
                };
                sibling.wait().expect("Block-admitted sibling cannot fail") + 1
            })
            .unwrap();
        if i == 0 {
            head = Some(f);
        } else {
            handoff.lock().unwrap().insert(i, f);
        }
    }
    assert_eq!(head.unwrap().get(), n - 1, "the whole join chain must resolve");
    svc.drain();
    let stats = svc.stats();
    assert_eq!(stats.completed, n);
    assert_eq!(stats.shed + stats.cancelled + stats.expired, 0);
}

/// Shape 2: `permit_budget + 2` driver tasks that each **spawn** siblings
/// on the same service and join them in-task (the fan-out/fan-in shape
/// vqe multistart and parallel Shor now use).
fn spawn_and_join_scenario(threads: usize) {
    let svc = Arc::new(ExecutionService::new(ExecServiceConfig::default().threads(threads).capacity(8)));
    let drivers = svc.permit_budget() + 2;
    let futures: Vec<_> = (0..drivers)
        .map(|d| {
            let inner = Arc::clone(&svc);
            svc.submit(move || {
                let children: Vec<_> = (0..3).map(|c| inner.submit(move || d * 10 + c).unwrap()).collect();
                children.into_iter().map(|f| f.wait().unwrap()).sum::<usize>()
            })
            .unwrap()
        })
        .collect();
    let got: Vec<usize> = futures.into_iter().map(|f| f.get()).collect();
    let expect: Vec<usize> = (0..drivers).map(|d| 3 * (d * 10) + 3).collect();
    assert_eq!(got, expect);
}

/// The always-on deadlock regression (both shapes, several team sizes —
/// including a team of one, where the dispatcher itself is the only
/// executor). Each shape submits more joining tasks than there are
/// permits; pre-fix this test hangs, which the watchdog converts into a
/// failure.
#[test]
fn in_task_sibling_joins_cannot_exhaust_permits() {
    for threads in [1usize, 2, 4] {
        with_watchdog(Duration::from_secs(60), "sibling chain", move || sibling_chain_scenario(threads));
        with_watchdog(Duration::from_secs(60), "spawn and join", move || spawn_and_join_scenario(threads));
    }
}

/// In-task joins with real kernel workloads: a driver task fans Bell
/// kernels out over the same service and merges their counts in-task,
/// with fewer permits than siblings.
#[test]
fn in_task_join_runs_kernel_siblings() {
    with_watchdog(Duration::from_secs(120), "kernel fan-in", || {
        let svc = Arc::new(ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(16)));
        let inner = Arc::clone(&svc);
        let total = svc
            .submit(move || {
                let children: Vec<_> =
                    (0..4).map(|i| inner.submit(move || run_bell(32, 40 + i)).unwrap()).collect();
                children.into_iter().map(|f| f.wait().unwrap()).sum::<usize>()
            })
            .unwrap()
            .get();
        assert_eq!(total, 4 * 32);
    });
}

/// Cancel before dispatch: the task never runs, the future resolves as
/// `TaskCancelled`, and the `cancelled` counter ticks. Cancel after
/// dispatch: a no-op (`false`), the task completes normally.
#[test]
fn cancel_before_vs_after_dispatch_is_observable() {
    let svc = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(8));
    let gate = Arc::new(AtomicBool::new(false));
    let g = Arc::clone(&gate);
    let blocker = svc
        .submit(move || {
            while !g.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        })
        .unwrap();
    while svc.stats().running == 0 {
        std::thread::yield_now();
    }
    // After dispatch: the running blocker is past cancellation.
    assert!(!blocker.cancel(), "a dispatched task must not be cancellable");

    let ran = Arc::new(AtomicBool::new(false));
    let r = Arc::clone(&ran);
    let queued = svc.submit(move || r.store(true, Ordering::Release)).unwrap();
    assert!(queued.cancel(), "a queued task must cancel");
    assert!(!queued.cancel(), "double-cancel reports false");
    assert_eq!(queued.wait(), Err(QcorError::TaskCancelled));

    gate.store(true, Ordering::Release);
    blocker.get();
    svc.drain();
    assert!(!ran.load(Ordering::Acquire), "cancelled tasks must never run");
    let stats = svc.stats();
    assert_eq!((stats.cancelled, stats.completed), (1, 1));
    assert_eq!(
        stats.submitted,
        stats.completed + stats.running + stats.queue_len + stats.shed + stats.cancelled + stats.expired
    );
}

/// A task whose deadline lapses while queued resolves as shed (the
/// existing shed path), never runs, and ticks the `expired` counter.
#[test]
fn expired_deadline_feeds_the_shed_path() {
    let svc = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(8));
    let gate = Arc::new(AtomicBool::new(false));
    let g = Arc::clone(&gate);
    let blocker = svc
        .submit(move || {
            while !g.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        })
        .unwrap();
    while svc.stats().running == 0 {
        std::thread::yield_now();
    }
    let ran = Arc::new(AtomicBool::new(false));
    let r = Arc::clone(&ran);
    let doomed =
        svc.submit_with_deadline(Duration::from_millis(1), move || r.store(true, Ordering::Release)).unwrap();
    let kept = svc.submit_with_deadline(Duration::from_secs(600), || 5usize).unwrap();
    std::thread::sleep(Duration::from_millis(10));
    gate.store(true, Ordering::Release);
    blocker.get();
    assert_eq!(doomed.wait(), Err(QcorError::TaskShed), "expired deadlines resolve through the shed path");
    assert_eq!(kept.wait(), Ok(5), "an unexpired deadline runs normally");
    svc.drain();
    assert!(!ran.load(Ordering::Acquire), "expired tasks must never run");
    let stats = svc.stats();
    assert_eq!((stats.expired, stats.completed), (1, 2));
}

/// High-lane tasks dispatch before queued normal-lane tasks (FIFO within
/// each lane), and the lane-depth gauges are observable.
#[test]
fn priority_lane_dispatches_first_and_is_observable() {
    let svc = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(16));
    let gate = Arc::new(AtomicBool::new(false));
    let g = Arc::clone(&gate);
    let blocker = svc
        .submit(move || {
            while !g.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        })
        .unwrap();
    while svc.stats().running == 0 {
        std::thread::yield_now();
    }
    let order = Arc::new(Mutex::new(Vec::new()));
    let mut futures = Vec::new();
    for (priority, name) in [
        (TaskPriority::Normal, "n1"),
        (TaskPriority::Normal, "n2"),
        (TaskPriority::High, "h1"),
        (TaskPriority::High, "h2"),
    ] {
        let order = Arc::clone(&order);
        futures.push(svc.submit_prioritized(priority, move || order.lock().unwrap().push(name)).unwrap());
    }
    let stats = svc.stats();
    assert_eq!((stats.high_queue_len, stats.normal_queue_len, stats.queue_len), (2, 2, 4));
    gate.store(true, Ordering::Release);
    blocker.get();
    for f in futures {
        f.get();
    }
    // One permit (threads=2) ⇒ deterministic dispatch order.
    assert_eq!(*order.lock().unwrap(), vec!["h1", "h2", "n1", "n2"]);
}

/// Shed-oldest victimizes the normal lane before the high lane, even when
/// the high task is older.
#[test]
fn shed_oldest_prefers_normal_lane_victims() {
    let svc = ExecutionService::new(
        ExecServiceConfig::default().threads(2).capacity(2).policy(BackpressurePolicy::ShedOldest),
    );
    let gate = Arc::new(AtomicBool::new(false));
    let g = Arc::clone(&gate);
    let blocker = svc
        .submit(move || {
            while !g.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        })
        .unwrap();
    while svc.stats().running == 0 {
        std::thread::yield_now();
    }
    let high_first = svc.submit_prioritized(TaskPriority::High, || "high").unwrap();
    let normal_victim = svc.submit(|| "normal").unwrap();
    let newcomer = svc.submit(|| "newcomer").unwrap(); // over capacity: sheds the normal task
    assert_eq!(normal_victim.wait(), Err(QcorError::TaskShed));
    gate.store(true, Ordering::Release);
    blocker.get();
    assert_eq!(high_first.wait(), Ok("high"));
    assert_eq!(newcomer.wait(), Ok("newcomer"));
    assert_eq!(svc.stats().shed, 1);
}

// ---------------------------------------------------------------------------
// QPUManager routing
// ---------------------------------------------------------------------------

/// Concurrent initializations under a shared round-robin policy split
/// exactly evenly across the named backends (the shared-cursor contract).
#[test]
fn round_robin_routing_balances_concurrent_registrations() {
    let _guard = route_lock();
    let names: Vec<String> = (0..8)
        .map(|_| {
            std::thread::spawn(|| {
                initialize(
                    InitOptions::default()
                        .threads(1)
                        .shots(8)
                        .seed(1)
                        .route_round_robin(["qpp", "qpp-density"]),
                )
                .unwrap();
                let name = QPUManager::instance().get_qpu().unwrap().qpu.name();
                QPUManager::instance().clear_current();
                name
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();
    let qpp = names.iter().filter(|n| *n == "qpp").count();
    let density = names.iter().filter(|n| *n == "qpp-density").count();
    assert_eq!((qpp, density), (4, 4), "shared cursor must balance exactly: {names:?}");
}

/// Capability routing resolves to the matching backend, and the routed
/// backend actually executes kernels (noisy counts can leak outside the
/// Bell subspace; remote reports its latency class).
#[test]
fn capability_routing_selects_and_executes() {
    let _guard = route_lock();
    std::thread::spawn(|| {
        initialize(
            InitOptions::default().threads(1).shots(128).seed(11).route_capability(BackendCapability::Noisy),
        )
        .unwrap();
        let ctx = QPUManager::instance().get_qpu().unwrap();
        assert_eq!(ctx.qpu.name(), "qpp-noisy");
        assert_eq!(ctx.qpu.capability(), BackendCapability::Noisy);
        let q = qalloc(2);
        Kernel::from_xasm(BELL, 2).unwrap().invoke(&q, &[]).unwrap();
        assert_eq!(q.total_shots(), 128);
        QPUManager::instance().clear_current();
    })
    .join()
    .unwrap();
}

/// Params-driven routing (the `routing*` backend params) works through
/// `initialize` without touching the typed builder API.
#[test]
fn params_driven_routing_round_robins() {
    let _guard = route_lock();
    let names: Vec<String> = (0..4)
        .map(|_| {
            std::thread::spawn(|| {
                initialize(
                    InitOptions::default()
                        .threads(1)
                        .shots(8)
                        .seed(2)
                        .param("routing", "round-robin")
                        .param("routing-backends", "qpp,qpp-noisy"),
                )
                .unwrap();
                let name = QPUManager::instance().get_qpu().unwrap().qpu.name();
                QPUManager::instance().clear_current();
                name
            })
            .join()
            .unwrap()
        })
        .collect();
    assert_eq!(names.iter().filter(|n| *n == "qpp").count(), 2, "{names:?}");
    assert_eq!(names.iter().filter(|n| *n == "qpp-noisy").count(), 2, "{names:?}");
}

/// A mixed fleet: tasks spawned through the kernel queue with round-robin
/// routing land on alternating backends — one process serving
/// heterogeneous workloads with a bounded thread budget.
#[test]
fn queued_tasks_route_across_backends() {
    let _guard = route_lock();
    let svc = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(8));
    let futures: Vec<_> = (0..6)
        .map(|i| {
            svc.submit(move || {
                initialize(
                    InitOptions::default()
                        .threads(1)
                        .shots(16)
                        .seed(i)
                        .route_round_robin(["qpp", "qpp-density"]),
                )
                .unwrap();
                let name = QPUManager::instance().get_qpu().unwrap().qpu.name();
                let q = qalloc(2);
                Kernel::from_xasm(BELL, 2).unwrap().invoke(&q, &[]).unwrap();
                (name, q.total_shots())
            })
            .unwrap()
        })
        .collect();
    let results: Vec<(String, usize)> = futures.into_iter().map(|f| f.get()).collect();
    assert!(results.iter().all(|(_, shots)| *shots == 16));
    // threads(2) = serial FIFO executor, so the shared cursor alternates
    // deterministically.
    let qpp = results.iter().filter(|(n, _)| n == "qpp").count();
    assert_eq!(qpp, 3, "{results:?}");
}

/// Inheritance pins to the parent's **resolved** backend: a child task of
/// a round-robin-routed parent lands on the same backend class as the
/// parent instead of re-routing (which would advance the rotation and mix
/// backend types within one task family).
#[test]
fn spawned_tasks_inherit_resolved_backend_not_routing() {
    let _guard = route_lock();
    std::thread::spawn(|| {
        initialize(
            InitOptions::default().threads(1).shots(8).seed(3).route_round_robin(["qpp-density", "qpp"]),
        )
        .unwrap();
        let parent = QPUManager::instance().get_qpu().unwrap().qpu.name();
        let child_names: Vec<String> = (0..3)
            .map(|_| qcor::spawn(|| QPUManager::instance().get_qpu().unwrap().qpu.name()).get())
            .collect();
        assert!(
            child_names.iter().all(|n| *n == parent),
            "children must run on the parent's backend {parent}, got {child_names:?}"
        );
        QPUManager::instance().clear_current();
    })
    .join()
    .unwrap();
}

/// Inheritance replays the **registry key** the parent resolved, not the
/// instance's self-reported name — a service registered under an alias
/// whose instances report a different `name()` must still be spawnable.
#[test]
fn inheritance_uses_registry_key_not_instance_name() {
    use qcor::Accelerator;
    qcor::registry::global().register_factory("alias-sim", |params| {
        Ok(std::sync::Arc::new(qcor_xacc::backends::QppAccelerator::from_params(params)?)
            as std::sync::Arc<dyn Accelerator>)
    });
    std::thread::spawn(|| {
        initialize(InitOptions::default().threads(1).shots(8).seed(5).backend("alias-sim")).unwrap();
        // The instance reports "qpp" but the registry key is "alias-sim".
        assert_eq!(QPUManager::instance().get_qpu().unwrap().qpu.name(), "qpp");
        let (resolved, shots) = qcor::spawn(|| {
            let ctx = QPUManager::instance().get_qpu().unwrap();
            let q = qalloc(2);
            Kernel::from_xasm(BELL, 2).unwrap().invoke(&q, &[]).unwrap();
            (ctx.resolved_backend, q.total_shots())
        })
        .get();
        assert_eq!(resolved, "alias-sim");
        assert_eq!(shots, 8);
        QPUManager::instance().clear_current();
    })
    .join()
    .unwrap();
}

/// Entries for exited threads are evicted (the ThreadContext leak fix):
/// a thread that initializes and dies without `clear_current` leaves no
/// registration behind.
#[test]
fn exited_threads_do_not_leak_registrations() {
    let ids: Vec<std::thread::ThreadId> = (0..16)
        .map(|i| {
            std::thread::spawn(move || {
                initialize(InitOptions::default().threads(1).shots(8).seed(i)).unwrap();
                assert!(QPUManager::instance().get_qpu().is_some());
                // Deliberately no clear_current: the eviction guard reaps it.
                std::thread::current().id()
            })
            .join()
            .unwrap()
        })
        .collect();
    for id in ids {
        assert!(
            !QPUManager::instance().thread_is_registered(id),
            "exited thread {id:?} leaked its ThreadContext"
        );
    }
}

// ---------------------------------------------------------------------------
// Multi-tenant fair queuing, eager eviction, cooperative cancellation
// ---------------------------------------------------------------------------

/// Weighted shares under saturation at the service level: with a single
/// permit and both tenants backlogged, a weight-3 tenant drains at ~3× the
/// weight-1 flooder's rate, so its whole batch completes long before the
/// flooder's backlog does.
#[test]
fn weighted_tenants_share_the_permit_fairly() {
    // threads(2) = one dispatcher + one executor permit.
    let svc = ExecutionService::new(
        ExecServiceConfig::default().threads(2).capacity(256).tenant_weight("favored", 3.0),
    );
    let gate = Arc::new(AtomicBool::new(false));
    let g = Arc::clone(&gate);
    let blocker = svc
        .submit(move || {
            while !g.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        })
        .unwrap();
    while svc.stats().running == 0 {
        std::thread::yield_now();
    }
    // Both tenants fully backlogged behind the blocker before any pop.
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut futures = Vec::new();
    for i in 0..48 {
        let log = Arc::clone(&log);
        futures.push(
            svc.submit_spec(qcor::TaskSpec::new().tenant("flooder"), move || {
                log.lock().unwrap().push(("flooder", i))
            })
            .unwrap(),
        );
    }
    for i in 0..12 {
        let log = Arc::clone(&log);
        futures.push(
            svc.submit_spec(qcor::TaskSpec::new().tenant("favored"), move || {
                log.lock().unwrap().push(("favored", i))
            })
            .unwrap(),
        );
    }
    gate.store(true, Ordering::Release);
    blocker.get();
    for f in futures {
        f.get();
    }
    let log = log.lock().unwrap();
    let last_favored = log.iter().rposition(|(t, _)| *t == "favored").unwrap();
    let flooder_before = log[..=last_favored].iter().filter(|(t, _)| *t == "flooder").count();
    // Ideal DRR interleave: ⌈12/3⌉ = 4 flooder pops before the favored
    // batch ends; leave slack but rule out anything close to FIFO (48).
    assert!(
        flooder_before <= 12,
        "favored tenant starved: {flooder_before}/48 flooder tasks finished before its batch"
    );
    let snap = svc.introspect();
    let favored = snap.tenants.iter().find(|t| t.tenant == "favored").unwrap();
    assert_eq!((favored.submitted, favored.completed), (12, 12));
    assert!((favored.weight - 3.0).abs() < f64::EPSILON);
}

/// Eager eviction never touches dispatched work: a task dispatched before
/// its deadline and still running when it fires completes normally, while
/// a queued sibling with the same deadline is evicted without a permit
/// ever freeing.
#[test]
fn eager_eviction_spares_dispatched_tasks_and_evicts_queued_ones() {
    // threads(2) = one dispatcher + one executor permit.
    let svc = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(8));
    let release = Arc::new(AtomicBool::new(false));
    let r = Arc::clone(&release);
    // Dispatched immediately (idle permit), outlives its own deadline.
    let dispatched = svc
        .submit_with_deadline(Duration::from_millis(20), move || {
            while !r.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(1));
            }
            99usize
        })
        .unwrap();
    while svc.stats().running == 0 {
        std::thread::yield_now();
    }
    // Queued behind the busy permit with the same deadline: evicted.
    let queued = svc.submit_with_deadline(Duration::from_millis(20), || 1usize).unwrap();
    let give_up = Instant::now() + Duration::from_secs(10);
    while svc.stats().expired == 0 {
        assert!(Instant::now() < give_up, "eager eviction never fired: {:?}", svc.stats());
        std::thread::sleep(Duration::from_millis(1));
    }
    let mid = svc.stats();
    assert_eq!((mid.expired, mid.running, mid.queue_len), (1, 1, 0), "{mid:?}");
    assert_eq!(queued.wait(), Err(QcorError::TaskShed));
    release.store(true, Ordering::Release);
    assert_eq!(dispatched.wait(), Ok(99), "a dispatched task is past eviction");
    svc.drain();
    let stats = svc.stats();
    assert_eq!((stats.expired, stats.completed), (1, 1));
}

/// Service-level cooperative cancellation of a chunked shot sweep:
/// `TaskFuture::cancel` on a dispatched task sets the task's thread-local
/// token, the sweep stops at a chunk boundary, and the merged counts of
/// the completed prefix are bit-identical to re-running exactly those
/// chunks on their derived RNG streams.
#[test]
fn cancelling_a_dispatched_sweep_keeps_the_completed_prefix_deterministic() {
    use qcor::sim::{derive_stream_seed, run_shots_cancellable, run_shots_planned, ShotPlan};
    use qcor::{PoolBuilder, RunConfig};

    const BASE_SEED: u64 = 77;
    const CHUNK: usize = 4;
    const SHOTS: usize = 256;
    let circuit = qcor::library::ghz_kernel(14);

    let svc = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(8));
    let circuit2 = circuit.clone();
    let f = svc
        .submit(move || {
            // A serial inner pool keeps chunk starts in plan order, so the
            // completed set is always a prefix of the plan.
            let pool = Arc::new(PoolBuilder::new().num_threads(1).build());
            let config = RunConfig { shots: SHOTS, seed: Some(BASE_SEED), ..RunConfig::default() };
            let plan = ShotPlan::with_chunk_shots(SHOTS, CHUNK);
            let token = qcor::sim::thread_cancel_token().expect("service installs the task token");
            run_shots_cancellable(&circuit2, pool, &config, &plan, &token)
        })
        .unwrap();
    while svc.stats().running == 0 {
        std::thread::yield_now();
    }
    assert!(!f.cancel(), "dispatched: cancel() reports false and requests a cooperative stop");
    let run = f.get();
    assert_eq!(run.total_chunks, SHOTS / CHUNK);
    assert_eq!(run.cancelled, run.completed_chunks < run.total_chunks);

    // Reference: each completed chunk replayed alone on its derived seed.
    let pool = Arc::new(PoolBuilder::new().num_threads(1).build());
    let mut expected: HashMap<String, usize> = HashMap::new();
    for index in 0..run.completed_chunks {
        let config = RunConfig {
            shots: CHUNK,
            seed: Some(derive_stream_seed(BASE_SEED, index)),
            ..RunConfig::default()
        };
        let plan = ShotPlan::with_chunk_shots(CHUNK, CHUNK);
        for (bits, n) in run_shots_planned(&circuit, Arc::clone(&pool), &config, &plan) {
            *expected.entry(bits).or_insert(0) += n;
        }
    }
    let got: HashMap<String, usize> = run.counts.into_iter().collect();
    assert_eq!(got, expected, "completed prefix must be bit-identical to the uncancelled chunks");
    assert_eq!(expected.values().sum::<usize>(), run.completed_chunks * CHUNK);
}

/// The live introspection snapshot: per-tenant columns sum to the
/// `ServiceStats` totals, the identity holds per tenant, and the debug
/// HTTP listener serves the same JSON the snapshot renders.
#[test]
fn introspection_sums_and_debug_endpoint_agree() {
    let svc = Arc::new(ExecutionService::new(ExecServiceConfig::default().threads(3).capacity(64)));
    let mut futures = Vec::new();
    for (tenant, n) in [("t-a", 6usize), ("t-b", 9), ("t-c", 3)] {
        for i in 0..n {
            futures.push(svc.submit_spec(qcor::TaskSpec::new().tenant(tenant), move || i * i).unwrap());
        }
    }
    for f in futures {
        f.get();
    }
    svc.drain();
    let snap = svc.introspect();
    let s = snap.stats;
    assert_eq!(s.submitted, s.completed + s.running + s.queue_len + s.shed + s.cancelled + s.expired);
    let sum = |f: fn(&qcor::TenantStats) -> usize| snap.tenants.iter().map(f).sum::<usize>();
    assert_eq!(sum(|t| t.submitted), s.submitted);
    assert_eq!(sum(|t| t.completed), s.completed);
    assert_eq!(sum(|t| t.running) + sum(|t| t.shed) + sum(|t| t.cancelled) + sum(|t| t.expired), 0);
    for t in &snap.tenants {
        assert_eq!(
            t.submitted,
            t.completed + t.running + t.queued() + t.shed + t.cancelled + t.expired,
            "identity broken for tenant {}",
            t.tenant
        );
    }

    // The debug listener serves exactly what introspect() renders. The
    // backends section samples live global-registry load gauges that other
    // tests in this binary move concurrently, so compare the service-local
    // prefix (service config + stats + tenants) of both renders.
    let svc2 = Arc::clone(&svc);
    let server = qcor::DebugServer::start("127.0.0.1:0", move || svc2.introspect()).expect("bind loopback");
    let addr = server.local_addr();
    use std::io::{Read, Write};
    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    conn.write_all(b"GET /stats HTTP/1.0\r\n\r\n").unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.0 200"), "{response}");
    let body = response.split_once("\r\n\r\n").expect("http header/body").1;
    let service_local = |json: &str| json.split("\"backends\"").next().unwrap().to_string();
    assert_eq!(service_local(body), service_local(&svc.introspect().to_json()));
    assert!(body.contains("\"tenant\":\"t-b\""));
}
