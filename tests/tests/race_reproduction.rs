//! RACE experiment (DESIGN.md): reproduce the §V-A.2 shared-accelerator
//! data race through the public runtime API, and show the paper's fix
//! (cloneable accelerators + QPUManager) eliminates it.
//!
//! * Legacy mode: every thread's `initialize` resolves to the *same*
//!   `qpp-legacy-shared` singleton; concurrent kernels interleave their
//!   gate streams and produce corrupted counts.
//! * Fixed mode: `initialize` constructs a fresh `qpp` instance per
//!   thread; concurrent kernels are perfectly isolated.

use qcor::{initialize, initialize_legacy_shared, qalloc, InitOptions, Kernel, QReg};

const BELL: &str = r#"
__qpu__ void bell(qreg q) {
    using qcor::xasm;
    H(q[0]);
    CX(q[0], q[1]);
    for (int i = 0; i < q.size(); i++) { Measure(q[i]); }
}
"#;

fn bell_run(shots: usize, seed: u64, legacy: bool) -> QReg {
    if legacy {
        initialize_legacy_shared(shots, Some(seed)).unwrap();
    } else {
        initialize(InitOptions::default().threads(1).shots(shots).seed(seed)).unwrap();
    }
    let q = qalloc(2);
    Kernel::from_xasm(BELL, 2).unwrap().invoke(&q, &[]).unwrap();
    q
}

fn is_clean_bell(q: &QReg, shots: usize) -> bool {
    q.total_shots() == shots && q.measurement_counts().keys().all(|k| k == "00" || k == "11")
}

#[test]
fn legacy_shared_backend_corrupts_concurrent_kernels() {
    let mut corrupted = false;
    for attempt in 0..25 {
        let handles: Vec<_> =
            (0..2).map(|t| std::thread::spawn(move || bell_run(64, attempt * 10 + t, true))).collect();
        for h in handles {
            let q = h.join().unwrap();
            if !is_clean_bell(&q, 64) {
                corrupted = true;
            }
        }
        if corrupted {
            break;
        }
    }
    assert!(
        corrupted,
        "two threads on the shared singleton never corrupted a Bell run; \
         the pre-fix reproduction has lost its race"
    );
}

#[test]
fn legacy_shared_backend_is_fine_single_threaded() {
    // The pre-fix code was correct sequentially — only concurrency breaks it.
    std::thread::spawn(|| {
        for seed in 0..4 {
            let q = bell_run(128, seed, true);
            assert!(is_clean_bell(&q, 128), "{:?}", q.measurement_counts());
        }
    })
    .join()
    .unwrap();
}

#[test]
fn qpu_manager_fix_isolates_concurrent_kernels() {
    // Many rounds of 4 concurrent kernels: never a corrupted result.
    for round in 0..10 {
        let handles: Vec<_> =
            (0..4).map(|t| std::thread::spawn(move || bell_run(64, round * 100 + t, false))).collect();
        for h in handles {
            let q = h.join().unwrap();
            assert!(
                is_clean_bell(&q, 64),
                "fixed runtime produced corrupted counts: {:?}",
                q.measurement_counts()
            );
        }
    }
}

#[test]
fn qcor_spawn_wrapper_also_isolates() {
    // The qcor::spawn wrapper (auto-initialize) on top of a parent init.
    std::thread::spawn(|| {
        initialize(InitOptions::default().threads(1).shots(64).seed(1)).unwrap();
        let tasks: Vec<_> = (0..4)
            .map(|_| {
                qcor::spawn(|| {
                    let q = qalloc(2);
                    Kernel::from_xasm(BELL, 2).unwrap().invoke(&q, &[]).unwrap();
                    q
                })
            })
            .collect();
        for t in tasks {
            let q = t.get();
            assert!(is_clean_bell(&q, 64));
        }
    })
    .join()
    .unwrap();
}
