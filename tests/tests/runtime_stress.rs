//! Concurrency stress for the thread-safety claims: many threads hammer
//! `qalloc`, `initialize`, the QPUManager and kernel execution at once.
//! Rust's model guarantees absence of memory unsafety; these tests check
//! the *semantic* guarantees — no lost registrations, no cross-thread
//! contamination, consistent totals.

use qcor::{initialize, qalloc, InitOptions, Kernel, QPUManager};

const GHZ3: &str = r#"
__qpu__ void ghz(qreg q) {
    H(q[0]);
    CX(q[0], q[1]);
    CX(q[1], q[2]);
    for (int i = 0; i < q.size(); i++) { Measure(q[i]); }
}
"#;

#[test]
fn interleaved_qalloc_and_execute_from_many_threads() {
    qcor::clear_allocated_buffers();
    let threads = 8;
    let iterations = 12;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            std::thread::spawn(move || {
                initialize(InitOptions::default().threads(1).shots(16).seed(t)).unwrap();
                let kernel = Kernel::from_xasm(GHZ3, 3).unwrap();
                for _ in 0..iterations {
                    let q = qalloc(3);
                    kernel.invoke(&q, &[]).unwrap();
                    assert_eq!(q.total_shots(), 16);
                    let counts = q.measurement_counts();
                    assert!(
                        counts.keys().all(|k| k == "000" || k == "111"),
                        "thread {t} saw contaminated counts: {counts:?}"
                    );
                }
                QPUManager::instance().clear_current();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(qcor::allocated_buffer_count(), threads as usize * iterations);
    qcor::clear_allocated_buffers();
}

#[test]
fn rapid_initialize_reinitialize_cycles() {
    // Re-initializing must atomically swap the thread's accelerator; the
    // shots setting of the most recent initialize wins.
    std::thread::spawn(|| {
        let kernel = Kernel::from_xasm(GHZ3, 3).unwrap();
        for round in 0..20u64 {
            let shots = 8 + (round as usize % 3) * 4;
            initialize(InitOptions::default().threads(1).shots(shots).seed(round)).unwrap();
            let q = qalloc(3);
            kernel.invoke(&q, &[]).unwrap();
            assert_eq!(q.total_shots(), shots);
        }
        QPUManager::instance().clear_current();
    })
    .join()
    .unwrap();
}

#[test]
fn nested_spawns_inherit_transitively() {
    // spawn inside spawn: grandchildren still get initialized contexts.
    std::thread::spawn(|| {
        initialize(InitOptions::default().threads(1).shots(8).seed(1)).unwrap();
        let outer = qcor::spawn(|| {
            let inner = qcor::spawn(|| {
                let q = qalloc(2);
                Kernel::from_xasm("H(q[0]); Measure(q[0]); Measure(q[1]);", 2)
                    .unwrap()
                    .invoke(&q, &[])
                    .unwrap();
                q.total_shots()
            });
            inner.get()
        });
        assert_eq!(outer.get(), 8);
        QPUManager::instance().clear_current();
    })
    .join()
    .unwrap();
}

#[test]
fn shared_qreg_across_tasks_accumulates_atomically() {
    // Several tasks writing into the SAME buffer (clone-aliased QReg):
    // totals must be exact — the mutex-guarded buffer is the unit of
    // thread safety here.
    std::thread::spawn(|| {
        initialize(InitOptions::default().threads(1).shots(32).seed(9)).unwrap();
        let q = qalloc(2);
        let kernel_src = "H(q[0]); CX(q[0], q[1]); Measure(q[0]); Measure(q[1]);";
        let tasks: Vec<_> = (0..4)
            .map(|_| {
                let q = q.clone();
                qcor::spawn(move || {
                    Kernel::from_xasm(kernel_src, 2).unwrap().invoke(&q, &[]).unwrap();
                })
            })
            .collect();
        for t in tasks {
            t.get();
        }
        assert_eq!(q.total_shots(), 4 * 32);
        QPUManager::instance().clear_current();
    })
    .join()
    .unwrap();
}

#[test]
fn task_futures_complete_in_any_order() {
    let futures: Vec<_> = (0..6)
        .map(|i| {
            qcor::async_task(move || {
                // Stagger runtimes so completion order scrambles.
                std::thread::sleep(std::time::Duration::from_millis((6 - i) * 3));
                i
            })
        })
        .collect();
    // Collect in spawn order regardless of completion order.
    let values: Vec<u64> = futures.into_iter().map(|f| f.get()).collect();
    assert_eq!(values, vec![0, 1, 2, 3, 4, 5]);
}
