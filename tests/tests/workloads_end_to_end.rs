//! End-to-end workload tests: the full Shor, VQE and QAOA pipelines
//! through the public crates, exactly as the examples exercise them.

use qcor_algos::qaoa::{solve_maxcut, Graph};
use qcor_algos::shor::{factorize, factorize_parallel, KernelKind, ShorConfig};
use qcor_algos::vqe::{deuteron_vqe, deuteron_vqe_multistart, DEUTERON_GROUND_STATE};

#[test]
fn shor_factors_semiprimes_textbook() {
    for (n, seed) in [(15u64, 7u64), (21, 3), (33, 1), (35, 2)] {
        let config = ShorConfig { seed, shots: 16, max_attempts: 24, ..Default::default() };
        let f = factorize(n, &config).unwrap_or_else(|| panic!("failed to factor {n}"));
        assert_eq!(f.p * f.q, n, "{f:?}");
        assert!(f.p > 1 && f.q > 1);
    }
}

#[test]
fn shor_factors_15_beauregard_gate_level() {
    let config = ShorConfig { kernel: KernelKind::Beauregard, shots: 6, seed: 5, ..Default::default() };
    let f = factorize(15, &config).expect("Beauregard kernel should factor 15");
    assert_eq!((f.p, f.q), (3, 5));
}

#[test]
fn parallel_shor_matches_sequential_outcome() {
    let config = ShorConfig { seed: 13, ..Default::default() };
    let par = factorize_parallel(15, &config, 3).expect("parallel factorization");
    assert_eq!(par.p * par.q, 15);
}

#[test]
fn vqe_reaches_deuteron_ground_state() {
    let r = deuteron_vqe().unwrap();
    assert!((r.energy - DEUTERON_GROUND_STATE).abs() < 1e-3, "{r:?}");
}

#[test]
fn multistart_vqe_escapes_bad_start() {
    // θ0 = 3.0 sits near the landscape's maximum; multistart still finds
    // the global minimum.
    let multi = deuteron_vqe_multistart(&[3.0, 0.0, -1.5], "nelder-mead").unwrap();
    assert!((multi.energy - DEUTERON_GROUND_STATE).abs() < 5e-3, "{multi:?}");
}

#[test]
fn sampled_vqe_with_spsa_approaches_ground_state() {
    // Shot-based objective (through the qpp accelerator) + SPSA, the
    // noise-tolerant optimizer: must land near the ground state despite
    // sampling noise.
    use qcor::{create_objective_function, create_optimizer, initialize, qalloc, HetMap, InitOptions};
    std::thread::spawn(|| {
        initialize(InitOptions::default().threads(1).shots(2048).seed(17)).unwrap();
        let obj = create_objective_function(
            qcor_algos::vqe::deuteron_ansatz(),
            qcor_pauli::deuteron_hamiltonian(),
            qalloc(2),
            1,
            &HetMap::new().with("strategy", "sampled"),
        )
        .unwrap();
        let opt = create_optimizer("spsa", &HetMap::new().with("max-iters", 60usize)).unwrap();
        let r = opt.optimize(&obj, &[0.0]);
        // The sampled objective is noisy, and SPSA reports its best *noisy*
        // evaluation (which can undershoot the true minimum); judge the
        // result by the exact energy at the returned parameters instead.
        let exact = create_objective_function(
            qcor_algos::vqe::deuteron_ansatz(),
            qcor_pauli::deuteron_hamiltonian(),
            qalloc(2),
            1,
            &HetMap::new(), // exact strategy
        )
        .unwrap();
        let true_energy = exact.evaluate(&r.opt_params).unwrap();
        assert!(
            (true_energy - DEUTERON_GROUND_STATE).abs() < 0.1,
            "sampled SPSA VQE parameters give exact energy {true_energy} \
             (expected ≈ {DEUTERON_GROUND_STATE}; noisy best was {})",
            r.opt_val
        );
    })
    .join()
    .unwrap();
}

#[test]
fn qaoa_improves_with_depth_on_cycle() {
    let g = Graph::cycle(6);
    let r1 = solve_maxcut(&g, 1, &[0.7, 0.35]).unwrap();
    let r2 = solve_maxcut(&g, 2, &[0.7, 0.35, 0.4, 0.2]).unwrap();
    assert_eq!(r1.optimal_cut, 6.0);
    assert!(r1.expected_cut > 3.0, "p=1 beats random: {}", r1.expected_cut);
    assert!(r2.expected_cut >= r1.expected_cut - 0.05, "{} vs {}", r2.expected_cut, r1.expected_cut);
}
