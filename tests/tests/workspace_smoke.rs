//! Workspace smoke test: the quickstart Bell kernel driven entirely through
//! the `qcor::` facade — `initialize` → `qalloc` → XASM parse → `execute` —
//! proving the whole crate stack (pool → sim → xacc → circuit → core →
//! facade) links and runs. If this test compiles, every `use qcor::…` the
//! examples rely on resolves.

use qcor::{execute, execute_with, initialize, qalloc, xasm, ExecOptions, InitOptions};

const BELL_XASM: &str = r#"
    __qpu__ void bell(qreg q) {
        H(q[0]);
        CX(q[0], q[1]);
        for (int i = 0; i < q.size(); i++) {
            Measure(q[i]);
        }
    }
"#;

#[test]
fn quickstart_bell_through_facade() {
    const SHOTS: usize = 1024;
    initialize(InitOptions::default().shots(SHOTS)).expect("qpp backend is built in");

    let q = qalloc(2);
    let bell = xasm::parse_kernel(BELL_XASM, q.size())
        .expect("valid XASM")
        .bind(&[])
        .expect("kernel takes no parameters");

    execute(&q, &bell).expect("execution succeeds");

    let counts = q.measurement_counts();
    let total: usize = counts.values().sum();
    assert_eq!(total, SHOTS, "every shot lands in exactly one bitstring");
    assert_eq!(q.total_shots(), SHOTS);

    // A Bell state only ever measures 00 or 11.
    for bits in counts.keys() {
        assert!(bits == "00" || bits == "11", "unexpected Bell outcome {bits:?}");
    }
    assert!((q.probability("00") + q.probability("11") - 1.0).abs() < 1e-9);
}

#[test]
fn seeded_execute_with_is_reproducible() {
    initialize(InitOptions::default()).expect("qpp backend is built in");

    let bell = xasm::parse_kernel(BELL_XASM, 2).unwrap().bind(&[]).unwrap();
    let opts = ExecOptions::with_shots(256).seeded(7);

    let a = qalloc(2);
    execute_with(&a, &bell, &opts).unwrap();
    let b = qalloc(2);
    execute_with(&b, &bell, &opts).unwrap();

    assert_eq!(a.measurement_counts(), b.measurement_counts(), "same seed, same counts");
    assert_eq!(a.total_shots(), 256);
}
