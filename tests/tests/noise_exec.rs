//! Cross-representation correctness of the unified noise-execution layer.
//!
//! The same compiled plan (`compile_noisy`) drives three consumers: the
//! pure-state replay, the exact density (superoperator) replay, and the
//! trajectory sampler on the batched shot scheduler. These tests pin the
//! contracts between them:
//!
//! * a **noiseless** compiled density replay is exactly the outer product
//!   |ψ⟩⟨ψ| of the compiled pure-state replay (1e-12 per entry),
//! * **trajectory counts** are samples from the exact distribution the
//!   density path computes (chi-squared at α = 0.001, seeded), including
//!   circuits with mid-circuit measurement/reset and readout error,
//! * **grouped** Pauli estimation (one measured circuit per qubit-wise
//!   commuting group) equals the per-term exact expectation to 1e-10 on
//!   random Hamiltonians, evaluated on exact distributions so the only
//!   possible discrepancy is the grouping itself,
//! * seeded trajectory counts are **pool-size invariant**.

use qcor_circuit::{library, Circuit};
use qcor_pauli::{expectation, grouping::group_qubit_wise, Pauli, PauliString, PauliSum};
use qcor_pool::ThreadPool;
use qcor_sim::{
    apply_readout_error, c64, compile_noisy, exact_distribution, run_noisy_shots, run_once, ApplyState,
    Counts, DensityMatrix, NoiseModel, NoisyOp, RunConfig, StateVector,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Critical values of the chi-squared distribution at α = 0.001.
/// Index = degrees of freedom (0 unused).
const CHI2_CRIT_P001: [f64; 9] = [f64::NAN, 10.828, 13.816, 16.266, 18.467, 20.515, 22.458, 24.322, 26.124];

fn pool(threads: usize) -> Arc<ThreadPool> {
    Arc::new(ThreadPool::new(threads))
}

/// A seeded random unitary circuit (no measurements) over `n` qubits.
fn random_unitary_circuit(n: usize, depth: usize, rng: &mut StdRng) -> Circuit {
    let mut c = Circuit::new(n);
    for _ in 0..depth {
        let q = rng.gen_range(0..n);
        match rng.gen_range(0..6) {
            0 => {
                c.h(q);
            }
            1 => {
                c.x(q);
            }
            2 => {
                c.ry(q, rng.gen::<f64>() * 3.0);
            }
            3 => {
                c.rz(q, rng.gen::<f64>() * 3.0);
            }
            4 => {
                c.s(q);
            }
            _ => {
                let other = (q + 1 + rng.gen_range(0..n - 1)) % n;
                c.cx(q, other);
            }
        }
    }
    c
}

fn prepared(circuit: &Circuit) -> StateVector {
    let mut state = StateVector::new(circuit.num_qubits());
    let mut rng = StdRng::seed_from_u64(0); // unitary circuits: unused
    run_once(&mut state, circuit, &mut rng);
    state
}

// ---- density ≡ outer product through the compiled path ----------------

#[test]
fn noiseless_compiled_density_is_the_outer_product_of_the_state() {
    let mut rng = StdRng::seed_from_u64(2024);
    for n in [2usize, 3] {
        for _ in 0..4 {
            let circuit = random_unitary_circuit(n, 14, &mut rng);
            // Pure path: compiled single-shot replay.
            let psi = prepared(&circuit);
            // Density path: replay the *same* lowered plan as superoperator
            // sweeps through the ApplyState implementation.
            let plan = compile_noisy(&circuit, &NoiseModel::default(), false);
            let mut rho = DensityMatrix::new(n);
            for op in plan.ops() {
                match op {
                    NoisyOp::Unitary(k) => rho.apply_kernel_op(k),
                    other => panic!("noiseless plan must be purely unitary, got {other:?}"),
                }
            }
            for r in 0..1usize << n {
                for col in 0..1usize << n {
                    let expected = psi.amp(r) * psi.amp(col).conj();
                    let got = rho.entry(r, col);
                    assert!(
                        (got.re - expected.re).abs() < 1e-12 && (got.im - expected.im).abs() < 1e-12,
                        "ρ[{r},{col}] = {got:?}, |ψ⟩⟨ψ| gives {expected:?}"
                    );
                }
            }
        }
    }
}

// ---- trajectory counts vs the exact density distribution --------------

/// Chi-squared goodness-of-fit of trajectory `counts` against the exact
/// outcome distribution `dist` from the density path. Outcomes the exact
/// path assigns probability ~0 must not be sampled at all.
fn chi_squared_vs(dist: &BTreeMap<String, f64>, counts: &Counts, shots: usize) -> (f64, usize) {
    for key in counts.keys() {
        assert!(
            dist.get(key).is_some_and(|&p| p > 1e-12),
            "outcome {key} was sampled but has probability 0 in the exact distribution"
        );
    }
    let mut statistic = 0.0;
    let mut cells = 0usize;
    for (key, &p) in dist {
        if p < 1e-12 {
            continue;
        }
        let expected = p * shots as f64;
        let observed = counts.get(key).copied().unwrap_or(0) as f64;
        statistic += (observed - expected) * (observed - expected) / expected;
        cells += 1;
    }
    (statistic, cells - 1)
}

/// A circuit exercising mid-circuit measurement *and* reset: the first
/// measurement of q0 is later overwritten by the terminal one, and the
/// reset re-pumps q0 into a fresh Bell pair with q1.
fn mid_circuit_circuit() -> Circuit {
    let mut c = Circuit::new(2);
    c.h(0).measure(0).reset(0).h(0).cx(0, 1).measure(0).measure(1);
    c
}

#[test]
fn trajectory_counts_fit_the_exact_density_distribution() {
    const SHOTS: usize = 8192;
    let cells: [(&str, Circuit, NoiseModel, f64); 4] = [
        (
            "bell/depol+dephase",
            library::bell_kernel(),
            NoiseModel { depolarizing: 0.05, dephasing: 0.03, ..Default::default() },
            0.0,
        ),
        (
            "ghz3/damping",
            library::ghz_kernel(3),
            NoiseModel { amplitude_damping: 0.08, ..Default::default() },
            0.0,
        ),
        (
            "bell/depol+readout",
            library::bell_kernel(),
            NoiseModel { depolarizing: 0.04, ..Default::default() },
            0.02,
        ),
        (
            "midcircuit/depol",
            mid_circuit_circuit(),
            NoiseModel { depolarizing: 0.05, ..Default::default() },
            0.0,
        ),
    ];
    for (label, circuit, noise, readout) in &cells {
        let exact = DensityMatrix::run_noisy_circuit(circuit, pool(1), noise).unwrap();
        let exact = apply_readout_error(&exact, *readout);
        let config = RunConfig { shots: SHOTS, seed: Some(4242), ..RunConfig::default() };
        let counts = run_noisy_shots(circuit, noise, *readout, pool(2), &config);
        assert_eq!(counts.values().sum::<usize>(), SHOTS, "{label}");
        let (statistic, df) = chi_squared_vs(&exact, &counts, SHOTS);
        let critical = CHI2_CRIT_P001[df];
        assert!(
            statistic < critical,
            "{label}: chi² = {statistic:.2} exceeds the α=0.001 critical value {critical} (df = {df})"
        );
    }
}

// ---- grouped vs per-term Pauli estimation ------------------------------

/// A random Hamiltonian over `n` qubits with `terms` non-identity terms.
fn random_hamiltonian(n: usize, terms: usize, rng: &mut StdRng) -> PauliSum {
    let mut h = PauliSum::constant(rng.gen::<f64>() - 0.5);
    for _ in 0..terms {
        let mut pairs: Vec<(usize, Pauli)> = Vec::new();
        for q in 0..n {
            if rng.gen::<f64>() < 0.6 {
                let p = match rng.gen_range(0..3) {
                    0 => Pauli::X,
                    1 => Pauli::Y,
                    _ => Pauli::Z,
                };
                pairs.push((q, p));
            }
        }
        if pairs.is_empty() {
            continue;
        }
        h.add_term(c64(rng.gen::<f64>() * 4.0 - 2.0, 0.0), PauliString::from_pairs(pairs));
    }
    h
}

/// ⟨H⟩ through the grouped measurement pipeline, but on **exact** group
/// distributions (f64-weighted parity sums instead of sampled counts), so
/// the comparison against the operator-level expectation isolates the
/// grouping/basis-rotation logic from shot noise.
fn grouped_exact_energy(h: &PauliSum, prep: &Circuit) -> f64 {
    let grouped = group_qubit_wise(h);
    let n = prep.num_qubits().max(h.num_qubits());
    let mut energy = grouped.constant;
    for group in &grouped.groups {
        let mut circuit = Circuit::new(n);
        circuit.extend(prep);
        circuit.extend(&expectation::measurement_circuit(&group.basis, n));
        let probs = exact_distribution(&circuit, pool(1)).unwrap();
        for (coeff, term) in &group.terms {
            let support = term.support();
            let value: f64 = probs
                .iter()
                .enumerate()
                .map(|(index, &p)| {
                    let parity = support.iter().filter(|&&q| index >> q & 1 == 1).count();
                    if parity % 2 == 0 {
                        p
                    } else {
                        -p
                    }
                })
                .sum();
            energy += coeff.re * value;
        }
    }
    energy
}

#[test]
fn grouped_estimation_matches_per_term_expectation_on_random_hamiltonians() {
    let mut rng = StdRng::seed_from_u64(7031);
    for trial in 0..8 {
        let n = 3;
        let h = random_hamiltonian(n, 6, &mut rng);
        let prep = random_unitary_circuit(n, 12, &mut rng);
        let per_term = expectation::exact(&prepared(&prep), &h);
        let grouped = grouped_exact_energy(&h, &prep);
        assert!(
            (per_term - grouped).abs() < 1e-10,
            "trial {trial}: per-term {per_term} vs grouped {grouped} for {h:?}"
        );
        // Grouping must actually merge commuting terms, not run one
        // execution per term (identity terms are folded into the constant).
        let non_identity = h.terms().iter().filter(|(_, t)| !t.is_identity()).count();
        assert!(group_qubit_wise(&h).groups.len() <= non_identity);
    }
}

// ---- trajectory determinism --------------------------------------------

/// Render counts in a canonical byte form.
fn canonical(counts: &Counts) -> String {
    counts.iter().map(|(bits, n)| format!("{bits}:{n};")).collect()
}

#[test]
fn seeded_trajectory_counts_are_pool_size_invariant() {
    // Amplitude damping is the channel whose jump probability depends on
    // the live state (a parallel reduction), so it is the one that would
    // expose pool-size-dependent RNG consumption or float ordering.
    let cells: [(&str, Circuit, NoiseModel, f64); 3] = [
        (
            "bell/all-channels",
            library::bell_kernel(),
            NoiseModel { depolarizing: 0.02, dephasing: 0.05, amplitude_damping: 0.04 },
            0.01,
        ),
        (
            "ghz3/damping",
            library::ghz_kernel(3),
            NoiseModel { amplitude_damping: 0.1, ..Default::default() },
            0.0,
        ),
        (
            "midcircuit/depol",
            mid_circuit_circuit(),
            NoiseModel { depolarizing: 0.05, ..Default::default() },
            0.02,
        ),
    ];
    for (label, circuit, noise, readout) in &cells {
        for chunk_shots in [None, Some(17)] {
            let config = RunConfig { shots: 1000, seed: Some(909), chunk_shots, ..RunConfig::default() };
            let narrow = run_noisy_shots(circuit, noise, *readout, pool(1), &config);
            let mid = run_noisy_shots(circuit, noise, *readout, pool(2), &config);
            let wide = run_noisy_shots(circuit, noise, *readout, pool(4), &config);
            assert_eq!(narrow.values().sum::<usize>(), 1000, "{label}");
            assert_eq!(canonical(&narrow), canonical(&mid), "{label}/chunk{chunk_shots:?}: pool 1 vs 2");
            assert_eq!(canonical(&narrow), canonical(&wide), "{label}/chunk{chunk_shots:?}: pool 1 vs 4");
        }
    }
}
