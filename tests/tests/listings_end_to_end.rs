//! End-to-end reproductions of the paper's code listings through the
//! public API: Listing 1 (Bell + print), Listing 4 (std::thread),
//! Listing 5 (std::async / future).

use qcor::{initialize, qalloc, ExecOptions, InitOptions, Kernel, QReg};

const BELL: &str = r#"
__qpu__ void bell(qreg q) {
    using qcor::xasm;
    H(q[0]);
    CX(q[0], q[1]);
    for (int i = 0; i < q.size(); i++) { Measure(q[i]); }
}
"#;

/// The `foo()` of Listing 4.
fn foo() -> QReg {
    let q = qalloc(2);
    Kernel::from_xasm(BELL, 2).unwrap().invoke(&q, &[]).unwrap();
    q
}

#[test]
fn listing_1_bell_and_listing_2_output() {
    std::thread::spawn(|| {
        initialize(InitOptions::default().threads(1).shots(1024).seed(2023)).unwrap();
        let q = foo();
        // Listing 2: 1024 shots split between "00" and "11" near 50/50.
        assert_eq!(q.total_shots(), 1024);
        let counts = q.measurement_counts();
        assert!(counts.keys().all(|k| k == "00" || k == "11"), "{counts:?}");
        let c00 = *counts.get("00").unwrap_or(&0);
        assert!((380..=640).contains(&c00), "00 count {c00} out of statistical range");
        // And the JSON document has the Listing-2 shape.
        let json = q.to_json();
        assert!(json.contains("\"AcceleratorBuffer\": {"));
        assert!(json.contains("\"size\": 2"));
        assert!(json.contains("\"Measurements\": {"));
    })
    .join()
    .unwrap();
}

#[test]
fn listing_4_two_threads() {
    // thread t0(foo); thread t1(foo); ... t0.join(); t1.join();
    // With manual per-thread initialize, exactly as the paper's current
    // implementation status (§V-C) requires.
    let spawn_foo = |seed: u64| {
        std::thread::spawn(move || {
            initialize(InitOptions::default().threads(1).shots(256).seed(seed)).unwrap();
            foo()
        })
    };
    let t0 = spawn_foo(1);
    let t1 = spawn_foo(2);
    for q in [t0.join().unwrap(), t1.join().unwrap()] {
        assert_eq!(q.total_shots(), 256);
        assert!(q.measurement_counts().keys().all(|k| k == "00" || k == "11"));
    }
}

#[test]
fn listing_5_async_future() {
    // std::future<int> f = async(launch::async, [=]() -> int { foo(); return 1; });
    std::thread::spawn(|| {
        initialize(InitOptions::default().threads(1).shots(128).seed(3)).unwrap();
        let f = qcor::async_task(|| {
            foo();
            1
        });
        // "Other classical/quantum work" overlaps here.
        let overlapped = foo();
        assert_eq!(f.get(), 1);
        assert_eq!(overlapped.total_shots(), 128);
    })
    .join()
    .unwrap();
}

#[test]
fn results_equivalent_across_parallel_and_sequential() {
    // The same seeded kernels produce identical counts whether run
    // one-by-one or in parallel — user-level threading must not change
    // results, only timing.
    let sequential: Vec<_> = (0..3)
        .map(|seed| {
            std::thread::spawn(move || {
                initialize(InitOptions::default().threads(1).shots(512).seed(seed)).unwrap();
                foo().measurement_counts()
            })
            .join()
            .unwrap()
        })
        .collect();
    let handles: Vec<_> = (0..3)
        .map(|seed| {
            std::thread::spawn(move || {
                initialize(InitOptions::default().threads(1).shots(512).seed(seed)).unwrap();
                foo().measurement_counts()
            })
        })
        .collect();
    let parallel: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(sequential, parallel);
}

#[test]
fn execute_with_override_and_accumulation() {
    std::thread::spawn(|| {
        initialize(InitOptions::default().threads(1).shots(1024).seed(5)).unwrap();
        let q = qalloc(2);
        let bell = Kernel::from_xasm(BELL, 2).unwrap();
        let circuit = bell.bind(&[]).unwrap();
        qcor::execute_with(&q, &circuit, &ExecOptions::with_shots(10).seeded(1)).unwrap();
        qcor::execute_with(&q, &circuit, &ExecOptions::with_shots(15).seeded(2)).unwrap();
        assert_eq!(q.total_shots(), 25);
    })
    .join()
    .unwrap();
}

#[test]
fn remote_backend_overlaps_latency_with_async() {
    // Task-level parallelism pays off even on one CPU when the backend has
    // queueing/network latency (§IV-A's cloud scenario): two concurrent
    // remote kernels overlap their latencies.
    use std::time::Instant;
    std::thread::spawn(|| {
        initialize(
            InitOptions::default()
                .backend("remote")
                .threads(1)
                .shots(4)
                .seed(1)
                .param("latency-ms", 120usize),
        )
        .unwrap();

        let sequential = Instant::now();
        foo();
        foo();
        let sequential = sequential.elapsed();

        let parallel = Instant::now();
        let a = qcor::async_task(foo);
        let b = qcor::async_task(foo);
        a.get();
        b.get();
        let parallel = parallel.elapsed();

        assert!(
            parallel.as_secs_f64() < sequential.as_secs_f64() * 0.8,
            "latency overlap should speed up concurrent remote kernels: \
             sequential {sequential:?} vs parallel {parallel:?}"
        );
    })
    .join()
    .unwrap();
}

#[test]
fn noisy_backend_through_public_api() {
    std::thread::spawn(|| {
        initialize(
            InitOptions::default()
                .backend("qpp-noisy")
                .shots(512)
                .seed(4)
                .param("depolarizing", 0.02)
                .param("readout-error", 0.0),
        )
        .unwrap();
        let q = foo();
        assert_eq!(q.total_shots(), 512);
        // Noise leaks probability outside {00, 11} but the signal dominates.
        let clean = q.probability("00") + q.probability("11");
        assert!(clean > 0.7 && clean <= 1.0, "clean mass {clean}");
    })
    .join()
    .unwrap();
}
