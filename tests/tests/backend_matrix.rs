//! Backend consistency matrix: every registered backend, driven through
//! the public `qcor` runtime, must (a) execute the Bell kernel, (b)
//! conserve shots, and (c) agree on the ideal distribution when its noise
//! is turned off.

use qcor::{initialize, qalloc, InitOptions, Kernel, QReg};

const BELL: &str = r#"
__qpu__ void bell(qreg q) {
    using qcor::xasm;
    H(q[0]);
    CX(q[0], q[1]);
    for (int i = 0; i < q.size(); i++) { Measure(q[i]); }
}
"#;

fn run_backend(opts: InitOptions, shots: usize) -> QReg {
    std::thread::spawn(move || {
        initialize(opts.shots(shots)).unwrap();
        let q = qalloc(2);
        Kernel::from_xasm(BELL, 2).unwrap().invoke(&q, &[]).unwrap();
        q
    })
    .join()
    .unwrap()
}

#[test]
fn qpp_backend_ideal_bell() {
    let q = run_backend(InitOptions::default().threads(1).seed(1), 512);
    assert_eq!(q.total_shots(), 512);
    assert!(q.measurement_counts().keys().all(|k| k == "00" || k == "11"));
}

#[test]
fn density_backend_ideal_bell_matches_qpp() {
    let q = run_backend(InitOptions::default().backend("qpp-density").seed(2), 512);
    assert_eq!(q.total_shots(), 512);
    assert!(q.measurement_counts().keys().all(|k| k == "00" || k == "11"), "{:?}", q.measurement_counts());
    let p00 = q.probability("00");
    assert!((p00 - 0.5).abs() < 0.08, "p00 = {p00}");
}

#[test]
fn noisy_backend_zero_noise_is_ideal() {
    let q = run_backend(
        InitOptions::default()
            .backend("qpp-noisy")
            .seed(3)
            .param("depolarizing", 0.0)
            .param("readout-error", 0.0),
        256,
    );
    assert!(q.measurement_counts().keys().all(|k| k == "00" || k == "11"));
}

#[test]
fn density_and_trajectory_noise_agree() {
    let p = 0.04;
    let exact =
        run_backend(InitOptions::default().backend("qpp-density").seed(4).param("depolarizing", p), 4096);
    let traj = run_backend(
        InitOptions::default()
            .backend("qpp-noisy")
            .seed(5)
            .param("depolarizing", p)
            .param("readout-error", 0.0),
        4096,
    );
    let clean_exact = exact.probability("00") + exact.probability("11");
    let clean_traj = traj.probability("00") + traj.probability("11");
    assert!((clean_exact - clean_traj).abs() < 0.05, "exact {clean_exact} vs trajectory {clean_traj}");
    assert!(clean_exact < 0.999, "noise must be visible");
}

#[test]
fn remote_backend_conserves_shots() {
    let q = run_backend(
        InitOptions::default().backend("remote").threads(1).seed(6).param("latency-ms", 1usize),
        64,
    );
    assert_eq!(q.total_shots(), 64);
}

#[test]
fn all_cloneable_backends_are_listed() {
    let names = qcor_xacc::registry::global().service_names();
    for expected in ["qpp", "qpp-noisy", "qpp-density", "remote", "qpp-legacy-shared"] {
        assert!(names.iter().any(|n| n == expected), "{expected} missing");
    }
    for cloneable in ["qpp", "qpp-noisy", "qpp-density", "remote"] {
        assert_eq!(qcor_xacc::registry::global().is_cloneable(cloneable), Some(true), "{cloneable}");
    }
    assert_eq!(qcor_xacc::registry::global().is_cloneable("qpp-legacy-shared"), Some(false));
}
