//! Harness shared by the figure-reproduction binaries (`fig3_bell`,
//! `fig4_shor`, `fig5_scaling`) and the Criterion micro-benchmarks.
//!
//! The paper's two experimental variants (§VI) are modeled directly:
//!
//! * **One-by-One (conventional)** — run kernel 1 with N simulator
//!   threads, then kernel 2 with N simulator threads.
//! * **Parallel (the paper's approach)** — run both kernels at the same
//!   time on two OS threads, each kernel simulating with N/2 threads.
//!
//! Accelerator/pool construction happens *outside* the timed region, so
//! the measurement captures kernel execution the way the paper's
//! wall-clock numbers do.

use qcor_pool::ThreadPool;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A kernel task: given its (pre-built) simulator pool, run to completion.
pub type KernelTask = Box<dyn FnOnce(Arc<ThreadPool>) + Send>;

/// Time one closure.
pub fn time_once<F: FnOnce()>(f: F) -> Duration {
    let start = Instant::now();
    f();
    start.elapsed()
}

/// Shared tail of a perf-guard binary (`shotsched_guard`, `queue_guard`):
/// print `ratio` against its regression `limit` and **exit non-zero** on
/// breach, so a CI step fails. `what` names the ratio (e.g. "queued /
/// inline"); `recorded_to` names the BENCH_*.json the caller just wrote.
pub fn enforce_guard_ratio(what: &str, ratio: f64, limit: f64, recorded_to: &str) {
    println!("\n{what} = {ratio:.2} (limit {limit})");
    if ratio > limit {
        eprintln!("FAIL: {what} ratio {ratio:.2} exceeds the regression limit {limit}");
        std::process::exit(1);
    }
    println!("OK: within the regression budget; recorded to {recorded_to}");
}

/// Run `make_tasks()` under both variants `reps` times and keep the best
/// (minimum) wall time per variant — the standard way to suppress noise
/// for throughput-style comparisons.
pub struct VariantTimer {
    /// Repetitions per variant.
    pub reps: usize,
}

impl Default for VariantTimer {
    fn default() -> Self {
        VariantTimer { reps: 3 }
    }
}

impl VariantTimer {
    /// One-by-One: each task runs to completion before the next starts,
    /// each with its own pre-built pool of `threads_per_kernel` threads.
    pub fn one_by_one<F>(&self, make_tasks: F, threads_per_kernel: usize) -> Duration
    where
        F: Fn() -> Vec<KernelTask>,
    {
        let mut best = Duration::MAX;
        for _ in 0..self.reps {
            let tasks = make_tasks();
            // Pools are constructed before the clock starts.
            let pools: Vec<Arc<ThreadPool>> =
                (0..tasks.len()).map(|_| Arc::new(ThreadPool::new(threads_per_kernel))).collect();
            let elapsed = time_once(|| {
                for (task, pool) in tasks.into_iter().zip(pools) {
                    task(pool);
                }
            });
            best = best.min(elapsed);
        }
        best
    }

    /// Parallel: all tasks start together on their own OS threads, each
    /// with a pre-built pool of `threads_per_kernel` threads.
    pub fn parallel<F>(&self, make_tasks: F, threads_per_kernel: usize) -> Duration
    where
        F: Fn() -> Vec<KernelTask>,
    {
        let mut best = Duration::MAX;
        for _ in 0..self.reps {
            let tasks = make_tasks();
            let pools: Vec<Arc<ThreadPool>> =
                (0..tasks.len()).map(|_| Arc::new(ThreadPool::new(threads_per_kernel))).collect();
            let elapsed = time_once(|| {
                let handles: Vec<_> = tasks
                    .into_iter()
                    .zip(pools)
                    .map(|(task, pool)| std::thread::spawn(move || task(pool)))
                    .collect();
                for h in handles {
                    h.join().expect("kernel task panicked");
                }
            });
            best = best.min(elapsed);
        }
        best
    }

    /// Shared-pool parallel (the batched shot scheduler's model): all
    /// tasks run as work items of one [`ThreadPool::submit_batch`] on a
    /// single pre-built pool of `total_threads` threads — no OS-thread
    /// spawn and no private pool per task. A task running on a pool
    /// worker executes its own parallel constructs inline.
    pub fn parallel_shared<F>(&self, make_tasks: F, total_threads: usize) -> Duration
    where
        F: Fn() -> Vec<KernelTask>,
    {
        let mut best = Duration::MAX;
        for _ in 0..self.reps {
            let tasks = make_tasks();
            let pool = Arc::new(ThreadPool::new(total_threads));
            let elapsed = time_once(|| {
                let jobs: Vec<_> = tasks
                    .into_iter()
                    .map(|task| {
                        let pool = Arc::clone(&pool);
                        move || task(pool)
                    })
                    .collect();
                pool.submit_batch(jobs);
            });
            best = best.min(elapsed);
        }
        best
    }
}

/// A row of a reproduction table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Variant label, e.g. `One-by-One (12 threads)`.
    pub label: String,
    /// Measured wall time.
    pub time: Duration,
    /// Speedup relative to the table's baseline row.
    pub speedup: f64,
    /// The figure's reported speedup for the analogous configuration, if
    /// the machine shape allows a direct analogy.
    pub paper: Option<f64>,
}

/// Print a figure-reproduction table, computing speedups against
/// `rows[baseline]`.
pub fn print_table(title: &str, rows: &mut [Row], baseline: usize) {
    let base = rows[baseline].time.as_secs_f64();
    for row in rows.iter_mut() {
        row.speedup = base / row.time.as_secs_f64();
    }
    println!("\n{title}");
    println!("{:-<78}", "");
    println!("{:<38} {:>10} {:>10} {:>12}", "variant", "time (ms)", "speedup", "paper");
    for row in rows.iter() {
        let paper = row.paper.map(|p| format!("{p:.2}")).unwrap_or_else(|| "-".to_string());
        println!(
            "{:<38} {:>10.1} {:>10.2} {:>12}",
            row.label,
            row.time.as_secs_f64() * 1e3,
            row.speedup,
            paper
        );
    }
    println!("{:-<78}", "");
}

/// The machine's logical CPU count, and the paper-analogous thread
/// ladder. The paper's box has 24 hardware threads; on a machine with C
/// logical CPUs the analogy is baseline = C/2, oversubscribed = C,
/// parallel halves = C/4 and C/2 per task.
pub struct MachineShape {
    /// Logical CPUs.
    pub logical_cpus: usize,
    /// The "12 threads" analogue (half the machine).
    pub half: usize,
    /// The "24 threads" analogue (the whole machine).
    pub full: usize,
    /// The "6 threads/task" analogue.
    pub quarter: usize,
}

impl MachineShape {
    /// Detect the current machine.
    pub fn detect() -> Self {
        let logical_cpus = qcor_pool::available_parallelism();
        MachineShape {
            logical_cpus,
            half: (logical_cpus / 2).max(1),
            full: logical_cpus.max(1),
            quarter: (logical_cpus / 4).max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn variants_run_all_tasks() {
        static RAN: AtomicUsize = AtomicUsize::new(0);
        let timer = VariantTimer { reps: 1 };
        let make = || -> Vec<KernelTask> {
            (0..3)
                .map(|_| {
                    Box::new(|_pool: Arc<ThreadPool>| {
                        RAN.fetch_add(1, Ordering::Relaxed);
                    }) as KernelTask
                })
                .collect()
        };
        timer.one_by_one(make, 1);
        assert_eq!(RAN.load(Ordering::Relaxed), 3);
        timer.parallel(make, 1);
        assert_eq!(RAN.load(Ordering::Relaxed), 6);
        timer.parallel_shared(make, 2);
        assert_eq!(RAN.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn table_computes_speedups() {
        let mut rows = vec![
            Row { label: "base".into(), time: Duration::from_millis(100), speedup: 0.0, paper: Some(1.0) },
            Row { label: "fast".into(), time: Duration::from_millis(50), speedup: 0.0, paper: None },
        ];
        print_table("test", &mut rows, 0);
        assert!((rows[0].speedup - 1.0).abs() < 1e-12);
        assert!((rows[1].speedup - 2.0).abs() < 1e-12);
    }

    #[test]
    fn machine_shape_is_sane() {
        let m = MachineShape::detect();
        assert!(m.full >= m.half && m.half >= m.quarter && m.quarter >= 1);
    }
}
