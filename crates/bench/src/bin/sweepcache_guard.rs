//! Perf-regression guard for the structural compile cache + wire format.
//!
//! Three gates, all of which fail the process (non-zero exit) on breach:
//!
//! 1. **Correctness** — an angle sweep over one circuit structure must
//!    merge identical seeded counts with the cache on and off, and the
//!    sweep must actually hit the cache (≥ sweep-1 hits on the
//!    process-global counter after the first compile).
//! 2. **Wire format** — the swept kernel must survive the versioned
//!    circuit codec losslessly, and its compiled plan must survive the
//!    compiled-plan codec with a bit-identical replay.
//! 3. **Sweep compile time** — re-compiling the swept structure through
//!    the cache (template hit + parameter rebind) must run at
//!    ≤ 0.7× the cold compile (full lowering + fusion) per invocation:
//!    anything slower means the rebind path stopped skipping the
//!    lowering pipeline.
//!
//! Results land in `BENCH_sweepcache.json` (uploaded as a CI artifact; run
//! under both `QCOR_NUM_THREADS=1` and `4` in the workflow).
//!
//! ```text
//! cargo run -p qcor-bench --release --bin sweepcache_guard
//! ```

use qcor_circuit::{wire as cwire, Circuit};
use qcor_pool::ThreadPool;
use qcor_sim::stats::{compile_cache_hits, compile_cache_misses};
use qcor_sim::{clear_compile_cache, compile_cached, wire as swire, CompiledCircuit, RunConfig, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

const QUBITS: usize = 10;
const SWEEP: usize = 32;
const SHOTS: usize = 64;
const REPS: usize = 7;
/// Rebinding a cached template must stay well under a cold compile.
const MAX_RATIO: f64 = 0.7;

/// A deep parameterized ansatz: layers of Rx/Ry/Rz rotations (one
/// parameter slot each) interleaved with CX chains and CPhase ladders —
/// the angle-sweep workload class the compile cache targets. Every layer
/// re-derives its angles from `theta`, so a sweep varies every parameter
/// while keeping the structure fixed.
fn ansatz(theta: f64) -> Circuit {
    let mut c = Circuit::new(QUBITS);
    for layer in 0..12 {
        let t = theta + 0.1 * layer as f64;
        for q in 0..QUBITS {
            c.rx(q, t).ry(q, 0.5 * t).rz(q, -t);
        }
        for q in 0..QUBITS - 1 {
            c.cx(q, q + 1);
        }
        for q in 0..QUBITS - 1 {
            c.cphase(q, q + 1, 0.25 * t);
        }
    }
    c.measure_all();
    c
}

fn sweep_angle(i: usize) -> f64 {
    0.05 + i as f64 * 0.21
}

fn best_of(reps: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

/// Gate 1: cached and cold execution merge identical seeded counts across
/// the sweep, and the sweep hits the cache after its first compile.
fn assert_sweep_counts_and_hits(pool: &Arc<ThreadPool>) -> (u64, u64) {
    clear_compile_cache();
    let hits0 = compile_cache_hits();
    let misses0 = compile_cache_misses();
    let cached_cfg =
        RunConfig { shots: SHOTS, seed: Some(1), compile_cache: Some(true), ..RunConfig::default() };
    let cold_cfg = RunConfig { compile_cache: Some(false), ..cached_cfg.clone() };
    for i in 0..SWEEP {
        let circuit = ansatz(sweep_angle(i));
        let cached = qcor_sim::run_shots(&circuit, Arc::clone(pool), &cached_cfg);
        let cold = qcor_sim::run_shots(&circuit, Arc::clone(pool), &cold_cfg);
        assert_eq!(cached, cold, "cache changed seeded counts at sweep step {i}");
    }
    let hits = compile_cache_hits() - hits0;
    let misses = compile_cache_misses() - misses0;
    assert!(
        hits >= (SWEEP - 1) as u64,
        "sweep must hit the cache after the first compile ({hits} hits / {misses} misses)"
    );
    (hits, misses)
}

/// Gate 2: the swept kernel survives both codecs — the circuit codec
/// losslessly, the compiled-plan codec with a bit-identical replay.
fn assert_wire_round_trips(circuit: &Circuit) -> (usize, usize) {
    let circuit_bytes = cwire::encode(circuit);
    let decoded = cwire::decode(&circuit_bytes).expect("circuit codec must round-trip");
    assert_eq!(circuit, &decoded, "circuit wire round trip must be lossless");

    let plan = CompiledCircuit::compile(circuit);
    let plan_bytes = swire::encode_compiled(&plan);
    let replayed = swire::decode_compiled(&plan_bytes).expect("plan codec must round-trip");
    let mut s1 = StateVector::new(QUBITS);
    let mut s2 = StateVector::new(QUBITS);
    let mut r1 = StdRng::seed_from_u64(7);
    let mut r2 = StdRng::seed_from_u64(7);
    assert_eq!(
        plan.run_once(&mut s1, &mut r1),
        replayed.run_once(&mut s2, &mut r2),
        "decoded plan must record identically"
    );
    for (a, b) in s1.amplitudes().iter().zip(s2.amplitudes()) {
        assert_eq!(a.re.to_bits(), b.re.to_bits(), "decoded replay must be bit-identical");
        assert_eq!(a.im.to_bits(), b.im.to_bits(), "decoded replay must be bit-identical");
    }
    (circuit_bytes.len(), plan_bytes.len())
}

fn main() {
    let circuit = ansatz(sweep_angle(0));
    let compiled = CompiledCircuit::compile(&circuit);
    println!(
        "sweep kernel: {} instructions -> {} fused kernel ops, {SWEEP} sweep points",
        compiled.source_len(),
        compiled.len()
    );

    // Correctness gates first — no point timing a broken cache.
    let pool = Arc::new(ThreadPool::new(qcor_pool::num_threads_from_env()));
    let (hits, misses) = assert_sweep_counts_and_hits(&pool);
    println!("sweep counters: {hits} hits / {misses} misses (counts identical to cold)");
    let (circuit_bytes, plan_bytes) = assert_wire_round_trips(&circuit);
    println!("wire round trips: circuit {circuit_bytes} bytes, compiled plan {plan_bytes} bytes");

    // Timing gate: per-invocation compile cost across the sweep — cold
    // (full lowering + fusion every time) vs cached (one template build,
    // then lookup + rebind per angle). The sweep circuits are built once
    // outside the timed region (construction cost is identical on both
    // paths and would only dilute the ratio being guarded), and the
    // compiled plans are consumed via their op counts so neither loop can
    // be optimized away.
    let sweep_circuits: Vec<Circuit> = (0..SWEEP).map(|i| ansatz(sweep_angle(i))).collect();
    let mut rows: Vec<(String, Duration)> = Vec::new();
    let cold_best = best_of(REPS, || {
        let mut total_ops = 0usize;
        for c in &sweep_circuits {
            total_ops += CompiledCircuit::compile(c).len();
        }
        assert!(total_ops > 0);
    });
    rows.push(("sweep_compile/cold".to_string(), cold_best));
    clear_compile_cache();
    compile_cached(&circuit); // warm the template outside the timed region
    let cached_best = best_of(REPS, || {
        let mut total_ops = 0usize;
        for c in &sweep_circuits {
            total_ops += compile_cached(c).len();
        }
        assert!(total_ops > 0);
    });
    rows.push(("sweep_compile/cached".to_string(), cached_best));
    let ratio = cached_best.as_secs_f64() / cold_best.as_secs_f64();

    let benchmarks: String = rows
        .iter()
        .map(|(name, time)| {
            format!(
                "    {{ \"name\": \"{name}\", \"best_ns\": {:.1}, \"reps\": {REPS} }}",
                time.as_secs_f64() * 1e9
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"meta\": {{\n    \"command\": \"cargo run -p qcor-bench --release --bin sweepcache_guard\",\n    \
         \"logical_cpus\": {},\n    \"qcor_num_threads\": {},\n    \
         \"guard\": \"fail if cached sweep compile divided by cold exceeds {MAX_RATIO}\",\n    \
         \"note\": \"structural compile cache guard: an angle sweep reuses one template (hit + rebind) instead of re-lowering; also asserts seeded-count equality, cache-hit counters, and both wire-codec round trips\"\n  }},\n  \
         \"ratio_cached_over_cold\": {ratio:.3},\n  \
         \"sweep_points\": {SWEEP},\n  \
         \"source_instructions\": {},\n  \"fused_kernel_ops\": {},\n  \
         \"cache_counters\": {{ \"hits\": {hits}, \"misses\": {misses} }},\n  \
         \"wire_bytes\": {{ \"circuit\": {circuit_bytes}, \"compiled_plan\": {plan_bytes} }},\n  \
         \"benchmarks\": [\n{benchmarks}\n  ]\n}}\n",
        qcor_pool::available_parallelism(),
        qcor_pool::num_threads_from_env(),
        compiled.source_len(),
        compiled.len(),
    );
    std::fs::write("BENCH_sweepcache.json", &json).expect("failed to write BENCH_sweepcache.json");

    for (name, time) in &rows {
        println!("{name:<38} {:>10.1} us", time.as_secs_f64() * 1e6);
    }
    qcor_bench::enforce_guard_ratio("cached / cold sweep compile", ratio, MAX_RATIO, "BENCH_sweepcache.json");
}
