//! Perf-regression guard for compile-then-execute (gate fusion +
//! control-aware kernels).
//!
//! Four gates, all of which fail the process (non-zero exit) on breach:
//!
//! 1. **Runtime** — a GHZ+CX-heavy kernel with fusable single-qubit runs
//!    is sampled through the shot scheduler with fusion on and off;
//!    compiled ÷ interpreted must be ≤ 1.0 (the compiled path must never
//!    lose to per-shot re-interpretation).
//! 2. **Iteration reduction** — the control-aware kernels must execute
//!    exactly `2^c`-fewer loop iterations per `c` control bits (asserted
//!    via the `qcor_sim::stats` per-thread iteration counter), the fused
//!    `Dense2` pair kernel must visit exactly `2^(n-2-c)` quads, and a
//!    compiled replay of the guard kernel must issue fewer total
//!    iterations than the interpreted replay. The per-kernel-class
//!    iteration breakdown (dense/dense2/flip/diag/phase/swap) of one
//!    compiled replay is recorded in the JSON.
//! 3. **Zero steady-state allocations** — repeated Shor-style
//!    `apply_controlled_permutation` calls must allocate the scratch
//!    buffer exactly once, and a compiled replay never touches the
//!    scratch allocator at all.
//! 4. **Deep-circuit runtime** — a 20-qubit kernel whose single-qubit
//!    runs fuse into two-qubit `Dense2` blocks (and whose replay is
//!    cache-block segmented at that state size) must run at
//!    ≤ 0.43× the interpreted time: at this depth fusion removes enough
//!    full-state sweeps that anything slower means the pair-fusion or
//!    blocking machinery regressed.
//!
//! Results land in `BENCH_gatefuse.json` (uploaded as a CI artifact; run
//! under both `QCOR_NUM_THREADS=1` and `4` in the workflow).
//!
//! ```text
//! cargo run -p qcor-bench --release --bin gatefuse_guard
//! ```

use qcor_circuit::Circuit;
use qcor_pool::ThreadPool;
use qcor_sim::stats::{
    kernel_class_iterations, kernel_iteration_breakdown, kernel_iterations, reset_kernel_iterations,
    KernelClass,
};
use qcor_sim::{run_once_interpreted, run_shots, CompiledCircuit, Complex64, RunConfig, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

const QUBITS: usize = 10;
const SHOTS: usize = 96;
const REPS: usize = 7;
/// The compiled path must at worst tie the interpreted path.
const MAX_RATIO: f64 = 1.0;

const DEEP_QUBITS: usize = 20;
const DEEP_REPS: usize = 3;
/// The deep kernel's compiled replay must beat the interpreted replay by
/// better than 2.3× — pair fusion collapses each qubit's gate runs into
/// `Dense2` blocks, so most full-state sweeps disappear outright.
const MAX_DEEP_RATIO: f64 = 0.43;

/// GHZ preparation followed by CX-heavy layers interleaved with fusable
/// single-qubit runs and phase sweeps — the workload class the compiler
/// targets: dense entangling structure (controlled kernels) plus local
/// gate runs (fusion).
fn guard_kernel() -> Circuit {
    let mut c = Circuit::new(QUBITS);
    c.h(0);
    for q in 0..QUBITS - 1 {
        c.cx(q, q + 1);
    }
    for layer in 0..3 {
        for q in 0..QUBITS {
            // A 6-gate single-qubit run that fuses to one dense op.
            c.t(q).h(q).s(q).h(q).tdg(q).rz(q, 0.11 * (layer + 1) as f64);
        }
        for q in 0..QUBITS - 1 {
            c.cx(q, q + 1);
        }
        for q in 0..QUBITS - 2 {
            c.cz(q, q + 2);
        }
    }
    c.measure_all();
    c
}

/// The deep-circuit scenario: 20 qubits (2^20 amplitudes, past the
/// cache-blocking threshold), GHZ skeleton plus layers of 8-gate
/// single-qubit runs — each run fuses to one dense op, and adjacent
/// qubits' dense ops pair into `Dense2` blocks — interleaved with CX
/// chains and CZ layers. No terminal measurement: the scenario times the
/// replay itself (measurement reductions cost the same on both paths and
/// would only dilute the ratio being guarded).
fn deep_kernel() -> Circuit {
    let mut c = Circuit::new(DEEP_QUBITS);
    c.h(0);
    for q in 0..DEEP_QUBITS - 1 {
        c.cx(q, q + 1);
    }
    for layer in 0..2 {
        let theta = 0.07 * (layer + 1) as f64;
        for q in 0..DEEP_QUBITS {
            c.t(q).h(q).s(q).rx(q, theta).h(q).tdg(q).ry(q, 1.3 * theta).rz(q, theta);
        }
        for q in 0..DEEP_QUBITS - 1 {
            c.cx(q, q + 1);
        }
        for q in 0..DEEP_QUBITS - 2 {
            c.cz(q, q + 2);
        }
    }
    c
}

fn best_of(reps: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

/// Gate 2a: direct `2^c` iteration-reduction asserts against the kernel
/// iteration counter. Returns `(uncontrolled, cx, ccx)` iteration counts
/// for the JSON record.
fn assert_controlled_iteration_reduction() -> (u64, u64, u64) {
    let n = 12usize;
    let len = 1u64 << n;
    let x = [
        [qcor_sim::Complex64::ZERO, qcor_sim::Complex64::ONE],
        [qcor_sim::Complex64::ONE, qcor_sim::Complex64::ZERO],
    ];
    let mut sv = StateVector::new(n);
    reset_kernel_iterations();
    sv.apply_single(0, x, 0);
    let plain = kernel_iterations();
    assert_eq!(plain, len / 2, "uncontrolled kernel must visit 2^(n-1) pairs");
    reset_kernel_iterations();
    sv.apply_single(1, x, 1 << 0);
    let cx = kernel_iterations();
    assert_eq!(cx, len / 4, "1-control kernel must visit 2^(n-2) pairs (2x reduction)");
    reset_kernel_iterations();
    sv.apply_single(2, x, 0b11);
    let ccx = kernel_iterations();
    assert_eq!(ccx, len / 8, "2-control kernel must visit 2^(n-3) pairs (4x reduction)");
    (plain, cx, ccx)
}

/// Gate 2b: the fused two-qubit `Dense2` kernel must visit exactly
/// `2^(n-2-c)` amplitude quads — one sweep replaces every gate folded
/// into the block, at a quarter (uncontrolled) of the full state in quad
/// steps. Returns `(uncontrolled, one_control)` quad counts.
fn assert_pair_iteration_reduction() -> (u64, u64) {
    let n = 12usize;
    let len = 1u64 << n;
    let mut m = [[Complex64::ZERO; 4]; 4];
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = Complex64::ONE;
    }
    let mut sv = StateVector::new(n);
    reset_kernel_iterations();
    sv.apply_pair(0, 1, &m, 0);
    let quads = kernel_class_iterations(KernelClass::Dense2);
    assert_eq!(quads, len / 4, "uncontrolled Dense2 must visit exactly 2^(n-2) quads");
    reset_kernel_iterations();
    sv.apply_pair(0, 1, &m, 1 << 2);
    let ctrl_quads = kernel_class_iterations(KernelClass::Dense2);
    assert_eq!(ctrl_quads, len / 8, "1-control Dense2 must visit exactly 2^(n-2-1) quads");
    (quads, ctrl_quads)
}

/// Per-kernel-class iteration counts of one compiled replay of `circuit`
/// (zero-count classes included, so the JSON schema is stable).
fn class_breakdown(compiled: &CompiledCircuit, num_qubits: usize) -> Vec<(&'static str, u64)> {
    let mut state = StateVector::new(num_qubits);
    let mut rng = StdRng::seed_from_u64(5);
    reset_kernel_iterations();
    compiled.run_once(&mut state, &mut rng);
    kernel_iteration_breakdown().iter().map(|&(class, count)| (class.label(), count)).collect()
}

/// Gate 2c: a compiled replay of the guard kernel issues fewer total loop
/// iterations than the interpreted replay (fusion removed whole passes).
fn assert_compiled_iterations_shrink(circuit: &Circuit) -> (u64, u64) {
    let compiled = CompiledCircuit::compile(circuit);
    let mut rng = StdRng::seed_from_u64(5);
    let mut state = StateVector::new(QUBITS);
    reset_kernel_iterations();
    run_once_interpreted(&mut state, circuit, &mut rng);
    let interpreted = kernel_iterations();
    let mut rng = StdRng::seed_from_u64(5);
    let mut state = StateVector::new(QUBITS);
    reset_kernel_iterations();
    compiled.run_once(&mut state, &mut rng);
    let fused = kernel_iterations();
    assert!(
        fused < interpreted,
        "compiled replay must issue fewer kernel iterations ({fused} vs {interpreted})"
    );
    (interpreted, fused)
}

/// Gate 3: Shor-style modular-multiplication permutations must hit the
/// scratch buffer, not the allocator, in steady state.
fn assert_permutation_zero_steady_state_allocs() {
    let work = 8usize;
    let modulus = 251usize; // prime < 2^8, so ×a is a bijection on 0..251
    let a = 7usize;
    let perm: Vec<usize> =
        (0..1usize << work).map(|x| if x < modulus { (x * a) % modulus } else { x }).collect();
    let mut sv = StateVector::new(work + 1);
    assert_eq!(sv.scratch_allocations(), 0);
    for _ in 0..24 {
        sv.apply_controlled_permutation(1 << work, &(0..work).collect::<Vec<_>>(), &perm);
    }
    assert_eq!(
        sv.scratch_allocations(),
        1,
        "apply_controlled_permutation must reuse its scratch buffer across calls"
    );
}

/// Gate 4: time the deep 20-qubit kernel compiled vs interpreted (one
/// shot per rep — at 2^20 amplitudes a single replay is the workload).
/// Also asserts the compiled replay never touches the scratch allocator.
fn deep_scenario(pool: &Arc<ThreadPool>) -> (Duration, Duration, f64, usize, usize) {
    let circuit = deep_kernel();
    let compiled = CompiledCircuit::compile(&circuit);
    assert!(compiled.len() < compiled.source_len(), "fusion must shrink the deep kernel");
    let mut state = StateVector::with_pool(DEEP_QUBITS, Arc::clone(pool));
    let interp_best = best_of(DEEP_REPS, || {
        state.reset_to_zero();
        let mut rng = StdRng::seed_from_u64(3);
        run_once_interpreted(&mut state, &circuit, &mut rng);
    });
    let fused_best = best_of(DEEP_REPS, || {
        state.reset_to_zero();
        let mut rng = StdRng::seed_from_u64(3);
        compiled.run_once(&mut state, &mut rng);
    });
    assert_eq!(state.scratch_allocations(), 0, "compiled replay must not touch the scratch allocator");
    let ratio = fused_best.as_secs_f64() / interp_best.as_secs_f64();
    (interp_best, fused_best, ratio, compiled.source_len(), compiled.len())
}

fn main() {
    let circuit = guard_kernel();
    let compiled = CompiledCircuit::compile(&circuit);
    println!("guard kernel: {} instructions -> {} fused kernel ops", compiled.source_len(), compiled.len());
    assert!(compiled.len() < compiled.source_len(), "fusion must shrink the guard kernel");

    // Correctness gates first — no point timing a broken executor.
    let (plain_iters, cx_iters, ccx_iters) = assert_controlled_iteration_reduction();
    let (pair_iters, pair_ctrl_iters) = assert_pair_iteration_reduction();
    let (interp_iters, fused_iters) = assert_compiled_iterations_shrink(&circuit);
    assert_permutation_zero_steady_state_allocs();
    let breakdown = class_breakdown(&compiled, QUBITS);
    println!("iteration counts: uncontrolled {plain_iters}, CX {cx_iters} (/2), CCX {ccx_iters} (/4)");
    println!(
        "dense2 quad counts: uncontrolled {pair_iters} (2^(n-2)), 1-control {pair_ctrl_iters} (2^(n-3))"
    );
    println!("guard-kernel iterations per shot: interpreted {interp_iters}, compiled {fused_iters}");
    let shown: Vec<String> =
        breakdown.iter().filter(|(_, c)| *c > 0).map(|(l, c)| format!("{l} {c}")).collect();
    println!("compiled per-class iterations: {}", shown.join(", "));

    // Runtime gate: same pool, same plan, fusion knob flipped.
    let pool = Arc::new(ThreadPool::new(qcor_pool::num_threads_from_env()));
    let base = RunConfig { shots: SHOTS, seed: Some(1), ..RunConfig::default() };
    let interp_cfg = RunConfig { fusion: Some(false), ..base.clone() };
    let fused_cfg = RunConfig { fusion: Some(true), ..base };
    let expected = run_shots(&circuit, Arc::clone(&pool), &interp_cfg); // warm-up + reference
    let mut rows: Vec<(String, Duration)> = Vec::new();
    let interp_best = best_of(REPS, || {
        let counts = run_shots(&circuit, Arc::clone(&pool), &interp_cfg);
        assert_eq!(counts.values().sum::<usize>(), SHOTS);
    });
    rows.push(("guard_kernel/interpreted".to_string(), interp_best));
    let fused_best = best_of(REPS, || {
        let counts = run_shots(&circuit, Arc::clone(&pool), &fused_cfg);
        assert_eq!(counts, expected, "fusion changed seeded counts");
    });
    rows.push(("guard_kernel/compiled".to_string(), fused_best));

    let ratio = fused_best.as_secs_f64() / interp_best.as_secs_f64();

    // Deep-circuit gate: 20 qubits, one shot per rep, Dense2-heavy.
    let (deep_interp, deep_fused, deep_ratio, deep_src, deep_ops) = deep_scenario(&pool);
    println!("deep kernel: {deep_src} instructions -> {deep_ops} fused kernel ops");
    rows.push(("deep_kernel/interpreted".to_string(), deep_interp));
    rows.push(("deep_kernel/compiled".to_string(), deep_fused));

    let benchmarks: String = rows
        .iter()
        .map(|(name, time)| {
            format!(
                "    {{ \"name\": \"{name}\", \"best_ns\": {:.1}, \"reps\": {REPS} }}",
                time.as_secs_f64() * 1e9
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let breakdown_json: String =
        breakdown.iter().map(|(label, count)| format!("\"{label}\": {count}")).collect::<Vec<_>>().join(", ");
    let json = format!(
        "{{\n  \"meta\": {{\n    \"command\": \"cargo run -p qcor-bench --release --bin gatefuse_guard\",\n    \
         \"logical_cpus\": {},\n    \"qcor_num_threads\": {},\n    \
         \"guard\": \"fail if compiled divided by interpreted exceeds {MAX_RATIO}, or deep-kernel ratio exceeds {MAX_DEEP_RATIO}\",\n    \
         \"note\": \"compile-then-execute guard: gate fusion + two-qubit block fusion + control-aware kernels; also asserts 2^c iteration reduction, exact 2^(n-2-c) Dense2 quad counts, and zero steady-state allocations\"\n  }},\n  \
         \"ratio_compiled_over_interpreted\": {ratio:.3},\n  \
         \"deep_ratio_compiled_over_interpreted\": {deep_ratio:.3},\n  \
         \"source_instructions\": {},\n  \"fused_kernel_ops\": {},\n  \
         \"deep_source_instructions\": {deep_src},\n  \"deep_fused_kernel_ops\": {deep_ops},\n  \
         \"iterations_per_shot\": {{ \"interpreted\": {interp_iters}, \"compiled\": {fused_iters} }},\n  \
         \"compiled_class_iterations\": {{ {breakdown_json} }},\n  \
         \"controlled_iteration_counts\": {{ \"uncontrolled\": {plain_iters}, \"cx\": {cx_iters}, \"ccx\": {ccx_iters} }},\n  \
         \"dense2_quad_counts\": {{ \"uncontrolled\": {pair_iters}, \"one_control\": {pair_ctrl_iters} }},\n  \
         \"benchmarks\": [\n{benchmarks}\n  ]\n}}\n",
        qcor_pool::available_parallelism(),
        qcor_pool::num_threads_from_env(),
        compiled.source_len(),
        compiled.len(),
    );
    std::fs::write("BENCH_gatefuse.json", &json).expect("failed to write BENCH_gatefuse.json");

    for (name, time) in &rows {
        println!("{name:<38} {:>10.1} us", time.as_secs_f64() * 1e6);
    }
    qcor_bench::enforce_guard_ratio("compiled / interpreted", ratio, MAX_RATIO, "BENCH_gatefuse.json");
    qcor_bench::enforce_guard_ratio(
        "deep compiled / interpreted",
        deep_ratio,
        MAX_DEEP_RATIO,
        "BENCH_gatefuse.json",
    );
}
