//! Perf-regression + correctness guard for sharded execution.
//!
//! Three gates, all of which fail the process (non-zero exit) on breach:
//!
//! 1. **Amplitude bit-identity** — replaying the 20-qubit kernel with
//!    amplitude sharding on (`StateVector::set_amp_shards`) must leave
//!    the state bit-identical to the plain sequential sweep, including
//!    the high-qubit targets that take the pairwise-exchange step.
//! 2. **Shot-shard merge identity** — single-process `run_shots`, the
//!    in-process `run_sharded` oracle, and the spawn-self
//!    `run_sharded_spawn` driver must all merge byte-identical seeded
//!    counts for the same config.
//! 3. **Sharded replay overhead** — at `QCOR_NUM_THREADS=1` (batch jobs
//!    run inline on the submitter) the sharded replay must stay at
//!    ≤ 1.1× the sequential replay. At higher thread counts the ratio is
//!    recorded but not gated: CI runs in a single-CPU container, so
//!    multi-thread "speedups" there are scheduler noise, not signal.
//!
//! Results land in `BENCH_shardsim.json` together with the shard-job /
//! exchange-step / batch-steal counters (uploaded as a CI artifact; run
//! under both `QCOR_NUM_THREADS=1` and `4` in the workflow).
//!
//! ```text
//! cargo run -p qcor-bench --release --bin shardsim_guard
//! ```

use qcor_circuit::Circuit;
use qcor_pool::ThreadPool;
use qcor_sim::stats::{reset_shard_stats, shard_exchange_steps, shard_jobs_launched};
use qcor_sim::{run_sharded, run_sharded_spawn, run_shots, CompiledCircuit, RunConfig, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Replay workload: large enough that sharding is the intended regime
/// (2^20 amplitudes, above the cache-block floor).
const REPLAY_QUBITS: usize = 20;
const SHARDS: usize = 4;
const REPS: usize = 5;
/// Inline sharded dispatch must be near-free next to the sweeps it wraps.
const MAX_RATIO: f64 = 1.1;

/// Counts workload: small and seeded so three execution drivers can be
/// compared byte-for-byte, with spawned children staying cheap.
const COUNT_QUBITS: usize = 10;
const COUNT_SHOTS: usize = 64;

/// A dense measurement-free kernel mixing low-qubit sweeps with
/// high-qubit targets (`REPLAY_QUBITS - 1` and `- 2`), so the sharded
/// replay exercises both the plain per-shard sweep and the
/// pairwise-exchange step on every layer.
fn replay_kernel() -> Circuit {
    let mut c = Circuit::new(REPLAY_QUBITS);
    for layer in 0..4 {
        let t = 0.3 + 0.17 * layer as f64;
        for q in 0..REPLAY_QUBITS {
            c.h(q).rz(q, t);
        }
        for q in 0..REPLAY_QUBITS - 1 {
            c.cx(q, q + 1);
        }
        c.cx(REPLAY_QUBITS - 1, 0).h(REPLAY_QUBITS - 1).h(REPLAY_QUBITS - 2);
    }
    c
}

fn counts_kernel() -> Circuit {
    let mut c = Circuit::new(COUNT_QUBITS);
    for q in 0..COUNT_QUBITS {
        c.h(q).rz(q, 0.4 + 0.1 * q as f64);
    }
    for q in 0..COUNT_QUBITS - 1 {
        c.cx(q, q + 1);
    }
    c.measure_all();
    c
}

/// Best-of timing with the two variants interleaved every rep, so load
/// drift on a shared (single-CPU CI) host hits both sides equally
/// instead of biasing whichever ran second.
fn best_of_pair(reps: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (Duration, Duration) {
    let mut best_a = Duration::MAX;
    let mut best_b = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        a();
        best_a = best_a.min(start.elapsed());
        let start = Instant::now();
        b();
        best_b = best_b.min(start.elapsed());
    }
    (best_a, best_b)
}

/// Gate 1: sharded replay leaves amplitudes bit-identical to sequential.
fn assert_sharded_replay_bit_identical(plan: &CompiledCircuit, pool: &Arc<ThreadPool>) {
    let mut reference = StateVector::new(REPLAY_QUBITS);
    plan.run_once(&mut reference, &mut StdRng::seed_from_u64(7));
    let mut sharded = StateVector::with_pool(REPLAY_QUBITS, Arc::clone(pool));
    sharded.set_amp_shards(Some(SHARDS));
    plan.run_once(&mut sharded, &mut StdRng::seed_from_u64(7));
    for (a, b) in reference.amplitudes().iter().zip(sharded.amplitudes()) {
        assert_eq!(a.re.to_bits(), b.re.to_bits(), "sharded replay must be bit-identical");
        assert_eq!(a.im.to_bits(), b.im.to_bits(), "sharded replay must be bit-identical");
    }
}

/// Gate 2: all three shot drivers merge byte-identical seeded counts.
fn assert_shot_shards_merge_identically(pool: &Arc<ThreadPool>) {
    let circuit = counts_kernel();
    let config = RunConfig { shots: COUNT_SHOTS, seed: Some(11), ..RunConfig::default() };
    let single = run_shots(&circuit, Arc::clone(pool), &config);
    let in_process = run_sharded(&circuit, Arc::clone(pool), &config, 3);
    assert_eq!(single, in_process, "in-process sharding changed seeded counts");
    let spawned = run_sharded_spawn(&circuit, &config, 2).expect("spawned shard workers must succeed");
    assert_eq!(single, spawned, "spawned sharding changed seeded counts");
}

fn main() {
    // Spawn-self protocol: gate 2 re-executes this binary as shard
    // workers, which must short-circuit here before any benching.
    if qcor_sim::maybe_shard_worker() {
        return;
    }

    let circuit = replay_kernel();
    let plan = CompiledCircuit::compile(&circuit);
    let threads = qcor_pool::num_threads_from_env();
    let pool = Arc::new(ThreadPool::new(threads));
    println!(
        "replay kernel: {} instructions -> {} fused kernel ops over 2^{REPLAY_QUBITS} amplitudes",
        plan.source_len(),
        plan.len()
    );

    // Correctness gates first — no point timing a broken shard sweep.
    assert_sharded_replay_bit_identical(&plan, &pool);
    println!("sharded replay bit-identical to sequential ({SHARDS} shards, {threads} thread pool)");
    assert_shot_shards_merge_identically(&pool);
    println!("seeded counts identical: run_shots == run_sharded(3) == run_sharded_spawn(2)");

    // Timing gate: the same compiled replay with sharding off vs on. One
    // state per variant, allocated outside the timed region; each rep
    // replays the full plan, so the ratio isolates dispatch overhead.
    let mut seq_state = StateVector::with_pool(REPLAY_QUBITS, Arc::clone(&pool));
    let mut shard_state = StateVector::with_pool(REPLAY_QUBITS, Arc::clone(&pool));
    shard_state.set_amp_shards(Some(SHARDS));
    reset_shard_stats();
    qcor_pool::reset_batch_steal_count();
    let (sequential_best, sharded_best) = best_of_pair(
        REPS,
        || {
            plan.run_once(&mut seq_state, &mut StdRng::seed_from_u64(7));
        },
        || {
            plan.run_once(&mut shard_state, &mut StdRng::seed_from_u64(7));
        },
    );
    let rows: Vec<(String, Duration)> = vec![
        ("replay_20q/sequential".to_string(), sequential_best),
        ("replay_20q/sharded".to_string(), sharded_best),
    ];
    let ratio = sharded_best.as_secs_f64() / sequential_best.as_secs_f64();

    let shard_jobs = shard_jobs_launched();
    let exchanges = shard_exchange_steps();
    let steals = qcor_pool::batch_steal_count();
    assert!(shard_jobs > 0, "sharded replay must launch shard jobs");
    assert!(exchanges > 0, "high-qubit targets must take the exchange step");

    let benchmarks: String = rows
        .iter()
        .map(|(name, time)| {
            format!(
                "    {{ \"name\": \"{name}\", \"best_ns\": {:.1}, \"reps\": {REPS} }}",
                time.as_secs_f64() * 1e9
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let guarded = threads == 1;
    let json = format!(
        "{{\n  \"meta\": {{\n    \"command\": \"cargo run -p qcor-bench --release --bin shardsim_guard\",\n    \
         \"logical_cpus\": {},\n    \"qcor_num_threads\": {threads},\n    \
         \"guard\": \"fail if sharded replay divided by sequential exceeds {MAX_RATIO} at QCOR_NUM_THREADS=1\",\n    \
         \"guard_enforced\": {guarded},\n    \
         \"note\": \"sharded-execution guard: a 20-qubit compiled replay with {SHARDS} amplitude shards vs the sequential sweep; also asserts bit-identical amplitudes and byte-identical merged counts across run_shots / run_sharded / run_sharded_spawn. CI runs in a single-CPU container, so multi-thread ratios are recorded but not gated.\"\n  }},\n  \
         \"ratio_sharded_over_sequential\": {ratio:.3},\n  \
         \"shard_counters\": {{ \"shard_jobs_launched\": {shard_jobs}, \"exchange_steps\": {exchanges}, \"batch_steals\": {steals} }},\n  \
         \"benchmarks\": [\n{benchmarks}\n  ]\n}}\n",
        qcor_pool::available_parallelism(),
    );
    std::fs::write("BENCH_shardsim.json", &json).expect("failed to write BENCH_shardsim.json");

    for (name, time) in &rows {
        println!("{name:<38} {:>10.1} us", time.as_secs_f64() * 1e6);
    }
    println!("shard counters: {shard_jobs} jobs, {exchanges} exchange steps, {steals} batch steals");
    if guarded {
        qcor_bench::enforce_guard_ratio(
            "sharded / sequential replay",
            ratio,
            MAX_RATIO,
            "BENCH_shardsim.json",
        );
    } else {
        println!(
            "\nsharded / sequential replay = {ratio:.2} (record-only at {threads} threads; \
             guarded at QCOR_NUM_THREADS=1); recorded to BENCH_shardsim.json"
        );
    }
}
