//! Perf-regression guard for the batched shot scheduler.
//!
//! Measures the Bell kernel at 512 shots on 1-thread and 2-thread pools
//! (plus the shot-parallel ablation), records the numbers to
//! `BENCH_shotsched.json`, and **exits non-zero** if the `/2` ÷ `/1` ratio
//! exceeds [`MAX_RATIO`]. Before the scheduler that ratio was ~100× (the
//! 2-thread pool paid a fork/join on every 4-amplitude loop); the
//! scheduler must keep it within 5× on any machine, including a 1-CPU CI
//! container.
//!
//! ```text
//! cargo run -p qcor-bench --release --bin shotsched_guard
//! ```

use qcor_circuit::library;
use qcor_pool::ThreadPool;
use qcor_sim::{run_shots, run_shots_task_parallel, RunConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHOTS: usize = 512;
const REPS: usize = 11;
const MAX_RATIO: f64 = 5.0;

fn best_of(reps: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

fn main() {
    let circuit = library::bell_kernel();
    let config = RunConfig { shots: SHOTS, seed: Some(1), ..RunConfig::default() };
    let mut rows: Vec<(String, Duration)> = Vec::new();

    for threads in [1usize, 2] {
        let pool = Arc::new(ThreadPool::new(threads));
        run_shots(&circuit, Arc::clone(&pool), &config); // warm-up
        let best = best_of(REPS, || {
            let counts = run_shots(&circuit, Arc::clone(&pool), &config);
            assert_eq!(counts.values().sum::<usize>(), SHOTS);
        });
        rows.push((format!("bell_kernel/shots512/{threads}"), best));
    }
    for tasks in [1usize, 2] {
        let best = best_of(REPS, || {
            let counts = run_shots_task_parallel(&circuit, tasks, 1, &config);
            assert_eq!(counts.values().sum::<usize>(), SHOTS);
        });
        rows.push((format!("bell_kernel/shot_parallel_512/{tasks}"), best));
    }

    let t1 = rows[0].1.as_secs_f64();
    let t2 = rows[1].1.as_secs_f64();
    let ratio = t2 / t1;

    let benchmarks: String = rows
        .iter()
        .map(|(name, time)| {
            format!(
                "    {{ \"name\": \"{name}\", \"best_ns\": {:.1}, \"reps\": {REPS} }}",
                time.as_secs_f64() * 1e9
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"meta\": {{\n    \"command\": \"cargo run -p qcor-bench --release --bin shotsched_guard\",\n    \
         \"logical_cpus\": {},\n    \"guard\": \"fail if shots512/2 divided by shots512/1 exceeds {MAX_RATIO}\",\n    \
         \"note\": \"batched shot scheduler regression guard; pre-scheduler baseline ratio was ~100x (BENCH_baseline.json)\"\n  }},\n  \
         \"ratio_shots512_2_over_1\": {ratio:.3},\n  \"benchmarks\": [\n{benchmarks}\n  ]\n}}\n",
        qcor_pool::available_parallelism(),
    );
    std::fs::write("BENCH_shotsched.json", &json).expect("failed to write BENCH_shotsched.json");

    for (name, time) in &rows {
        println!("{name:<38} {:>10.1} us", time.as_secs_f64() * 1e6);
    }
    println!("(pre-scheduler baseline ratio: ~100)");
    qcor_bench::enforce_guard_ratio("shots512/2 / shots512/1", ratio, MAX_RATIO, "BENCH_shotsched.json");
}
