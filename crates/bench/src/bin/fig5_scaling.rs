//! Reproduces **Figure 5**: strong scaling of two SHOR(N=7, a=2) kernels,
//! one-by-one vs parallel, speedups over single-threaded one-by-one.
//!
//! Paper (Ryzen9 3900X): one-by-one {2,4,6,12,24}t = 1.72/3.06/4.18/6.53/6.53,
//! parallel 2×{1,2,3,6,12}t = 1.89/3.27/4.72/7.69/7.82 — the parallel mode
//! dominates at every point.
//!
//! ```text
//! cargo run -p qcor-bench --release --bin fig5_scaling
//! ```

use qcor_algos::shor::beauregard::ModExpEngine;
use qcor_bench::{KernelTask, MachineShape, VariantTimer};
use qcor_pool::ThreadPool;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const N: u64 = 7;
const A: u64 = 2;
const SHOTS: usize = 10;
const KERNELS: usize = 2;

/// The paper's reference series, for the printed comparison column.
const PAPER_POINTS: [(usize, f64, f64); 5] =
    [(2, 1.72, 1.89), (4, 3.06, 3.27), (6, 4.18, 4.72), (12, 6.53, 7.69), (24, 6.53, 7.82)];

fn make_tasks() -> Vec<KernelTask> {
    (0..KERNELS)
        .map(|i| {
            Box::new(move |pool: Arc<ThreadPool>| {
                let engine = ModExpEngine::new(A, N);
                let mut rng = StdRng::seed_from_u64(7 + i as u64);
                for _ in 0..SHOTS {
                    engine.sample_phase(Arc::clone(&pool), &mut rng);
                }
            }) as KernelTask
        })
        .collect()
}

fn main() {
    let m = MachineShape::detect();
    let timer = VariantTimer { reps: 3 };
    println!(
        "Figure 5 reproduction — strong scaling of two SHOR(N=7, a=2) kernels, {SHOTS} shots each \
         ({} logical CPUs; paper: 24)",
        m.logical_cpus
    );

    // Thread ladder: the paper's {2,4,6,12,24}, clamped to this machine.
    let mut ladder: Vec<usize> =
        PAPER_POINTS.iter().map(|&(t, _, _)| t).filter(|&t| t <= m.logical_cpus).collect();
    if ladder.is_empty() {
        ladder.push(1);
    }

    let baseline = timer.one_by_one(make_tasks, 1);
    println!("\nbaseline: one-by-one, 1 thread = {:.1} ms", baseline.as_secs_f64() * 1e3);
    println!("{:-<110}", "");
    println!(
        "{:>8} {:>14} {:>10} {:>8} | {:>16} {:>10} {:>8} | {:>12} {:>10}",
        "threads",
        "one-by-one ms",
        "speedup",
        "paper",
        "parallel 2x(T/2)",
        "speedup",
        "paper",
        "shared-pool",
        "speedup"
    );
    let mut always_dominates = true;
    for &t in &ladder {
        let obo = timer.one_by_one(make_tasks, t);
        let par = timer.parallel(make_tasks, (t / 2).max(1));
        // The batched scheduler's model: both kernels as work items on ONE
        // shared pool of T threads (no per-task OS thread + private pool).
        let shared = timer.parallel_shared(make_tasks, t);
        let s_obo = baseline.as_secs_f64() / obo.as_secs_f64();
        let s_par = baseline.as_secs_f64() / par.as_secs_f64();
        let s_shared = baseline.as_secs_f64() / shared.as_secs_f64();
        let paper = PAPER_POINTS.iter().find(|&&(pt, _, _)| pt == t);
        println!(
            "{:>8} {:>14.1} {:>10.2} {:>8} | {:>16.1} {:>10.2} {:>8} | {:>12.1} {:>10.2}",
            t,
            obo.as_secs_f64() * 1e3,
            s_obo,
            paper.map(|&(_, p, _)| format!("{p:.2}")).unwrap_or_else(|| "-".into()),
            par.as_secs_f64() * 1e3,
            s_par,
            paper.map(|&(_, _, p)| format!("{p:.2}")).unwrap_or_else(|| "-".into()),
            shared.as_secs_f64() * 1e3,
            s_shared,
        );
        if s_par < s_obo * 0.95 {
            always_dominates = false;
        }
    }
    println!("{:-<110}", "");
    println!(
        "shape check: parallel {} one-by-one at every ladder point (paper: parallel always wins)",
        if always_dominates { "matches/dominates" } else { "DOES NOT dominate" }
    );
}
