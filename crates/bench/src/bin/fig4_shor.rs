//! Reproduces **Figure 4**: two Shor period-finding kernels —
//! SHOR(N=15, a=2) and SHOR(N=15, a=7), 10 shots each, using the
//! Beauregard gate-level kernel the paper's implementation is based on —
//! one-by-one vs parallel.
//!
//! Paper (Ryzen9 3900X): 1.00 / 1.02 / 1.20 / 1.22 for
//! {one-by-one 12t, one-by-one 24t, parallel 2×6t, parallel 2×12t}.
//!
//! ```text
//! cargo run -p qcor-bench --release --bin fig4_shor
//! ```

use qcor_algos::shor::beauregard::ModExpEngine;
use qcor_bench::{print_table, KernelTask, MachineShape, Row, VariantTimer};
use qcor_pool::ThreadPool;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const N: u64 = 15;
const BASES: [u64; 2] = [2, 7];
const SHOTS: usize = 10;

fn make_tasks() -> Vec<KernelTask> {
    BASES
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            Box::new(move |pool: Arc<ThreadPool>| {
                let engine = ModExpEngine::new(a, N);
                let mut rng = StdRng::seed_from_u64(100 + i as u64);
                for _ in 0..SHOTS {
                    let y = engine.sample_phase(Arc::clone(&pool), &mut rng);
                    assert!(y < 1 << engine.t_bits);
                }
            }) as KernelTask
        })
        .collect()
}

fn main() {
    let m = MachineShape::detect();
    let timer = VariantTimer { reps: 3 };
    println!(
        "Figure 4 reproduction — SHOR(N=15, a=2) and SHOR(N=15, a=7), {SHOTS} shots each, \
         Beauregard 2n+3 kernel ({} logical CPUs; paper: 24)",
        m.logical_cpus
    );

    let t_obo_half = timer.one_by_one(make_tasks, m.half);
    let t_obo_full = timer.one_by_one(make_tasks, m.full);
    let t_obo_over = timer.one_by_one(make_tasks, 2 * m.full);
    let t_par_quarter = timer.parallel(make_tasks, m.quarter);
    let t_par_half = timer.parallel(make_tasks, m.half);

    let mut rows = vec![
        Row {
            label: format!("One-by-One ({} threads)", m.half),
            time: t_obo_half,
            speedup: 0.0,
            paper: Some(1.00),
        },
        Row {
            label: format!("One-by-One ({} threads)", m.full),
            time: t_obo_full,
            speedup: 0.0,
            paper: Some(1.02),
        },
        Row {
            label: format!("One-by-One ({} threads, oversub.)", 2 * m.full),
            time: t_obo_over,
            speedup: 0.0,
            paper: None,
        },
        Row {
            label: format!("Parallel 2 x ({} threads/task)", m.quarter),
            time: t_par_quarter,
            speedup: 0.0,
            paper: Some(1.20),
        },
        Row {
            label: format!("Parallel 2 x ({} threads/task)", m.half),
            time: t_par_half,
            speedup: 0.0,
            paper: Some(1.22),
        },
    ];
    print_table("Figure 4 — Shor's kernel (speedup over one-by-one half-machine)", &mut rows, 0);

    let best_parallel = rows[3].speedup.max(rows[4].speedup);
    println!(
        "shape check: best parallel speedup {best_parallel:.2} vs one-by-one {:.2} -> {}",
        rows[1].speedup.max(1.0),
        if best_parallel >= rows[1].speedup { "parallel wins (matches paper)" } else { "MISMATCH" }
    );
}
