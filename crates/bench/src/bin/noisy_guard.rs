//! Perf-and-contract guard for the unified noise-execution layer.
//!
//! Three gates, all of which fail the process (non-zero exit) on breach:
//!
//! 1. **Runtime** — a channel-heavy kernel is executed through the
//!    `qpp-noisy` accelerator in `trajectory` mode (compiled plan replayed
//!    on the batched shot scheduler) and in the legacy `interpreted` mode
//!    (per-shot instruction walk with inline channel draws); compiled
//!    trajectory ÷ interpreted must be ≤ 0.8 — lowering the noise model
//!    once has to beat re-deciding it every shot.
//! 2. **Grouped-VQE plan count** — one grouped energy evaluation
//!    (`qcor_algos::vqe::sampled_energy`) must issue exactly one batched
//!    `ShotPlan` per qubit-wise-commuting group of the Hamiltonian
//!    (asserted via `qcor_sim::stats::shot_plans_issued`), never one per
//!    Pauli term.
//! 3. **Count identity** — seeded trajectory counts must be byte-identical
//!    across pool sizes, and must agree statistically with the exact
//!    density oracle (readout error included) on the clean-outcome mass.
//!
//! Results land in `BENCH_noisy.json` (uploaded as a CI artifact; run
//! under both `QCOR_NUM_THREADS=1` and `4` in the workflow).
//!
//! ```text
//! cargo run -p qcor-bench --release --bin noisy_guard
//! ```

use qcor::pauli::grouping::group_qubit_wise;
use qcor::{Accelerator, AcceleratorBuffer, ExecOptions, HetMap};
use qcor_circuit::Circuit;
use qcor_pool::ThreadPool;
use qcor_sim::{apply_readout_error, run_noisy_shots, Counts, DensityMatrix, NoiseModel, RunConfig};
use qcor_xacc::backends::NoisyQppAccelerator;
use std::sync::Arc;
use std::time::{Duration, Instant};

const QUBITS: usize = 8;
const SHOTS: usize = 192;
const REPS: usize = 5;
/// Compiled trajectory replay must clearly beat the interpreted loop.
const MAX_RATIO: f64 = 0.8;

/// A realistic per-gate error rate: most shots see no error at all, so
/// the trajectory sampler's clean-shot fast path (pre-drawn channel
/// decisions + fused noiseless replay) carries most of the run.
const P_DEPHASE: f64 = 0.001;
const P_READOUT: f64 = 0.01;

/// The workload: GHZ skeleton plus rotation-heavy layers and CX chains,
/// every gate of which attracts a dephasing channel. This is the shape
/// where per-shot re-interpretation is most expensive relative to
/// replaying a lowered plan: the interpreted loop rebuilds every rotation
/// matrix (trig calls) and re-decides every channel on every shot, while
/// the compiled plan pays for both exactly once and replays fused ops on
/// every clean shot.
fn noisy_kernel() -> Circuit {
    let mut c = Circuit::new(QUBITS);
    c.h(0);
    for q in 0..QUBITS - 1 {
        c.cx(q, q + 1);
    }
    for layer in 0..3 {
        let theta = 0.11 * (layer + 1) as f64;
        for q in 0..QUBITS {
            c.rx(q, theta).ry(q, 1.3 * theta).rz(q, 0.7 * theta).rx(q, -theta).ry(q, theta);
        }
        for q in 0..QUBITS - 1 {
            c.cx(q, q + 1);
        }
    }
    c.measure_all();
    c
}

fn best_of(reps: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

fn accelerator(mode: &str, threads: usize) -> NoisyQppAccelerator {
    let params = HetMap::new()
        .with("threads", threads)
        .with("depolarizing", 0.0)
        .with("dephasing", P_DEPHASE)
        .with("readout-error", P_READOUT)
        .with("noise-mode", mode);
    NoisyQppAccelerator::from_params(&params).expect("guard params are valid")
}

/// Gate 1: time both modes of the same accelerator on the same kernel.
fn runtime_gate(circuit: &Circuit, threads: usize) -> (Duration, Duration, f64) {
    let interpreted = accelerator("interpreted", threads);
    let trajectory = accelerator("trajectory", threads);
    let opts = ExecOptions::with_shots(SHOTS).seeded(11);
    let run = |acc: &NoisyQppAccelerator| {
        let mut buf = AcceleratorBuffer::with_name("guard", QUBITS);
        acc.execute(&mut buf, circuit, &opts).expect("guard kernel executes");
        assert_eq!(buf.total_shots(), SHOTS);
    };
    run(&interpreted); // warm-up (pool spin-up, lazy compile cache)
    run(&trajectory);
    let interp_best = best_of(REPS, || run(&interpreted));
    let traj_best = best_of(REPS, || run(&trajectory));
    (interp_best, traj_best, traj_best.as_secs_f64() / interp_best.as_secs_f64())
}

/// Gate 2: exactly one `ShotPlan` per qubit-wise-commuting group.
fn grouped_plan_gate(pool: &Arc<ThreadPool>) -> (usize, usize, usize) {
    let h = qcor::pauli::deuteron_hamiltonian();
    let groups = group_qubit_wise(&h).groups.len();
    let terms = h.terms().iter().filter(|(_, t)| !t.is_identity()).count();
    let mut prep = Circuit::new(2);
    prep.x(0).ry(1, 0.594).cx(1, 0);
    qcor::sim::stats::reset_shot_plan_stats();
    let energy = qcor_algos::vqe::sampled_energy(&prep, &h, 4096, 5, pool);
    let plans = qcor::sim::stats::shot_plans_issued() as usize;
    assert!((energy - (-1.7487)).abs() < 0.2, "grouped energy {energy} is off the reference");
    assert!(
        plans <= groups,
        "grouped evaluation issued {plans} plans for {groups} commuting groups ({terms} terms)"
    );
    assert_eq!(plans, groups, "grouped evaluation must issue exactly one plan per group");
    (plans, groups, terms)
}

fn canonical(counts: &Counts) -> String {
    counts.iter().map(|(bits, n)| format!("{bits}:{n};")).collect()
}

/// Gate 3: pool-size count identity plus density-oracle agreement.
fn identity_gate(threads: usize) -> f64 {
    let mut circuit = Circuit::new(3);
    circuit.h(0).cx(0, 1).cx(1, 2).measure_all();
    let noise = NoiseModel { depolarizing: 0.03, dephasing: 0.02, ..Default::default() };
    let shots = 4096usize;
    let config = RunConfig { shots, seed: Some(23), ..RunConfig::default() };
    let narrow = run_noisy_shots(&circuit, &noise, P_READOUT, Arc::new(ThreadPool::new(1)), &config);
    let wide =
        run_noisy_shots(&circuit, &noise, P_READOUT, Arc::new(ThreadPool::new(threads.max(2))), &config);
    assert_eq!(
        canonical(&narrow),
        canonical(&wide),
        "seeded trajectory counts must be byte-identical across pool sizes"
    );
    let oracle = DensityMatrix::run_noisy_circuit(&circuit, Arc::new(ThreadPool::new(1)), &noise)
        .expect("3-qubit density fits");
    let oracle = apply_readout_error(&oracle, P_READOUT);
    let clean_exact = oracle.get("000").copied().unwrap_or(0.0) + oracle.get("111").copied().unwrap_or(0.0);
    let clean_sampled = (narrow.get("000").copied().unwrap_or(0) + narrow.get("111").copied().unwrap_or(0))
        as f64
        / shots as f64;
    let gap = (clean_exact - clean_sampled).abs();
    assert!(gap < 0.05, "trajectory clean mass {clean_sampled} vs density oracle {clean_exact}");
    gap
}

fn main() {
    let threads = qcor_pool::num_threads_from_env();
    let circuit = noisy_kernel();
    println!("noisy guard kernel: {} instructions, {QUBITS} qubits, {SHOTS} shots", circuit.len());

    // Contract gates first — no point timing a broken executor.
    let pool = Arc::new(ThreadPool::new(threads));
    let (plans, groups, terms) = grouped_plan_gate(&pool);
    println!("grouped VQE: {plans} shot plans for {groups} commuting groups ({terms} Pauli terms)");
    let oracle_gap = identity_gate(threads);
    println!("count identity: pool-size invariant; density-oracle clean-mass gap {oracle_gap:.4}");

    let (interp_best, traj_best, ratio) = runtime_gate(&circuit, threads);
    let rows = [("noisy_kernel/interpreted", interp_best), ("noisy_kernel/trajectory", traj_best)];
    for (name, time) in &rows {
        println!("{name:<38} {:>10.1} us", time.as_secs_f64() * 1e6);
    }

    let benchmarks: String = rows
        .iter()
        .map(|(name, time)| {
            format!(
                "    {{ \"name\": \"{name}\", \"best_ns\": {:.1}, \"reps\": {REPS} }}",
                time.as_secs_f64() * 1e9
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"meta\": {{\n    \"command\": \"cargo run -p qcor-bench --release --bin noisy_guard\",\n    \
         \"logical_cpus\": {},\n    \"qcor_num_threads\": {threads},\n    \
         \"guard\": \"fail if trajectory divided by interpreted exceeds {MAX_RATIO}, plans per grouped evaluation exceed the commuting-group count, or seeded counts drift across pool sizes / off the density oracle\",\n    \
         \"note\": \"unified noise execution: compile-time channel lowering + batched trajectory sampling vs the legacy per-shot interpreted loop\"\n  }},\n  \
         \"ratio_trajectory_over_interpreted\": {ratio:.3},\n  \
         \"shot_plans_per_evaluation\": {plans},\n  \"commuting_groups\": {groups},\n  \"pauli_terms\": {terms},\n  \
         \"density_oracle_clean_mass_gap\": {oracle_gap:.4},\n  \
         \"noise\": {{ \"dephasing\": {P_DEPHASE}, \"readout\": {P_READOUT} }},\n  \
         \"benchmarks\": [\n{benchmarks}\n  ]\n}}\n",
        qcor_pool::available_parallelism(),
    );
    std::fs::write("BENCH_noisy.json", &json).expect("failed to write BENCH_noisy.json");

    qcor_bench::enforce_guard_ratio("trajectory / interpreted", ratio, MAX_RATIO, "BENCH_noisy.json");
}
