//! Amplitude-layout probe: measures whether the state vector should keep
//! its interleaved `Complex64` (AoS) layout or switch to split re/im
//! planes (SoA) for the uncontrolled dense sweep — the hottest loop of
//! compiled execution.
//!
//! Three variants of one full dense layer (a 2×2 matrix applied to every
//! qubit of a 2^20-amplitude state):
//!
//! * `aos_runs` — the shipped kernel shape: interleaved `Complex64`,
//!   maximal contiguous runs, unit-stride inner loop (autovectorizable).
//! * `aos_expand` — interleaved `Complex64`, per-pair index expansion
//!   (the pre-run-loop shape, kept as the baseline the run loop beat).
//! * `soa_runs` — split re/im `f64` planes, same contiguous-run loop.
//!   SoA removes the re/im interleave from each cache line but doubles
//!   the live streams per loop (4 instead of 2), so it must win clearly
//!   to justify converting every kernel and the `measure`/BLAS-style
//!   readout paths.
//!
//! Records `BENCH_layout.json`. This probe is **record-only** (no
//! pass/fail gate): single-run timings inside a 1-CPU CI container are
//! too noisy to gate a layout decision on; the JSON documents the
//! measured ratio that justified keeping AoS.
//!
//! ```text
//! cargo run -p qcor-bench --release --bin layout_probe
//! ```

use qcor_sim::{c64, Complex64};
use std::time::{Duration, Instant};

const QUBITS: usize = 20;
const REPS: usize = 5;

fn best_of(reps: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

/// A dense 2×2 with no zero entries, so no variant can shortcut.
fn probe_matrix() -> [[Complex64; 2]; 2] {
    let h = std::f64::consts::FRAC_1_SQRT_2;
    [[c64(h, 0.1), c64(h, -0.1)], [c64(h, -0.1), c64(-h, 0.1)]]
}

/// Shipped shape: interleaved amplitudes, contiguous-run sweep.
fn dense_aos_runs(amps: &mut [Complex64], t: usize, m: &[[Complex64; 2]; 2]) {
    let stride = 1usize << t;
    let low_mask = stride - 1;
    let pairs = amps.len() >> 1;
    let mut k = 0;
    while k < pairs {
        let run = stride - (k & low_mask);
        let i0 = ((k & !low_mask) << 1) | (k & low_mask);
        for i in i0..i0 + run {
            let j = i | stride;
            let (a, b) = (amps[i], amps[j]);
            amps[i] = m[0][0] * a + m[0][1] * b;
            amps[j] = m[1][0] * a + m[1][1] * b;
        }
        k += run;
    }
}

/// Baseline shape: interleaved amplitudes, per-pair index expansion.
fn dense_aos_expand(amps: &mut [Complex64], t: usize, m: &[[Complex64; 2]; 2]) {
    let stride = 1usize << t;
    let low_mask = stride - 1;
    let pairs = amps.len() >> 1;
    for k in 0..pairs {
        let i = ((k & !low_mask) << 1) | (k & low_mask);
        let j = i | stride;
        let (a, b) = (amps[i], amps[j]);
        amps[i] = m[0][0] * a + m[0][1] * b;
        amps[j] = m[1][0] * a + m[1][1] * b;
    }
}

/// Candidate shape: split re/im planes, contiguous-run sweep.
fn dense_soa_runs(re: &mut [f64], im: &mut [f64], t: usize, m: &[[Complex64; 2]; 2]) {
    let stride = 1usize << t;
    let low_mask = stride - 1;
    let pairs = re.len() >> 1;
    let mut k = 0;
    while k < pairs {
        let run = stride - (k & low_mask);
        let i0 = ((k & !low_mask) << 1) | (k & low_mask);
        for i in i0..i0 + run {
            let j = i | stride;
            let (ar, ai, br, bi) = (re[i], im[i], re[j], im[j]);
            re[i] = m[0][0].re * ar - m[0][0].im * ai + m[0][1].re * br - m[0][1].im * bi;
            im[i] = m[0][0].re * ai + m[0][0].im * ar + m[0][1].re * bi + m[0][1].im * br;
            re[j] = m[1][0].re * ar - m[1][0].im * ai + m[1][1].re * br - m[1][1].im * bi;
            im[j] = m[1][0].re * ai + m[1][0].im * ar + m[1][1].re * bi + m[1][1].im * br;
        }
        k += run;
    }
}

fn main() {
    let n = 1usize << QUBITS;
    let m = probe_matrix();
    let norm = 1.0 / (n as f64).sqrt();

    let mut aos: Vec<Complex64> = (0..n).map(|i| c64(norm, (i % 7) as f64 * 1e-7)).collect();
    let mut soa_re: Vec<f64> = aos.iter().map(|z| z.re).collect();
    let mut soa_im: Vec<f64> = aos.iter().map(|z| z.im).collect();
    let mut aos2 = aos.clone();

    let layer_aos_runs = best_of(REPS, || {
        for t in 0..QUBITS {
            dense_aos_runs(&mut aos, t, &m);
        }
    });
    let layer_aos_expand = best_of(REPS, || {
        for t in 0..QUBITS {
            dense_aos_expand(&mut aos2, t, &m);
        }
    });
    let layer_soa_runs = best_of(REPS, || {
        for t in 0..QUBITS {
            dense_soa_runs(&mut soa_re, &mut soa_im, t, &m);
        }
    });

    // Keep the results observable so the loops cannot be optimized away.
    let checksum: f64 = aos.iter().map(|z| z.norm_sqr()).sum::<f64>()
        + aos2.iter().map(|z| z.norm_sqr()).sum::<f64>()
        + soa_re.iter().zip(&soa_im).map(|(r, i)| r * r + i * i).sum::<f64>();
    println!("checksum {checksum:.3e}");

    let rows = [
        ("dense_layer/aos_runs", layer_aos_runs),
        ("dense_layer/aos_expand", layer_aos_expand),
        ("dense_layer/soa_runs", layer_soa_runs),
    ];
    for (name, time) in &rows {
        println!("{name:<28} {:>10.1} us", time.as_secs_f64() * 1e6);
    }
    let soa_over_aos = layer_soa_runs.as_secs_f64() / layer_aos_runs.as_secs_f64();
    let expand_over_runs = layer_aos_expand.as_secs_f64() / layer_aos_runs.as_secs_f64();
    let winner = if soa_over_aos < 1.0 { "soa_runs" } else { "aos_runs" };
    println!("soa/aos = {soa_over_aos:.2}, expand/runs = {expand_over_runs:.2} -> winner {winner}");

    let benchmarks: String = rows
        .iter()
        .map(|(name, time)| {
            format!(
                "    {{ \"name\": \"{name}\", \"best_ns\": {:.1}, \"reps\": {REPS} }}",
                time.as_secs_f64() * 1e9
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"meta\": {{\n    \"command\": \"cargo run -p qcor-bench --release --bin layout_probe\",\n    \
         \"logical_cpus\": {},\n    \"qubits\": {QUBITS},\n    \
         \"note\": \"record-only probe of amplitude layout for the uncontrolled dense sweep; the shipped kernels keep interleaved Complex64 (AoS) with contiguous-run loops unless split re/im (SoA) wins decisively\",\n    \
         \"caveat\": \"measured in a CI container that may expose a single logical CPU; absolute times are noisy, the layout decision rests on the ratio across repeated local runs\"\n  }},\n  \
         \"ratio_soa_over_aos\": {soa_over_aos:.3},\n  \
         \"ratio_expand_over_runs\": {expand_over_runs:.3},\n  \
         \"winner\": \"{winner}\",\n  \
         \"benchmarks\": [\n{benchmarks}\n  ]\n}}\n",
        qcor_pool::available_parallelism(),
    );
    std::fs::write("BENCH_layout.json", &json).expect("failed to write BENCH_layout.json");
    println!("recorded to BENCH_layout.json");
}
