//! Reproduces **Figure 3**: two Bell kernels (1024 shots each), one-by-one
//! vs parallel execution, speedups over the one-by-one half-machine
//! baseline.
//!
//! Paper (Ryzen9 3900X, 12C/24T): 1.00 / 0.96 / 1.30 / 1.63 for
//! {one-by-one 12t, one-by-one 24t, parallel 2×6t, parallel 2×12t}.
//!
//! ```text
//! cargo run -p qcor-bench --release --bin fig3_bell
//! ```

use qcor_bench::{print_table, KernelTask, MachineShape, Row, VariantTimer};
use qcor_circuit::library;
use qcor_pool::ThreadPool;
use qcor_sim::{run_shots, RunConfig};
use std::sync::Arc;

const SHOTS: usize = 1024;
const KERNELS: usize = 2;

fn make_tasks() -> Vec<KernelTask> {
    (0..KERNELS)
        .map(|i| {
            Box::new(move |pool: Arc<ThreadPool>| {
                let circuit = library::bell_kernel();
                let config = RunConfig { shots: SHOTS, seed: Some(42 + i as u64), ..RunConfig::default() };
                let counts = run_shots(&circuit, pool, &config);
                assert_eq!(counts.values().sum::<usize>(), SHOTS);
            }) as KernelTask
        })
        .collect()
}

fn main() {
    let m = MachineShape::detect();
    let timer = VariantTimer { reps: 5 };
    println!(
        "Figure 3 reproduction — 2 Bell kernels, {SHOTS} shots each ({} logical CPUs; paper: 24)",
        m.logical_cpus
    );

    let t_obo_half = timer.one_by_one(make_tasks, m.half);
    let t_obo_full = timer.one_by_one(make_tasks, m.full);
    let t_obo_over = timer.one_by_one(make_tasks, 2 * m.full);
    let t_par_quarter = timer.parallel(make_tasks, m.quarter);
    let t_par_half = timer.parallel(make_tasks, m.half);

    let mut rows = vec![
        Row {
            label: format!("One-by-One ({} threads)", m.half),
            time: t_obo_half,
            speedup: 0.0,
            paper: Some(1.00),
        },
        Row {
            label: format!("One-by-One ({} threads)", m.full),
            time: t_obo_full,
            speedup: 0.0,
            paper: Some(0.96),
        },
        Row {
            label: format!("One-by-One ({} threads, oversub.)", 2 * m.full),
            time: t_obo_over,
            speedup: 0.0,
            paper: None,
        },
        Row {
            label: format!("Parallel 2 x ({} threads/task)", m.quarter),
            time: t_par_quarter,
            speedup: 0.0,
            paper: Some(1.30),
        },
        Row {
            label: format!("Parallel 2 x ({} threads/task)", m.half),
            time: t_par_half,
            speedup: 0.0,
            paper: Some(1.63),
        },
    ];
    print_table("Figure 3 — Bell kernel (speedup over one-by-one half-machine)", &mut rows, 0);

    let best_parallel = rows[3].speedup.max(rows[4].speedup);
    let shape_holds = best_parallel >= rows[1].speedup;
    println!(
        "shape check: best parallel speedup {best_parallel:.2} vs one-by-one oversubscribed {:.2} -> {}",
        rows[1].speedup,
        if shape_holds { "parallel wins (matches paper)" } else { "MISMATCH" }
    );
}
