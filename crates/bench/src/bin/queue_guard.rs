//! Perf-regression guard for the async kernel queue.
//!
//! Drives the execution service to saturation — many more submissions
//! than queue capacity, Block backpressure — and records submit latency
//! and end-to-end throughput to `BENCH_queue.json`, mirroring
//! `shotsched_guard`. The guard **exits non-zero** if the queued path is
//! more than [`MAX_RATIO`]× slower than running the identical workload
//! inline, i.e. if per-task queue overhead regresses. It also
//! sanity-checks the backpressure contract (peak queue occupancy never
//! exceeds capacity; nothing is shed or rejected under Block).
//!
//! ```text
//! cargo run -p qcor-bench --release --bin queue_guard
//! ```

use qcor::{BackpressurePolicy, ExecServiceConfig, ExecutionService, InitOptions, Kernel};
use std::time::{Duration, Instant};

const TASKS: usize = 96;
const SHOTS: usize = 256;
const CAPACITY: usize = 8;
const SERVICE_THREADS: usize = 2;
const MAX_RATIO: f64 = 5.0;

const BELL: &str = "H(q[0]); CX(q[0], q[1]); Measure(q[0]); Measure(q[1]);";

fn bell_task(seed: u64) -> usize {
    qcor::initialize(InitOptions::default().threads(1).shots(SHOTS).seed(seed)).unwrap();
    let q = qcor::qalloc(2);
    Kernel::from_xasm(BELL, 2).unwrap().invoke(&q, &[]).unwrap();
    let shots = q.total_shots();
    qcor::QPUManager::instance().clear_current();
    shots
}

fn main() {
    // Baseline: the identical workload inline on one thread.
    let inline_start = Instant::now();
    let mut total = 0usize;
    for i in 0..TASKS {
        total += bell_task(i as u64);
    }
    assert_eq!(total, TASKS * SHOTS);
    let inline_time = inline_start.elapsed();

    // Queued: saturate a small bounded queue (capacity far below the task
    // count) so Block backpressure is actually exercised.
    let svc = ExecutionService::new(
        ExecServiceConfig::default()
            .threads(SERVICE_THREADS)
            .capacity(CAPACITY)
            .policy(BackpressurePolicy::Block),
    );
    let queued_start = Instant::now();
    let mut submit_latencies: Vec<Duration> = Vec::with_capacity(TASKS);
    let futures: Vec<_> = (0..TASKS)
        .map(|i| {
            let t = Instant::now();
            let f = svc.submit(move || bell_task(i as u64)).expect("Block submission cannot fail");
            submit_latencies.push(t.elapsed());
            f
        })
        .collect();
    let total: usize = futures.into_iter().map(|f| f.get()).sum();
    assert_eq!(total, TASKS * SHOTS);
    let queued_time = queued_start.elapsed();

    let stats = svc.stats();
    assert_eq!(stats.submitted, TASKS);
    assert_eq!(stats.completed, TASKS);
    assert_eq!((stats.rejected, stats.shed), (0, 0), "Block policy must not lose work");
    assert!(
        stats.peak_queue_len <= CAPACITY,
        "backpressure violated: peak queue {} > capacity {CAPACITY}",
        stats.peak_queue_len
    );

    submit_latencies.sort_unstable();
    let p50 = submit_latencies[TASKS / 2];
    let max = *submit_latencies.last().unwrap();
    let throughput = TASKS as f64 / queued_time.as_secs_f64();
    let ratio = queued_time.as_secs_f64() / inline_time.as_secs_f64();

    let json = format!(
        "{{\n  \"meta\": {{\n    \"command\": \"cargo run -p qcor-bench --release --bin queue_guard\",\n    \
         \"logical_cpus\": {},\n    \
         \"workload\": \"{TASKS} bell tasks x {SHOTS} shots, service threads={SERVICE_THREADS}, capacity={CAPACITY}, policy=block\",\n    \
         \"guard\": \"fail if queued wall time divided by inline wall time exceeds {MAX_RATIO}\",\n    \
         \"note\": \"async kernel-queue overhead guard; submit latency includes time blocked by backpressure\"\n  }},\n  \
         \"ratio_queued_over_inline\": {ratio:.3},\n  \
         \"throughput_tasks_per_sec\": {throughput:.1},\n  \
         \"inline_wall_ns\": {:.1},\n  \
         \"queued_wall_ns\": {:.1},\n  \
         \"submit_latency_p50_ns\": {:.1},\n  \
         \"submit_latency_max_ns\": {:.1},\n  \
         \"peak_queue_len\": {},\n  \"capacity\": {CAPACITY}\n}}\n",
        qcor_pool::available_parallelism(),
        inline_time.as_secs_f64() * 1e9,
        queued_time.as_secs_f64() * 1e9,
        p50.as_secs_f64() * 1e9,
        max.as_secs_f64() * 1e9,
        stats.peak_queue_len,
    );
    std::fs::write("BENCH_queue.json", &json).expect("failed to write BENCH_queue.json");

    println!("inline  {TASKS} tasks: {:>10.1} us", inline_time.as_secs_f64() * 1e6);
    println!(
        "queued  {TASKS} tasks: {:>10.1} us  ({throughput:.0} tasks/s)",
        queued_time.as_secs_f64() * 1e6
    );
    println!(
        "submit latency p50 {:.1} us, max {:.1} us (includes backpressure blocking)",
        p50.as_secs_f64() * 1e6,
        max.as_secs_f64() * 1e6
    );
    println!("peak queue {} / capacity {CAPACITY}", stats.peak_queue_len);
    qcor_bench::enforce_guard_ratio("queued / inline", ratio, MAX_RATIO, "BENCH_queue.json");
}
