//! Perf-regression guard for the async kernel queue.
//!
//! Three scenarios, each guarded at [`MAX_RATIO`]× its baseline and
//! recorded to `BENCH_queue.json` (mirroring `shotsched_guard`); the
//! guard **exits non-zero** on any regression:
//!
//! 1. **Saturation** — many more submissions than queue capacity under
//!    Block backpressure: per-task queue overhead. Also sanity-checks the
//!    backpressure contract (peak queue occupancy never exceeds capacity;
//!    nothing is shed or rejected under Block).
//! 2. **Join-heavy** — driver tasks that spawn sibling tasks on the same
//!    service and `wait()` on them **in-task**: the work-conserving join
//!    path. Before it existed this shape deadlocked outright; the guard
//!    keeps its overhead (helping drain vs. plain inline execution)
//!    within the same budget.
//! 3. **Adversarial tenant** — 1 flooder pre-loads a deep backlog while 4
//!    polite tenants run sequential submit→join loops. Deficit-weighted
//!    fair queuing must keep the polite p99 join latency within
//!    [`MAX_RATIO`]× the no-flooder baseline (FIFO would multiply it by
//!    the flooder's whole backlog). The scenario also checks the live
//!    introspection endpoint: per-tenant gauges must sum to the
//!    `ServiceStats` identity, and the debug listener must serve the same
//!    snapshot over HTTP.
//!
//! ```text
//! cargo run -p qcor-bench --release --bin queue_guard
//! ```

use qcor::{
    BackpressurePolicy, DebugServer, ExecServiceConfig, ExecutionService, InitOptions, Kernel, TaskSpec,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TASKS: usize = 96;
const SHOTS: usize = 256;
const CAPACITY: usize = 8;
const SERVICE_THREADS: usize = 2;
const MAX_RATIO: f64 = 5.0;

// Join-heavy scenario: DRIVERS outer tasks × SIBLINGS in-task joins each.
// DRIVERS exceeds the service's permit budget (threads − 1), so without
// the work-conserving join the drivers alone would exhaust every executor
// slot and deadlock.
const DRIVERS: usize = 12;
const SIBLINGS: usize = 4;
const JOIN_SHOTS: usize = 64;

// Adversarial-tenant scenario: POLITE_TENANTS polite sessions doing
// POLITE_OPS sequential submit→join cycles each, against one flooder that
// pre-loads FLOOD_TASKS identical tasks. All weights are 1, so DRR owes
// the flooder exactly a 1-in-5 share: a polite join waits one round of
// tenants, never the flooder's backlog.
const POLITE_TENANTS: usize = 4;
const POLITE_OPS: usize = 24;
const POLITE_SHOTS: usize = 64;
const FLOOD_TASKS: usize = 200;
const FAIR_CAPACITY: usize = 512;
/// Latency floor for the fairness ratio: sub-500µs baselines are
/// scheduler noise, and dividing by them turns jitter into failures.
const FAIR_FLOOR: Duration = Duration::from_micros(500);

const BELL: &str = "H(q[0]); CX(q[0], q[1]); Measure(q[0]); Measure(q[1]);";

fn bell_task_with(shots: usize, seed: u64) -> usize {
    qcor::initialize(InitOptions::default().threads(1).shots(shots).seed(seed)).unwrap();
    let q = qcor::qalloc(2);
    Kernel::from_xasm(BELL, 2).unwrap().invoke(&q, &[]).unwrap();
    let shots = q.total_shots();
    qcor::QPUManager::instance().clear_current();
    shots
}

fn bell_task(seed: u64) -> usize {
    bell_task_with(SHOTS, seed)
}

/// The join-heavy scenario: every driver task submits `SIBLINGS` bell
/// tasks to the same service and joins them from inside its own task
/// body (the work-conserving join path).
fn run_join_scenario(svc: &Arc<ExecutionService>) -> usize {
    let drivers: Vec<_> = (0..DRIVERS)
        .map(|d| {
            let inner = Arc::clone(svc);
            svc.submit(move || {
                let siblings: Vec<_> = (0..SIBLINGS)
                    .map(|s| {
                        inner
                            .submit(move || bell_task_with(JOIN_SHOTS, (d * SIBLINGS + s) as u64))
                            .expect("Block submission cannot fail")
                    })
                    .collect();
                siblings.into_iter().map(|f| f.wait().expect("Block futures are infallible")).sum::<usize>()
            })
            .expect("Block submission cannot fail")
        })
        .collect();
    drivers.into_iter().map(|f| f.get()).sum()
}

fn fair_service() -> Arc<ExecutionService> {
    Arc::new(ExecutionService::new(
        ExecServiceConfig::default()
            .threads(SERVICE_THREADS)
            .capacity(FAIR_CAPACITY)
            .policy(BackpressurePolicy::Block),
    ))
}

/// One polite tenant's session: `POLITE_OPS` sequential submit→join
/// cycles, returning each cycle's wall latency.
fn polite_session(svc: Arc<ExecutionService>, tenant: usize) -> Vec<Duration> {
    let name = format!("polite-{tenant}");
    (0..POLITE_OPS)
        .map(|op| {
            let seed = (tenant * POLITE_OPS + op) as u64;
            let start = Instant::now();
            let f = svc
                .submit_spec(TaskSpec::new().tenant(&name), move || bell_task_with(POLITE_SHOTS, seed))
                .expect("Block submission cannot fail");
            assert_eq!(f.get(), POLITE_SHOTS);
            start.elapsed()
        })
        .collect()
}

/// Run the polite sessions concurrently (optionally against a pre-loaded
/// flooder backlog) and return the per-tenant latency series.
fn run_fairness_phase(svc: &Arc<ExecutionService>, with_flooder: bool) -> Vec<Vec<Duration>> {
    let flood: Vec<_> = if with_flooder {
        (0..FLOOD_TASKS)
            .map(|i| {
                let seed = 50_000 + i as u64;
                svc.submit_spec(TaskSpec::new().tenant("flooder"), move || bell_task_with(POLITE_SHOTS, seed))
                    .expect("Block submission cannot fail")
            })
            .collect()
    } else {
        Vec::new()
    };
    let sessions: Vec<_> = (0..POLITE_TENANTS)
        .map(|tenant| {
            let svc = Arc::clone(svc);
            std::thread::spawn(move || polite_session(svc, tenant))
        })
        .collect();
    let latencies: Vec<Vec<Duration>> =
        sessions.into_iter().map(|h| h.join().expect("polite session panicked")).collect();
    let flooded: usize = flood.into_iter().map(|f| f.get()).sum();
    if with_flooder {
        assert_eq!(flooded, FLOOD_TASKS * POLITE_SHOTS);
    }
    latencies
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    assert!(!sorted.is_empty());
    let rank = ((sorted.len() as f64 * p).ceil() as usize).saturating_sub(1);
    sorted[rank.min(sorted.len() - 1)]
}

/// Assert the introspection identity: per-tenant gauges sum to the
/// `ServiceStats` totals and every tenant satisfies
/// `submitted == completed + running + queued + shed + cancelled + expired`.
fn assert_introspection_identity(svc: &ExecutionService) {
    let snap = svc.introspect();
    let s = &snap.stats;
    assert_eq!(
        s.submitted,
        s.completed + s.running + s.queue_len + s.shed + s.cancelled + s.expired,
        "ServiceStats identity broken: {s:?}"
    );
    let sum = |f: fn(&qcor::TenantStats) -> usize| snap.tenants.iter().map(f).sum::<usize>();
    assert_eq!(sum(|t| t.submitted), s.submitted, "tenant `submitted` gauges do not sum");
    assert_eq!(sum(|t| t.completed), s.completed, "tenant `completed` gauges do not sum");
    assert_eq!(sum(|t| t.shed), s.shed, "tenant `shed` gauges do not sum");
    for t in &snap.tenants {
        assert_eq!(
            t.submitted,
            t.completed + t.running + t.queued() + t.shed + t.cancelled + t.expired,
            "identity broken for tenant {}",
            t.tenant
        );
    }
}

/// Fetch `/stats` from a throwaway debug listener bound to this service
/// and check it serves the introspection JSON.
fn assert_debug_endpoint_serves(svc: &Arc<ExecutionService>) {
    use std::io::{Read, Write};
    let provider = Arc::clone(svc);
    let server = DebugServer::start("127.0.0.1:0", move || provider.introspect())
        .expect("failed to bind the debug listener on loopback");
    let mut conn =
        std::net::TcpStream::connect(server.local_addr()).expect("failed to connect to the debug listener");
    conn.write_all(b"GET /stats HTTP/1.0\r\n\r\n").unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.0 200"), "unexpected debug response: {response}");
    let body = response.split_once("\r\n\r\n").expect("missing HTTP body").1;
    for tenant in ["flooder", "polite-0", "polite-3"] {
        assert!(body.contains(&format!("\"tenant\":\"{tenant}\"")), "missing {tenant}: {body}");
    }
}

fn main() {
    // Baseline: the identical workload inline on one thread.
    let inline_start = Instant::now();
    let mut total = 0usize;
    for i in 0..TASKS {
        total += bell_task(i as u64);
    }
    assert_eq!(total, TASKS * SHOTS);
    let inline_time = inline_start.elapsed();

    // Queued: saturate a small bounded queue (capacity far below the task
    // count) so Block backpressure is actually exercised.
    let svc = ExecutionService::new(
        ExecServiceConfig::default()
            .threads(SERVICE_THREADS)
            .capacity(CAPACITY)
            .policy(BackpressurePolicy::Block),
    );
    let queued_start = Instant::now();
    let mut submit_latencies: Vec<Duration> = Vec::with_capacity(TASKS);
    let futures: Vec<_> = (0..TASKS)
        .map(|i| {
            let t = Instant::now();
            let f = svc.submit(move || bell_task(i as u64)).expect("Block submission cannot fail");
            submit_latencies.push(t.elapsed());
            f
        })
        .collect();
    let total: usize = futures.into_iter().map(|f| f.get()).sum();
    assert_eq!(total, TASKS * SHOTS);
    let queued_time = queued_start.elapsed();

    let stats = svc.stats();
    assert_eq!(stats.submitted, TASKS);
    assert_eq!(stats.completed, TASKS);
    assert_eq!((stats.rejected, stats.shed), (0, 0), "Block policy must not lose work");
    assert!(
        stats.peak_queue_len <= CAPACITY,
        "backpressure violated: peak queue {} > capacity {CAPACITY}",
        stats.peak_queue_len
    );

    submit_latencies.sort_unstable();
    let p50 = submit_latencies[TASKS / 2];
    let max = *submit_latencies.last().unwrap();
    let throughput = TASKS as f64 / queued_time.as_secs_f64();
    let ratio = queued_time.as_secs_f64() / inline_time.as_secs_f64();

    // Join-heavy scenario: inline baseline first (identical work, no
    // service), then the in-task-join version on a fresh small service.
    let join_inline_start = Instant::now();
    let mut join_total = 0usize;
    for d in 0..DRIVERS {
        for s in 0..SIBLINGS {
            join_total += bell_task_with(JOIN_SHOTS, (d * SIBLINGS + s) as u64);
        }
    }
    assert_eq!(join_total, DRIVERS * SIBLINGS * JOIN_SHOTS);
    let join_inline_time = join_inline_start.elapsed();

    let join_svc = Arc::new(ExecutionService::new(
        ExecServiceConfig::default()
            .threads(SERVICE_THREADS)
            .capacity(CAPACITY)
            .policy(BackpressurePolicy::Block),
    ));
    assert!(
        DRIVERS > join_svc.permit_budget(),
        "the join scenario must oversubscribe the permit budget to prove work conservation"
    );
    let join_start = Instant::now();
    let join_total = run_join_scenario(&join_svc);
    assert_eq!(join_total, DRIVERS * SIBLINGS * JOIN_SHOTS);
    let join_time = join_start.elapsed();
    let join_stats = join_svc.stats();
    assert_eq!((join_stats.rejected, join_stats.shed), (0, 0), "Block policy must not lose work");
    assert_eq!(join_stats.completed, DRIVERS * (SIBLINGS + 1), "every driver and sibling must run");
    let join_ratio = join_time.as_secs_f64() / join_inline_time.as_secs_f64();

    // Adversarial-tenant scenario: the no-flooder baseline and the flooded
    // run use identically configured fresh services.
    let baseline_svc = fair_service();
    let baseline_latencies = run_fairness_phase(&baseline_svc, false);
    baseline_svc.drain();
    assert_introspection_identity(&baseline_svc);

    let flooded_svc = fair_service();
    let flooded_latencies = run_fairness_phase(&flooded_svc, true);
    flooded_svc.drain();
    assert_introspection_identity(&flooded_svc);
    assert_debug_endpoint_serves(&flooded_svc);
    let fair_stats = flooded_svc.stats();
    assert_eq!(fair_stats.completed, FLOOD_TASKS + POLITE_TENANTS * POLITE_OPS);
    assert_eq!((fair_stats.rejected, fair_stats.shed), (0, 0), "Block policy must not lose work");

    let mut baseline_all: Vec<Duration> = baseline_latencies.iter().flatten().copied().collect();
    let mut flooded_all: Vec<Duration> = flooded_latencies.iter().flatten().copied().collect();
    baseline_all.sort_unstable();
    flooded_all.sort_unstable();
    let baseline_p99 = percentile(&baseline_all, 0.99);
    let flooded_p99 = percentile(&flooded_all, 0.99);
    let fair_ratio = flooded_p99.as_secs_f64() / baseline_p99.max(FAIR_FLOOR).as_secs_f64();

    // Per-tenant latency rows for the JSON artifact.
    let mut tenant_rows = String::new();
    for tenant in 0..POLITE_TENANTS {
        let mut baseline = baseline_latencies[tenant].clone();
        let mut flooded = flooded_latencies[tenant].clone();
        baseline.sort_unstable();
        flooded.sort_unstable();
        tenant_rows.push_str(&format!(
            "    {{ \"tenant\": \"polite-{tenant}\", \"ops\": {POLITE_OPS}, \
             \"baseline_p50_ns\": {:.1}, \"baseline_p99_ns\": {:.1}, \
             \"flooded_p50_ns\": {:.1}, \"flooded_p99_ns\": {:.1} }}{}\n",
            percentile(&baseline, 0.50).as_secs_f64() * 1e9,
            percentile(&baseline, 0.99).as_secs_f64() * 1e9,
            percentile(&flooded, 0.50).as_secs_f64() * 1e9,
            percentile(&flooded, 0.99).as_secs_f64() * 1e9,
            if tenant + 1 == POLITE_TENANTS { "" } else { "," },
        ));
    }

    let json = format!(
        "{{\n  \"meta\": {{\n    \"command\": \"cargo run -p qcor-bench --release --bin queue_guard\",\n    \
         \"logical_cpus\": {},\n    \
         \"workload\": \"{TASKS} bell tasks x {SHOTS} shots, service threads={SERVICE_THREADS}, capacity={CAPACITY}, policy=block\",\n    \
         \"join_workload\": \"{DRIVERS} driver tasks x {SIBLINGS} in-task sibling joins x {JOIN_SHOTS} shots (work-conserving join; deadlocked pre-fix)\",\n    \
         \"fair_workload\": \"{POLITE_TENANTS} polite tenants x {POLITE_OPS} submit-join ops vs 1 flooder x {FLOOD_TASKS} tasks, all x {POLITE_SHOTS} shots (DRR fair queuing)\",\n    \
         \"guard\": \"fail if queued, join-scenario, or flooded-p99 ratio exceeds {MAX_RATIO} (fairness baseline floored at {} ns)\",\n    \
         \"note\": \"async kernel-queue overhead guard; submit latency includes time blocked by backpressure\"\n  }},\n  \
         \"ratio_queued_over_inline\": {ratio:.3},\n  \
         \"ratio_join_over_inline\": {join_ratio:.3},\n  \
         \"ratio_flooded_p99_over_baseline\": {fair_ratio:.3},\n  \
         \"throughput_tasks_per_sec\": {throughput:.1},\n  \
         \"inline_wall_ns\": {:.1},\n  \
         \"queued_wall_ns\": {:.1},\n  \
         \"join_inline_wall_ns\": {:.1},\n  \
         \"join_queued_wall_ns\": {:.1},\n  \
         \"submit_latency_p50_ns\": {:.1},\n  \
         \"submit_latency_max_ns\": {:.1},\n  \
         \"polite_baseline_p99_ns\": {:.1},\n  \
         \"polite_flooded_p99_ns\": {:.1},\n  \
         \"tenants\": [\n{tenant_rows}  ],\n  \
         \"peak_queue_len\": {},\n  \"capacity\": {CAPACITY}\n}}\n",
        qcor_pool::available_parallelism(),
        FAIR_FLOOR.as_nanos(),
        inline_time.as_secs_f64() * 1e9,
        queued_time.as_secs_f64() * 1e9,
        join_inline_time.as_secs_f64() * 1e9,
        join_time.as_secs_f64() * 1e9,
        p50.as_secs_f64() * 1e9,
        max.as_secs_f64() * 1e9,
        baseline_p99.as_secs_f64() * 1e9,
        flooded_p99.as_secs_f64() * 1e9,
        stats.peak_queue_len,
    );
    std::fs::write("BENCH_queue.json", &json).expect("failed to write BENCH_queue.json");

    println!("inline  {TASKS} tasks: {:>10.1} us", inline_time.as_secs_f64() * 1e6);
    println!(
        "queued  {TASKS} tasks: {:>10.1} us  ({throughput:.0} tasks/s)",
        queued_time.as_secs_f64() * 1e6
    );
    println!(
        "submit latency p50 {:.1} us, max {:.1} us (includes backpressure blocking)",
        p50.as_secs_f64() * 1e6,
        max.as_secs_f64() * 1e6
    );
    println!("peak queue {} / capacity {CAPACITY}", stats.peak_queue_len);
    println!(
        "join    {DRIVERS}x{SIBLINGS} in-task joins: inline {:>10.1} us, queued {:>10.1} us",
        join_inline_time.as_secs_f64() * 1e6,
        join_time.as_secs_f64() * 1e6
    );
    println!(
        "fair    polite p99: baseline {:>10.1} us, flooded {:>10.1} us  ({FLOOD_TASKS}-task flooder)",
        baseline_p99.as_secs_f64() * 1e6,
        flooded_p99.as_secs_f64() * 1e6
    );
    qcor_bench::enforce_guard_ratio("queued / inline", ratio, MAX_RATIO, "BENCH_queue.json");
    qcor_bench::enforce_guard_ratio("join-scenario / inline", join_ratio, MAX_RATIO, "BENCH_queue.json");
    qcor_bench::enforce_guard_ratio(
        "flooded polite p99 / baseline",
        fair_ratio,
        MAX_RATIO,
        "BENCH_queue.json",
    );
}
