//! Perf-regression guard for the async kernel queue.
//!
//! Two scenarios, both guarded at [`MAX_RATIO`]× the identical inline
//! workload and recorded to `BENCH_queue.json` (mirroring
//! `shotsched_guard`); the guard **exits non-zero** on either regression:
//!
//! 1. **Saturation** — many more submissions than queue capacity under
//!    Block backpressure: per-task queue overhead. Also sanity-checks the
//!    backpressure contract (peak queue occupancy never exceeds capacity;
//!    nothing is shed or rejected under Block).
//! 2. **Join-heavy** — driver tasks that spawn sibling tasks on the same
//!    service and `wait()` on them **in-task**: the work-conserving join
//!    path. Before it existed this shape deadlocked outright; the guard
//!    keeps its overhead (helping drain vs. plain inline execution)
//!    within the same budget.
//!
//! ```text
//! cargo run -p qcor-bench --release --bin queue_guard
//! ```

use qcor::{BackpressurePolicy, ExecServiceConfig, ExecutionService, InitOptions, Kernel};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TASKS: usize = 96;
const SHOTS: usize = 256;
const CAPACITY: usize = 8;
const SERVICE_THREADS: usize = 2;
const MAX_RATIO: f64 = 5.0;

// Join-heavy scenario: DRIVERS outer tasks × SIBLINGS in-task joins each.
// DRIVERS exceeds the service's permit budget (threads − 1), so without
// the work-conserving join the drivers alone would exhaust every executor
// slot and deadlock.
const DRIVERS: usize = 12;
const SIBLINGS: usize = 4;
const JOIN_SHOTS: usize = 64;

const BELL: &str = "H(q[0]); CX(q[0], q[1]); Measure(q[0]); Measure(q[1]);";

fn bell_task_with(shots: usize, seed: u64) -> usize {
    qcor::initialize(InitOptions::default().threads(1).shots(shots).seed(seed)).unwrap();
    let q = qcor::qalloc(2);
    Kernel::from_xasm(BELL, 2).unwrap().invoke(&q, &[]).unwrap();
    let shots = q.total_shots();
    qcor::QPUManager::instance().clear_current();
    shots
}

fn bell_task(seed: u64) -> usize {
    bell_task_with(SHOTS, seed)
}

/// The join-heavy scenario: every driver task submits `SIBLINGS` bell
/// tasks to the same service and joins them from inside its own task
/// body (the work-conserving join path).
fn run_join_scenario(svc: &Arc<ExecutionService>) -> usize {
    let drivers: Vec<_> = (0..DRIVERS)
        .map(|d| {
            let inner = Arc::clone(svc);
            svc.submit(move || {
                let siblings: Vec<_> = (0..SIBLINGS)
                    .map(|s| {
                        inner
                            .submit(move || bell_task_with(JOIN_SHOTS, (d * SIBLINGS + s) as u64))
                            .expect("Block submission cannot fail")
                    })
                    .collect();
                siblings.into_iter().map(|f| f.wait().expect("Block futures are infallible")).sum::<usize>()
            })
            .expect("Block submission cannot fail")
        })
        .collect();
    drivers.into_iter().map(|f| f.get()).sum()
}

fn main() {
    // Baseline: the identical workload inline on one thread.
    let inline_start = Instant::now();
    let mut total = 0usize;
    for i in 0..TASKS {
        total += bell_task(i as u64);
    }
    assert_eq!(total, TASKS * SHOTS);
    let inline_time = inline_start.elapsed();

    // Queued: saturate a small bounded queue (capacity far below the task
    // count) so Block backpressure is actually exercised.
    let svc = ExecutionService::new(
        ExecServiceConfig::default()
            .threads(SERVICE_THREADS)
            .capacity(CAPACITY)
            .policy(BackpressurePolicy::Block),
    );
    let queued_start = Instant::now();
    let mut submit_latencies: Vec<Duration> = Vec::with_capacity(TASKS);
    let futures: Vec<_> = (0..TASKS)
        .map(|i| {
            let t = Instant::now();
            let f = svc.submit(move || bell_task(i as u64)).expect("Block submission cannot fail");
            submit_latencies.push(t.elapsed());
            f
        })
        .collect();
    let total: usize = futures.into_iter().map(|f| f.get()).sum();
    assert_eq!(total, TASKS * SHOTS);
    let queued_time = queued_start.elapsed();

    let stats = svc.stats();
    assert_eq!(stats.submitted, TASKS);
    assert_eq!(stats.completed, TASKS);
    assert_eq!((stats.rejected, stats.shed), (0, 0), "Block policy must not lose work");
    assert!(
        stats.peak_queue_len <= CAPACITY,
        "backpressure violated: peak queue {} > capacity {CAPACITY}",
        stats.peak_queue_len
    );

    submit_latencies.sort_unstable();
    let p50 = submit_latencies[TASKS / 2];
    let max = *submit_latencies.last().unwrap();
    let throughput = TASKS as f64 / queued_time.as_secs_f64();
    let ratio = queued_time.as_secs_f64() / inline_time.as_secs_f64();

    // Join-heavy scenario: inline baseline first (identical work, no
    // service), then the in-task-join version on a fresh small service.
    let join_inline_start = Instant::now();
    let mut join_total = 0usize;
    for d in 0..DRIVERS {
        for s in 0..SIBLINGS {
            join_total += bell_task_with(JOIN_SHOTS, (d * SIBLINGS + s) as u64);
        }
    }
    assert_eq!(join_total, DRIVERS * SIBLINGS * JOIN_SHOTS);
    let join_inline_time = join_inline_start.elapsed();

    let join_svc = Arc::new(ExecutionService::new(
        ExecServiceConfig::default()
            .threads(SERVICE_THREADS)
            .capacity(CAPACITY)
            .policy(BackpressurePolicy::Block),
    ));
    assert!(
        DRIVERS > join_svc.permit_budget(),
        "the join scenario must oversubscribe the permit budget to prove work conservation"
    );
    let join_start = Instant::now();
    let join_total = run_join_scenario(&join_svc);
    assert_eq!(join_total, DRIVERS * SIBLINGS * JOIN_SHOTS);
    let join_time = join_start.elapsed();
    let join_stats = join_svc.stats();
    assert_eq!((join_stats.rejected, join_stats.shed), (0, 0), "Block policy must not lose work");
    assert_eq!(join_stats.completed, DRIVERS * (SIBLINGS + 1), "every driver and sibling must run");
    let join_ratio = join_time.as_secs_f64() / join_inline_time.as_secs_f64();

    let json = format!(
        "{{\n  \"meta\": {{\n    \"command\": \"cargo run -p qcor-bench --release --bin queue_guard\",\n    \
         \"logical_cpus\": {},\n    \
         \"workload\": \"{TASKS} bell tasks x {SHOTS} shots, service threads={SERVICE_THREADS}, capacity={CAPACITY}, policy=block\",\n    \
         \"join_workload\": \"{DRIVERS} driver tasks x {SIBLINGS} in-task sibling joins x {JOIN_SHOTS} shots (work-conserving join; deadlocked pre-fix)\",\n    \
         \"guard\": \"fail if queued (or join-scenario) wall time divided by inline wall time exceeds {MAX_RATIO}\",\n    \
         \"note\": \"async kernel-queue overhead guard; submit latency includes time blocked by backpressure\"\n  }},\n  \
         \"ratio_queued_over_inline\": {ratio:.3},\n  \
         \"ratio_join_over_inline\": {join_ratio:.3},\n  \
         \"throughput_tasks_per_sec\": {throughput:.1},\n  \
         \"inline_wall_ns\": {:.1},\n  \
         \"queued_wall_ns\": {:.1},\n  \
         \"join_inline_wall_ns\": {:.1},\n  \
         \"join_queued_wall_ns\": {:.1},\n  \
         \"submit_latency_p50_ns\": {:.1},\n  \
         \"submit_latency_max_ns\": {:.1},\n  \
         \"peak_queue_len\": {},\n  \"capacity\": {CAPACITY}\n}}\n",
        qcor_pool::available_parallelism(),
        inline_time.as_secs_f64() * 1e9,
        queued_time.as_secs_f64() * 1e9,
        join_inline_time.as_secs_f64() * 1e9,
        join_time.as_secs_f64() * 1e9,
        p50.as_secs_f64() * 1e9,
        max.as_secs_f64() * 1e9,
        stats.peak_queue_len,
    );
    std::fs::write("BENCH_queue.json", &json).expect("failed to write BENCH_queue.json");

    println!("inline  {TASKS} tasks: {:>10.1} us", inline_time.as_secs_f64() * 1e6);
    println!(
        "queued  {TASKS} tasks: {:>10.1} us  ({throughput:.0} tasks/s)",
        queued_time.as_secs_f64() * 1e6
    );
    println!(
        "submit latency p50 {:.1} us, max {:.1} us (includes backpressure blocking)",
        p50.as_secs_f64() * 1e6,
        max.as_secs_f64() * 1e6
    );
    println!("peak queue {} / capacity {CAPACITY}", stats.peak_queue_len);
    println!(
        "join    {DRIVERS}x{SIBLINGS} in-task joins: inline {:>10.1} us, queued {:>10.1} us",
        join_inline_time.as_secs_f64() * 1e6,
        join_time.as_secs_f64() * 1e6
    );
    qcor_bench::enforce_guard_ratio("queued / inline", ratio, MAX_RATIO, "BENCH_queue.json");
    qcor_bench::enforce_guard_ratio("join-scenario / inline", join_ratio, MAX_RATIO, "BENCH_queue.json");
}
