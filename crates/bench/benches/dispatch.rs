//! Runtime-dispatch ablation: the cost of the thread-safety machinery the
//! paper adds — mutex-guarded `qalloc`, cloneable accelerator
//! construction vs singleton lookup, and QPUManager round-trips.

use criterion::{criterion_group, criterion_main, Criterion};
use qcor::{qalloc, QPUManager};
use qcor_xacc::{registry, HetMap};
use std::time::Duration;

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));

    group.bench_function("qalloc_mutex_guarded", |b| {
        b.iter(|| qalloc(2));
        qcor::clear_allocated_buffers();
    });

    let params = HetMap::new().with("threads", 1usize);
    group.bench_function("get_accelerator_cloneable_qpp", |b| {
        b.iter(|| registry::get_accelerator("qpp", &params).unwrap());
    });

    group.bench_function("get_accelerator_singleton_legacy", |b| {
        b.iter(|| registry::get_accelerator("qpp-legacy-shared", &params).unwrap());
    });

    group.bench_function("qpu_manager_roundtrip", |b| {
        qcor::initialize(qcor::InitOptions::default().threads(1)).unwrap();
        b.iter(|| QPUManager::instance().get_qpu().unwrap());
        QPUManager::instance().clear_current();
    });
    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
