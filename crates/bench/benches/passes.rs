//! Gate-fusion ablation for the "asynchronous quantum JIT compilation"
//! scenario (paper §VII): cost of the optimizer itself, and the simulation
//! payoff of running it.

use criterion::{criterion_group, criterion_main, Criterion};
use qcor_circuit::{library, passes, Circuit};
use qcor_sim::{run_once, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// A redundancy-heavy workload: QFT·IQFT plus rotation chains, the kind of
/// generated circuit a JIT pass shrinks dramatically.
fn redundant_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.extend(&library::qft(n));
    c.extend(&library::iqft(n));
    for q in 0..n {
        for k in 0..8 {
            c.rz(q, 0.1 * (k as f64 + 1.0));
        }
    }
    c
}

fn bench_passes(c: &mut Criterion) {
    let mut group = c.benchmark_group("jit_passes");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    let mut rng = StdRng::seed_from_u64(0);

    group.bench_function("optimize_qft_iqft_10q", |b| {
        b.iter(|| {
            let mut circuit = redundant_circuit(10);
            passes::optimize(&mut circuit)
        });
    });

    group.bench_function("simulate_unoptimized_12q", |b| {
        let circuit = redundant_circuit(12);
        b.iter(|| {
            let mut state = StateVector::new(12);
            run_once(&mut state, &circuit, &mut rng);
        });
    });

    group.bench_function("simulate_optimized_12q", |b| {
        let mut circuit = redundant_circuit(12);
        passes::optimize(&mut circuit);
        b.iter(|| {
            let mut state = StateVector::new(12);
            run_once(&mut state, &circuit, &mut rng);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_passes);
criterion_main!(benches);
