//! Criterion companion to Figures 4/5: single period-finding samples for
//! both kernel constructions.

use criterion::{criterion_group, criterion_main, Criterion};
use qcor_algos::shor::{beauregard::ModExpEngine, textbook};
use qcor_pool::ThreadPool;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn bench_shor(c: &mut Criterion) {
    let mut group = c.benchmark_group("shor_kernel");
    group.sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(300));
    let pool = Arc::new(ThreadPool::new(1));

    let engine15 = ModExpEngine::new(7, 15);
    group.bench_function("beauregard_sample_n15", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| engine15.sample_phase(Arc::clone(&pool), &mut rng));
    });

    let engine7 = ModExpEngine::new(2, 7);
    group.bench_function("beauregard_sample_n7", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| engine7.sample_phase(Arc::clone(&pool), &mut rng));
    });

    group.bench_function("textbook_sample_n15", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| textbook::sample_phase(7, 15, 8, Arc::clone(&pool), &mut rng));
    });

    group.bench_function("modexp_engine_build_n15", |b| {
        b.iter(|| ModExpEngine::new(7, 15).gate_count());
    });
    group.finish();
}

criterion_group!(benches, bench_shor);
criterion_main!(benches);
