//! Simulator gate-kernel micro-benchmarks: the inner loops whose OpenMP
//! analogue the paper's per-kernel thread counts feed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcor_circuit::{library, Circuit};
use qcor_circuit::{GateKind, Instruction};
use qcor_pool::ThreadPool;
use qcor_sim::{gates, run_once, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

const QUBITS: usize = 16;

fn bench_gates(c: &mut Criterion) {
    let mut group = c.benchmark_group("gates");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    let mut rng = StdRng::seed_from_u64(0);
    let threads = qcor_pool::available_parallelism().max(2);

    for t in [1usize, threads] {
        let pool = Arc::new(ThreadPool::new(t));
        group.bench_with_input(BenchmarkId::new("h_16q", t), &t, |b, _| {
            let mut state = StateVector::with_pool(QUBITS, Arc::clone(&pool));
            let h = Instruction::new(GateKind::H, vec![7], vec![]);
            b.iter(|| {
                gates::apply_instruction(&mut state, &h, &mut rng);
            });
        });
        group.bench_with_input(BenchmarkId::new("cx_16q", t), &t, |b, _| {
            let mut state = StateVector::with_pool(QUBITS, Arc::clone(&pool));
            let cx = Instruction::new(GateKind::CX, vec![3, 11], vec![]);
            b.iter(|| {
                gates::apply_instruction(&mut state, &cx, &mut rng);
            });
        });
        group.bench_with_input(BenchmarkId::new("cphase_16q", t), &t, |b, _| {
            let mut state = StateVector::with_pool(QUBITS, Arc::clone(&pool));
            let cp = Instruction::new(GateKind::CPhase, vec![2, 9], vec![0.37]);
            b.iter(|| {
                gates::apply_instruction(&mut state, &cp, &mut rng);
            });
        });
    }

    group.bench_function("qft_12q_full_circuit", |b| {
        let circuit = library::qft(12);
        b.iter(|| {
            let mut state = StateVector::new(12);
            run_once(&mut state, &circuit, &mut rng);
        });
    });

    group.bench_function("ghz_20q_state_prep", |b| {
        let mut circuit = Circuit::new(20);
        circuit.h(0);
        for i in 0..19 {
            circuit.cx(i, i + 1);
        }
        b.iter(|| {
            let mut state = StateVector::new(20);
            run_once(&mut state, &circuit, &mut rng);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_gates);
criterion_main!(benches);
