//! Criterion companion to Figure 3: Bell-kernel shot loops at different
//! simulator thread counts, with the batched shot scheduler (default) and
//! the pre-scheduler per-gate dispatch path (`Granularity::Sequential`)
//! side by side. The headline series is `shots512/{1,2}`: before the
//! scheduler, `/2` was ~100× slower than `/1` on a 1-CPU host because
//! every tiny amplitude loop paid a pool fork/join.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcor_circuit::library;
use qcor_pool::ThreadPool;
use qcor_sim::{run_shots, Granularity, RunConfig};
use std::sync::Arc;
use std::time::Duration;

fn bench_bell(c: &mut Criterion) {
    let mut group = c.benchmark_group("bell_kernel");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    let circuit = library::bell_kernel();
    let max_threads = qcor_pool::available_parallelism().max(2);
    let mut ladder = vec![1usize, 2, max_threads];
    ladder.dedup();
    for threads in ladder {
        let pool = Arc::new(ThreadPool::new(threads));
        group.bench_with_input(BenchmarkId::new("shots512", threads), &threads, |b, _| {
            b.iter(|| {
                let config = RunConfig { shots: 512, seed: Some(1), ..RunConfig::default() };
                let counts = run_shots(&circuit, Arc::clone(&pool), &config);
                assert_eq!(counts.values().sum::<usize>(), 512);
            });
        });
        // The pre-scheduler path (every amplitude loop work-shared over the
        // pool), kept measurable for the A/B trajectory.
        group.bench_with_input(BenchmarkId::new("shots512_seq", threads), &threads, |b, _| {
            b.iter(|| {
                let config = RunConfig {
                    shots: 512,
                    seed: Some(1),
                    granularity: Granularity::Sequential,
                    ..RunConfig::default()
                };
                let counts = run_shots(&circuit, Arc::clone(&pool), &config);
                assert_eq!(counts.values().sum::<usize>(), 512);
            });
        });
    }
    // Shot-level parallelism ablation (paper §II's second parallelism
    // level): the same 512 shots split across 2 tasks vs one task.
    for tasks in [1usize, 2] {
        group.bench_with_input(BenchmarkId::new("shot_parallel_512", tasks), &tasks, |b, &tasks| {
            b.iter(|| {
                let config = RunConfig { shots: 512, seed: Some(1), ..RunConfig::default() };
                let counts = qcor_sim::run_shots_task_parallel(&circuit, tasks, 1, &config);
                assert_eq!(counts.values().sum::<usize>(), 512);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bell);
criterion_main!(benches);
