//! Ablation bench for the pool design choices DESIGN.md calls out:
//! scheduling policy and grain size, plus raw fork/join dispatch overhead
//! (the cost that makes oversubscribing small kernels unprofitable —
//! the mechanism behind Figure 3's one-by-one 24-thread slowdown).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcor_pool::{Schedule, ThreadPool};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    let threads = qcor_pool::available_parallelism().max(2);
    let pool = ThreadPool::new(threads);
    let n = 100_000;

    for schedule in [Schedule::Static, Schedule::Auto, Schedule::Dynamic(64), Schedule::Dynamic(1024)] {
        group.bench_with_input(
            BenchmarkId::new("sum_100k", format!("{schedule:?}")),
            &schedule,
            |b, &schedule| {
                b.iter(|| {
                    let acc = AtomicU64::new(0);
                    pool.parallel_for_with(0..n, schedule, |chunk| {
                        let local: u64 = chunk.map(|i| i as u64).sum();
                        acc.fetch_add(local, Ordering::Relaxed);
                    });
                    assert_eq!(acc.load(Ordering::Relaxed), (n as u64 - 1) * n as u64 / 2);
                });
            },
        );
    }

    // Fork/join overhead: empty body over a tiny range.
    group.bench_function("dispatch_overhead_empty", |b| {
        b.iter(|| pool.parallel_for(0..threads, |_chunk| {}));
    });

    let seq = ThreadPool::new(1);
    group.bench_function("sequential_reference_sum_100k", |b| {
        b.iter(|| {
            let acc = AtomicU64::new(0);
            seq.parallel_for(0..n, |chunk| {
                let local: u64 = chunk.map(|i| i as u64).sum();
                acc.fetch_add(local, Ordering::Relaxed);
            });
        });
    });
    group.finish();
}

criterion_group!(benches, bench_pool);
criterion_main!(benches);
