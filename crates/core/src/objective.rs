//! The VQE objective function (the `createObjectiveFunction` of paper
//! Listing 3): ⟨ψ(θ)|H|ψ(θ)⟩ over a parametric ansatz kernel.

use crate::allocation::QReg;
use crate::kernel::Kernel;
use crate::optim::ObjectiveFn;
use crate::qpu_manager::QPUManager;
use crate::{HetMap, QcorError};
use qcor_pauli::{expectation, PauliSum};
use qcor_sim::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// How the expectation value is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalStrategy {
    /// Simulate the bound ansatz once and compute ⟨H⟩ exactly —
    /// deterministic and cheap; the right choice while optimizing.
    Exact,
    /// Sample counts through the calling thread's accelerator (one
    /// execution per qubit-wise-commuting measurement group), as a real
    /// device would.
    Sampled,
}

/// ⟨ψ(θ)|H|ψ(θ)⟩ as a minimizable [`ObjectiveFn`].
pub struct ObjectiveFunction {
    kernel: Arc<Kernel>,
    hamiltonian: PauliSum,
    qreg: QReg,
    n_params: usize,
    strategy: EvalStrategy,
    gradient_step: f64,
    evaluations: AtomicUsize,
    sample_seed: AtomicU64,
}

impl ObjectiveFunction {
    /// See [`create_objective_function`].
    pub fn new(
        kernel: Kernel,
        hamiltonian: PauliSum,
        qreg: QReg,
        n_params: usize,
        strategy: EvalStrategy,
        gradient_step: f64,
    ) -> Self {
        ObjectiveFunction {
            kernel: Arc::new(kernel),
            hamiltonian,
            qreg,
            n_params,
            strategy,
            gradient_step,
            evaluations: AtomicUsize::new(0),
            sample_seed: AtomicU64::new(0xC0FFEE),
        }
    }

    /// Number of variational parameters.
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// Objective evaluations so far (including gradient probes).
    pub fn evaluations(&self) -> usize {
        self.evaluations.load(Ordering::Relaxed)
    }

    /// Evaluate the energy at `params`.
    pub fn evaluate(&self, params: &[f64]) -> Result<f64, QcorError> {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        let prep = self.kernel.bind(params)?;
        if prep.has_measurements() {
            return Err(QcorError::Kernel(
                "VQE ansatz kernels must not contain measurements; the objective adds its own".into(),
            ));
        }
        match self.strategy {
            EvalStrategy::Exact => {
                let n = prep.num_qubits().max(self.hamiltonian.num_qubits());
                let mut state = StateVector::new(n);
                let mut rng = StdRng::seed_from_u64(0); // unitary prep: unused
                qcor_sim::run_once(&mut state, &prep, &mut rng);
                Ok(expectation::exact(&state, &self.hamiltonian))
            }
            EvalStrategy::Sampled => {
                let ctx = QPUManager::instance().get_qpu().ok_or(QcorError::NotInitialized)?;
                let mut failure: Option<QcorError> = None;
                let energy = expectation::estimate_with(&self.hamiltonian, &prep, |circuit| {
                    let mut buf = qcor_xacc::AcceleratorBuffer::new(circuit.num_qubits());
                    // Fresh derived seed per group for statistically
                    // independent yet reproducible estimates.
                    let seed = ctx
                        .exec
                        .seed
                        .map(|s| s.wrapping_add(self.sample_seed.fetch_add(1, Ordering::Relaxed)));
                    let opts = qcor_xacc::ExecOptions { shots: ctx.exec.shots, seed };
                    if let Err(e) = ctx.qpu.execute(&mut buf, circuit, &opts) {
                        failure = Some(e.into());
                    }
                    buf.measurements().clone()
                });
                match failure {
                    Some(e) => Err(e),
                    None => Ok(energy),
                }
            }
        }
    }

    /// The register this objective reports into.
    pub fn qreg(&self) -> &QReg {
        &self.qreg
    }
}

impl ObjectiveFn for ObjectiveFunction {
    fn eval(&self, x: &[f64]) -> f64 {
        self.evaluate(x).expect("objective evaluation failed")
    }

    fn grad(&self, x: &[f64]) -> Vec<f64> {
        crate::optim::central_difference(&|y: &[f64]| self.eval(y), x, self.gradient_step)
    }
}

/// `createObjectiveFunction(kernel, H, q, n_params, options)` — Listing 3.
///
/// Recognized options: `"gradient-strategy"` (only `"central"` is
/// implemented), `"step"` (finite-difference step, default 1e-3),
/// `"strategy"` (`"exact"` default, or `"sampled"`).
pub fn create_objective_function(
    kernel: Kernel,
    hamiltonian: PauliSum,
    qreg: QReg,
    n_params: usize,
    options: &HetMap,
) -> Result<ObjectiveFunction, QcorError> {
    if let Some(gs) = options.get_str("gradient-strategy") {
        if gs != "central" {
            return Err(QcorError::Kernel(format!("unsupported gradient strategy `{gs}`")));
        }
    }
    let step = options.get_float("step").unwrap_or(1e-3);
    let strategy = match options.get_str("strategy") {
        None | Some("exact") => EvalStrategy::Exact,
        Some("sampled") => EvalStrategy::Sampled,
        Some(other) => return Err(QcorError::Kernel(format!("unknown evaluation strategy `{other}`"))),
    };
    Ok(ObjectiveFunction::new(kernel, hamiltonian, qreg, n_params, strategy, step))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::qalloc;
    use crate::optim::create_optimizer;
    use crate::runtime::{initialize, InitOptions};
    use qcor_pauli::deuteron_hamiltonian;

    fn deuteron_ansatz() -> Kernel {
        Kernel::from_xasm(
            "__qpu__ void ansatz(qreg q, double theta) { X(q[0]); Ry(q[1], theta); CX(q[1], q[0]); }",
            2,
        )
        .unwrap()
    }

    #[test]
    fn exact_objective_matches_reference_curve() {
        let obj = ObjectiveFunction::new(
            deuteron_ansatz(),
            deuteron_hamiltonian(),
            qalloc(2),
            1,
            EvalStrategy::Exact,
            1e-3,
        );
        // Known landscape point: optimum near θ* ≈ 0.594, E* ≈ −1.7487.
        let e = obj.evaluate(&[0.594]).unwrap();
        assert!((e - (-1.7487)).abs() < 5e-3, "E = {e}");
        // And θ = 0 gives the Hartree-Fock-like reference energy.
        let e0 = obj.evaluate(&[0.0]).unwrap();
        assert!(e0 > e, "θ=0 must be above the optimum");
    }

    #[test]
    fn listing_3_vqe_flow_end_to_end() {
        // The full Listing 3: objective + optimizer → ground-state energy.
        let q = qalloc(2);
        let obj = create_objective_function(
            deuteron_ansatz(),
            deuteron_hamiltonian(),
            q,
            1,
            &HetMap::new().with("gradient-strategy", "central").with("step", 1e-3),
        )
        .unwrap();
        let opt = create_optimizer("nlopt", &HetMap::new()).unwrap(); // → L-BFGS
        let result = opt.optimize(&obj, &[0.0]);
        assert!((result.opt_val - (-1.7487)).abs() < 1e-3, "{result:?}");
        assert!(obj.evaluations() > 2);
    }

    #[test]
    fn sampled_objective_is_close_to_exact() {
        std::thread::spawn(|| {
            initialize(InitOptions::default().threads(1).shots(8192).seed(9)).unwrap();
            let exact = ObjectiveFunction::new(
                deuteron_ansatz(),
                deuteron_hamiltonian(),
                qalloc(2),
                1,
                EvalStrategy::Exact,
                1e-3,
            );
            let sampled = ObjectiveFunction::new(
                deuteron_ansatz(),
                deuteron_hamiltonian(),
                qalloc(2),
                1,
                EvalStrategy::Sampled,
                1e-3,
            );
            let (e, s) = (exact.evaluate(&[0.5]).unwrap(), sampled.evaluate(&[0.5]).unwrap());
            assert!((e - s).abs() < 0.25, "exact {e} vs sampled {s}");
            QPUManager::instance().clear_current();
        })
        .join()
        .unwrap();
    }

    #[test]
    fn sampled_objective_requires_initialization() {
        std::thread::spawn(|| {
            let obj = ObjectiveFunction::new(
                deuteron_ansatz(),
                deuteron_hamiltonian(),
                qalloc(2),
                1,
                EvalStrategy::Sampled,
                1e-3,
            );
            assert_eq!(obj.evaluate(&[0.1]), Err(QcorError::NotInitialized));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn measured_ansatz_is_rejected() {
        let k = Kernel::from_xasm("H(q[0]); Measure(q[0]);", 1).unwrap();
        let obj =
            ObjectiveFunction::new(k, qcor_pauli::PauliSum::z(0), qalloc(1), 0, EvalStrategy::Exact, 1e-3);
        assert!(obj.evaluate(&[]).is_err());
    }

    #[test]
    fn bad_options_are_rejected() {
        let q = qalloc(2);
        assert!(create_objective_function(
            deuteron_ansatz(),
            deuteron_hamiltonian(),
            q.clone(),
            1,
            &HetMap::new().with("gradient-strategy", "parameter-shift"),
        )
        .is_err());
        assert!(create_objective_function(
            deuteron_ansatz(),
            deuteron_hamiltonian(),
            q,
            1,
            &HetMap::new().with("strategy", "psychic"),
        )
        .is_err());
    }
}
