//! The `QPUManager` singleton (paper Listing 8), grown into a router: a
//! map from thread id to that thread's accelerator instance plus a
//! process-wide [`RoutingPolicy`] that decides **which backend** each
//! `initialize` call is steered to.
//!
//! Routing answers the multi-backend half of the scaling story: one
//! process can serve mixed workloads across the `qpp` / `qpp-noisy` /
//! `qpp-density` / `remote` services, either pinned (the paper's original
//! behaviour), rotated round-robin over a named list, or matched by
//! [`BackendCapability`]. Each distinct candidate list gets one shared
//! process-wide rotation cursor, so concurrent initializations under the
//! same list spread exactly evenly over its candidates, while different
//! lists rotate independently. Capability routing is additionally
//! **load-weighted**: candidates are filtered to the minimum live queue
//! depth (the registry's per-backend in-flight gauge, incremented for the
//! duration of each `execute`) before the cursor rotates among them, so a
//! backend stuck under long executions stops receiving new placements
//! until it drains.

use crate::runtime::InitOptions;
use crate::QcorError;
use parking_lot::Mutex;
use qcor_xacc::{registry, Accelerator, BackendCapability, ExecOptions};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::thread::ThreadId;

/// Everything the runtime needs to service kernel invocations from one
/// thread: its accelerator instance, its execution options, and the
/// initialize-time options (so [`crate::spawn`] can replay them on child
/// threads).
#[derive(Clone)]
pub struct ThreadContext {
    /// This thread's accelerator instance.
    pub qpu: Arc<dyn Accelerator>,
    /// The **registry key** routing resolved for this context (not
    /// necessarily `qpu.name()` — custom services may register under any
    /// key). Child tasks re-initialize pinned to this key.
    pub resolved_backend: String,
    /// Shots/seed used by `execute`.
    pub exec: ExecOptions,
    /// The options this context was initialized from.
    pub init: InitOptions,
}

/// How [`crate::initialize`] picks the backend service a thread is handed.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum RoutingPolicy {
    /// Use the backend named in `InitOptions::backend` verbatim (the
    /// paper's behaviour; the default).
    #[default]
    Pinned,
    /// Rotate over the named backends with a process-wide shared cursor:
    /// successive initializations (from any thread) take successive
    /// entries, so mixed workloads spread evenly.
    RoundRobin(Vec<String>),
    /// Rotate over every **cloneable** registered service advertising the
    /// given capability (singletons are excluded — sharing one instance
    /// across threads is the §V-A.2 race).
    Capability(BackendCapability),
}

thread_local! {
    /// Installed on first registration; its destructor evicts the calling
    /// thread's map entry when the OS thread exits, so short-lived threads
    /// that never called `clear_current` don't leak `ThreadContext`s in a
    /// long-running service.
    static EVICTION_GUARD: RefCell<Option<EvictionGuard>> = const { RefCell::new(None) };
}

struct EvictionGuard {
    /// Captured at installation: `std::thread::current()` is not reliable
    /// inside TLS destructors, so the id is stored, not re-derived.
    id: ThreadId,
}

impl Drop for EvictionGuard {
    fn drop(&mut self) {
        if let Some(mgr) = INSTANCE.get() {
            mgr.evict_thread(self.id);
        }
    }
}

/// Singleton mapping `thread::id -> Accelerator` (paper Listing 8) and
/// routing `initialize` calls across backends.
pub struct QPUManager {
    qpu_map: Mutex<HashMap<ThreadId, ThreadContext>>,
    policy: Mutex<RoutingPolicy>,
    /// One shared rotation cursor **per candidate list**: distinct
    /// round-robin lists (or capability matches) rotate independently, so
    /// two subsystems with different lists don't phase-lock each other
    /// onto fixed entries.
    cursors: Mutex<HashMap<String, usize>>,
}

static INSTANCE: OnceLock<QPUManager> = OnceLock::new();

impl QPUManager {
    /// `QPUManager::getInstance()` — the singleton accessor.
    pub fn instance() -> &'static QPUManager {
        INSTANCE.get_or_init(|| QPUManager {
            qpu_map: Mutex::new(HashMap::new()),
            policy: Mutex::new(RoutingPolicy::Pinned),
            cursors: Mutex::new(HashMap::new()),
        })
    }

    /// Register the calling thread's accelerator (the setter of
    /// Listing 8, called by `quantum::initialize()`).
    pub fn set_qpu(&self, ctx: ThreadContext) {
        let id = std::thread::current().id();
        self.qpu_map.lock().insert(id, ctx);
        // Arm the eviction guard so the entry cannot outlive the thread.
        EVICTION_GUARD.with(|slot| {
            let mut slot = slot.borrow_mut();
            if slot.is_none() {
                *slot = Some(EvictionGuard { id });
            }
        });
    }

    /// The calling thread's context, if it has initialized.
    pub fn get_qpu(&self) -> Option<ThreadContext> {
        self.qpu_map.lock().get(&std::thread::current().id()).cloned()
    }

    /// Update only the execution options of the calling thread.
    pub fn update_exec(&self, exec: ExecOptions) -> bool {
        let mut map = self.qpu_map.lock();
        match map.get_mut(&std::thread::current().id()) {
            Some(ctx) => {
                ctx.exec = exec;
                true
            }
            None => false,
        }
    }

    /// Remove the calling thread's registration.
    pub fn clear_current(&self) {
        self.qpu_map.lock().remove(&std::thread::current().id());
    }

    /// Remove a specific thread's registration (the eviction/drop path for
    /// exited threads; also usable by supervisors that track thread ids).
    pub fn evict_thread(&self, id: ThreadId) -> bool {
        self.qpu_map.lock().remove(&id).is_some()
    }

    /// Whether `id` currently has a registered context.
    pub fn thread_is_registered(&self, id: ThreadId) -> bool {
        self.qpu_map.lock().contains_key(&id)
    }

    /// Number of threads currently registered.
    pub fn registered_threads(&self) -> usize {
        self.qpu_map.lock().len()
    }

    /// Set the process-wide routing policy applied to `initialize` calls
    /// that don't carry their own (see `InitOptions::routing`).
    pub fn set_routing_policy(&self, policy: RoutingPolicy) {
        *self.policy.lock() = policy;
    }

    /// The process-wide routing policy.
    pub fn routing_policy(&self) -> RoutingPolicy {
        self.policy.lock().clone()
    }

    /// Resolve the backend service name an initialization should use.
    ///
    /// `policy = None` means "inherit the manager's process-wide policy";
    /// `requested` is the `InitOptions::backend` name, honored verbatim
    /// under [`RoutingPolicy::Pinned`].
    pub fn route(&self, policy: Option<&RoutingPolicy>, requested: &str) -> Result<String, QcorError> {
        let inherited;
        let policy = match policy {
            Some(p) => p,
            None => {
                inherited = self.routing_policy();
                &inherited
            }
        };
        match policy {
            RoutingPolicy::Pinned => Ok(requested.to_string()),
            RoutingPolicy::RoundRobin(backends) => {
                if backends.is_empty() {
                    return Err(QcorError::Routing("round-robin routing over an empty backend list".into()));
                }
                Ok(backends[self.next_slot(backends) % backends.len()].clone())
            }
            RoutingPolicy::Capability(cap) => {
                let candidates = registry::global().cloneable_services_with_capability(*cap);
                if candidates.is_empty() {
                    return Err(QcorError::Routing(format!(
                        "no cloneable backend advertises capability `{cap}`"
                    )));
                }
                // Weight by live queue depth: keep only the candidates at
                // the minimum in-flight load and rotate among those. With
                // all loads equal (the common idle case) this degenerates
                // to the plain rotation, cursor and all.
                let reg = registry::global();
                // One load sample per candidate: sampling twice could race
                // a concurrent execution and leave the filter empty.
                let loads: Vec<usize> = candidates.iter().map(|name| reg.load_of(name)).collect();
                let min_load = *loads.iter().min().expect("non-empty");
                let light: Vec<String> = candidates
                    .into_iter()
                    .zip(loads)
                    .filter(|(_, load)| *load == min_load)
                    .map(|(name, _)| name)
                    .collect();
                Ok(light[self.next_slot(&light) % light.len()].clone())
            }
        }
    }

    /// Atomically advance the rotation cursor for this candidate list.
    fn next_slot(&self, candidates: &[String]) -> usize {
        let key = candidates.join(",");
        let mut cursors = self.cursors.lock();
        let slot = cursors.entry(key).or_insert(0);
        let current = *slot;
        *slot = slot.wrapping_add(1);
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcor_xacc::backends::QppAccelerator;

    fn ctx() -> ThreadContext {
        ThreadContext {
            qpu: Arc::new(QppAccelerator::new(1)),
            resolved_backend: "qpp".to_string(),
            exec: ExecOptions::default(),
            init: InitOptions::default(),
        }
    }

    #[test]
    fn per_thread_registration_is_isolated() {
        let mgr = QPUManager::instance();
        mgr.set_qpu(ctx());
        assert!(mgr.get_qpu().is_some());

        // A different thread sees no registration until it sets one.
        let handle = std::thread::spawn(|| QPUManager::instance().get_qpu().is_some());
        assert!(!handle.join().unwrap());
        mgr.clear_current();
    }

    #[test]
    fn threads_get_their_own_instances() {
        let mut handles = Vec::new();
        for _ in 0..4 {
            handles.push(std::thread::spawn(|| {
                let mgr = QPUManager::instance();
                mgr.set_qpu(ctx());
                let mine = mgr.get_qpu().unwrap();
                mgr.clear_current();
                // Return the live Arc: address comparison is only meaningful
                // while every instance is still allocated (a freed address
                // can be reused by a later thread's allocation).
                mine.qpu
            }));
        }
        let instances: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let mut unique: Vec<usize> =
            instances.iter().map(|qpu| Arc::as_ptr(qpu) as *const () as usize).collect();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), instances.len(), "each thread must own a distinct accelerator");
    }

    #[test]
    fn update_exec_requires_registration() {
        let mgr = QPUManager::instance();
        mgr.clear_current();
        assert!(!mgr.update_exec(ExecOptions::with_shots(1)));
        mgr.set_qpu(ctx());
        assert!(mgr.update_exec(ExecOptions::with_shots(5)));
        assert_eq!(mgr.get_qpu().unwrap().exec.shots, 5);
        mgr.clear_current();
    }

    #[test]
    fn exited_thread_registration_is_evicted() {
        let mgr = QPUManager::instance();
        // The thread registers but never calls clear_current — the TLS
        // eviction guard must reap the entry at thread exit.
        let id = std::thread::spawn(|| {
            QPUManager::instance().set_qpu(ctx());
            assert!(QPUManager::instance().get_qpu().is_some());
            std::thread::current().id()
        })
        .join()
        .unwrap();
        assert!(!mgr.thread_is_registered(id), "exited thread must not leak a ThreadContext");
    }

    #[test]
    fn clear_then_exit_does_not_double_remove() {
        // clear_current followed by thread exit: the guard's drop is a
        // harmless no-op, and a later thread re-registering is unaffected.
        std::thread::spawn(|| {
            let mgr = QPUManager::instance();
            mgr.set_qpu(ctx());
            mgr.clear_current();
            assert!(mgr.get_qpu().is_none());
        })
        .join()
        .unwrap();
    }

    #[test]
    fn pinned_routing_honors_requested_name() {
        let mgr = QPUManager::instance();
        assert_eq!(mgr.route(Some(&RoutingPolicy::Pinned), "qpp-noisy").unwrap(), "qpp-noisy");
    }

    #[test]
    fn round_robin_rotates_over_backends() {
        let mgr = QPUManager::instance();
        let policy = RoutingPolicy::RoundRobin(vec!["a".into(), "b".into()]);
        let mut seen = std::collections::HashMap::new();
        for _ in 0..10 {
            *seen.entry(mgr.route(Some(&policy), "qpp").unwrap()).or_insert(0usize) += 1;
        }
        // The cursor is per candidate list and this list is unique to this
        // test, so the 10 draws are contiguous: exact 5/5 balance.
        assert_eq!(seen.get("a").copied().unwrap_or(0), 5, "{seen:?}");
        assert_eq!(seen.get("b").copied().unwrap_or(0), 5, "{seen:?}");
    }

    #[test]
    fn distinct_round_robin_lists_rotate_independently() {
        // Interleaved draws from two different lists must each alternate
        // over their own entries (no cross-list phase locking).
        let mgr = QPUManager::instance();
        let pa = RoutingPolicy::RoundRobin(vec!["a1".into(), "a2".into()]);
        let pb = RoutingPolicy::RoundRobin(vec!["b1".into(), "b2".into()]);
        let mut a_names = Vec::new();
        let mut b_names = Vec::new();
        for _ in 0..2 {
            a_names.push(mgr.route(Some(&pa), "qpp").unwrap());
            b_names.push(mgr.route(Some(&pb), "qpp").unwrap());
        }
        assert_eq!(a_names, vec!["a1".to_string(), "a2".to_string()]);
        assert_eq!(b_names, vec!["b1".to_string(), "b2".to_string()]);
    }

    #[test]
    fn round_robin_empty_list_errors() {
        let mgr = QPUManager::instance();
        assert!(matches!(
            mgr.route(Some(&RoutingPolicy::RoundRobin(Vec::new())), "qpp"),
            Err(QcorError::Routing(_))
        ));
    }

    #[test]
    fn capability_routing_resolves_registered_backend() {
        let mgr = QPUManager::instance();
        assert_eq!(
            mgr.route(Some(&RoutingPolicy::Capability(BackendCapability::Noisy)), "qpp").unwrap(),
            "qpp-noisy"
        );
        assert_eq!(
            mgr.route(Some(&RoutingPolicy::Capability(BackendCapability::Density)), "qpp").unwrap(),
            "qpp-density"
        );
    }

    #[test]
    fn capability_routing_avoids_loaded_backends() {
        // Two cloneable Remote-capability services; pinning live load on
        // one must steer every placement to the other until the load
        // drains. (Uses the Remote class so the Noisy/Density exact-match
        // assertions elsewhere in this process stay undisturbed.)
        let reg = registry::global();
        reg.register_factory_with_capability("remote-b", BackendCapability::Remote, |params| {
            Ok(Arc::new(qcor_xacc::backends::RemoteAccelerator::from_params(params)) as Arc<dyn Accelerator>)
        });
        let mgr = QPUManager::instance();
        let policy = RoutingPolicy::Capability(BackendCapability::Remote);
        let busy = reg.track_load("remote");
        for _ in 0..6 {
            assert_eq!(mgr.route(Some(&policy), "qpp").unwrap(), "remote-b");
        }
        drop(busy);
        // Loads equal again: the rotation reaches both candidates.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            seen.insert(mgr.route(Some(&policy), "qpp").unwrap());
        }
        assert!(seen.contains("remote") && seen.contains("remote-b"), "{seen:?}");
    }

    #[test]
    fn global_policy_roundtrips_and_defaults_to_pinned() {
        let mgr = QPUManager::instance();
        assert_eq!(mgr.route(None, "qpp").unwrap(), "qpp");
        // Use a single-entry rotation that resolves to the default backend
        // anyway, so a concurrently-running test that initializes during
        // this window is routed identically to Pinned.
        mgr.set_routing_policy(RoutingPolicy::RoundRobin(vec!["qpp".into()]));
        assert_eq!(mgr.routing_policy(), RoutingPolicy::RoundRobin(vec!["qpp".into()]));
        assert_eq!(mgr.route(None, "ignored-under-round-robin").unwrap(), "qpp");
        mgr.set_routing_policy(RoutingPolicy::Pinned);
    }
}
