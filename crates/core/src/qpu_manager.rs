//! The `QPUManager` singleton (paper Listing 8): a map from thread id to
//! that thread's accelerator instance and execution options.

use crate::runtime::InitOptions;
use parking_lot::Mutex;
use qcor_xacc::{Accelerator, ExecOptions};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::thread::ThreadId;

/// Everything the runtime needs to service kernel invocations from one
/// thread: its accelerator instance, its execution options, and the
/// initialize-time options (so [`crate::spawn`] can replay them on child
/// threads).
#[derive(Clone)]
pub struct ThreadContext {
    /// This thread's accelerator instance.
    pub qpu: Arc<dyn Accelerator>,
    /// Shots/seed used by `execute`.
    pub exec: ExecOptions,
    /// The options this context was initialized from.
    pub init: InitOptions,
}

/// Singleton mapping `thread::id -> Accelerator` (paper Listing 8).
pub struct QPUManager {
    qpu_map: Mutex<HashMap<ThreadId, ThreadContext>>,
}

static INSTANCE: OnceLock<QPUManager> = OnceLock::new();

impl QPUManager {
    /// `QPUManager::getInstance()` — the singleton accessor.
    pub fn instance() -> &'static QPUManager {
        INSTANCE.get_or_init(|| QPUManager { qpu_map: Mutex::new(HashMap::new()) })
    }

    /// Register the calling thread's accelerator (the setter of
    /// Listing 8, called by `quantum::initialize()`).
    pub fn set_qpu(&self, ctx: ThreadContext) {
        self.qpu_map.lock().insert(std::thread::current().id(), ctx);
    }

    /// The calling thread's context, if it has initialized.
    pub fn get_qpu(&self) -> Option<ThreadContext> {
        self.qpu_map.lock().get(&std::thread::current().id()).cloned()
    }

    /// Update only the execution options of the calling thread.
    pub fn update_exec(&self, exec: ExecOptions) -> bool {
        let mut map = self.qpu_map.lock();
        match map.get_mut(&std::thread::current().id()) {
            Some(ctx) => {
                ctx.exec = exec;
                true
            }
            None => false,
        }
    }

    /// Remove the calling thread's registration.
    pub fn clear_current(&self) {
        self.qpu_map.lock().remove(&std::thread::current().id());
    }

    /// Number of threads currently registered.
    pub fn registered_threads(&self) -> usize {
        self.qpu_map.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcor_xacc::backends::QppAccelerator;

    fn ctx() -> ThreadContext {
        ThreadContext {
            qpu: Arc::new(QppAccelerator::new(1)),
            exec: ExecOptions::default(),
            init: InitOptions::default(),
        }
    }

    #[test]
    fn per_thread_registration_is_isolated() {
        let mgr = QPUManager::instance();
        mgr.set_qpu(ctx());
        assert!(mgr.get_qpu().is_some());

        // A different thread sees no registration until it sets one.
        let handle = std::thread::spawn(|| QPUManager::instance().get_qpu().is_some());
        assert!(!handle.join().unwrap());
        mgr.clear_current();
    }

    #[test]
    fn threads_get_their_own_instances() {
        let mut handles = Vec::new();
        for _ in 0..4 {
            handles.push(std::thread::spawn(|| {
                let mgr = QPUManager::instance();
                mgr.set_qpu(ctx());
                let mine = mgr.get_qpu().unwrap();
                mgr.clear_current();
                // Return the live Arc: address comparison is only meaningful
                // while every instance is still allocated (a freed address
                // can be reused by a later thread's allocation).
                mine.qpu
            }));
        }
        let instances: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let mut unique: Vec<usize> =
            instances.iter().map(|qpu| Arc::as_ptr(qpu) as *const () as usize).collect();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), instances.len(), "each thread must own a distinct accelerator");
    }

    #[test]
    fn update_exec_requires_registration() {
        let mgr = QPUManager::instance();
        mgr.clear_current();
        assert!(!mgr.update_exec(ExecOptions::with_shots(1)));
        mgr.set_qpu(ctx());
        assert!(mgr.update_exec(ExecOptions::with_shots(5)));
        assert_eq!(mgr.get_qpu().unwrap().exec.shots, 5);
        mgr.clear_current();
    }
}
