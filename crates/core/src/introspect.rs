//! Live introspection for the execution service: a structured snapshot
//! ([`ServiceIntrospection`]) with text and JSON renderings, plus a tiny
//! env-gated HTTP debug listener ([`DebugServer`]) that serves the global
//! service's snapshot.
//!
//! The snapshot is produced by [`ExecutionService::introspect`]: the
//! [`ServiceStats`] totals and the per-tenant rows are taken under one
//! lock acquisition, so every per-tenant counter column sums exactly to
//! its total and the accounting identity
//! `submitted == completed + running + queued + shed + cancelled + expired`
//! holds for the totals **and** for every tenant row.
//!
//! The JSON is hand-rolled (this workspace carries no serde); the format
//! is documented in the README and kept deliberately flat:
//!
//! ```json
//! {
//!   "service": {"capacity": 256, "priority_capacity": 256, "policy": "block",
//!               "permit_budget": 3, "pool_threads": 4,
//!               "dispatcher_executes": false},
//!   "stats": {"submitted": 10, "completed": 10, ...},
//!   "tenants": [{"tenant": "default", "weight": 1.0, ...}],
//!   "backends": [{"backend": "qpp", "inflight": 0}]
//! }
//! ```
//!
//! [`ExecutionService::introspect`]: crate::ExecutionService::introspect
//! [`ServiceStats`]: crate::ServiceStats

use crate::exec_service::{BackpressurePolicy, ServiceStats};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One tenant's gauges inside a [`ServiceIntrospection`] snapshot. The
/// counters satisfy the same accounting identity as
/// [`ServiceStats`](crate::ServiceStats), with `queued()` playing the role
/// of `queue_len`.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStats {
    /// The tenant's name (session key).
    pub tenant: String,
    /// Its fair-queuing weight.
    pub weight: f64,
    /// Tasks admitted under this tenant.
    pub submitted: usize,
    /// Tasks that ran to completion.
    pub completed: usize,
    /// Tasks currently executing.
    pub running: usize,
    /// Tasks shed under backpressure.
    pub shed: usize,
    /// Tasks cancelled while queued.
    pub cancelled: usize,
    /// Tasks evicted past their deadline.
    pub expired: usize,
    /// Tasks queued in the high lane right now.
    pub high_queued: usize,
    /// Tasks queued in the normal lane right now.
    pub normal_queued: usize,
}

impl TenantStats {
    /// Total queued tasks (both lanes) for this tenant.
    pub fn queued(&self) -> usize {
        self.high_queued + self.normal_queued
    }
}

/// A consistent, self-describing snapshot of an execution service: its
/// configuration surface, [`ServiceStats`](crate::ServiceStats),
/// per-tenant gauges and the live per-backend in-flight loads. Produced by
/// [`ExecutionService::introspect`](crate::ExecutionService::introspect);
/// rendered by [`to_text`](ServiceIntrospection::to_text) /
/// [`to_json`](ServiceIntrospection::to_json) and served by
/// [`DebugServer`].
#[derive(Debug, Clone)]
pub struct ServiceIntrospection {
    /// The counter snapshot (one lock acquisition with `tenants`).
    pub stats: ServiceStats,
    /// Queue high-water mark.
    pub capacity: usize,
    /// High-lane high-water mark.
    pub priority_capacity: usize,
    /// Configured backpressure policy.
    pub policy: BackpressurePolicy,
    /// Executor-permit budget.
    pub permit_budget: usize,
    /// Backing pool team size.
    pub pool_threads: usize,
    /// Whether the dispatcher runs tasks itself when permits are busy.
    pub dispatcher_executes: bool,
    /// Per-tenant gauges, sorted by tenant name.
    pub tenants: Vec<TenantStats>,
    /// `(backend, in-flight executions)` from the service registry,
    /// sorted by backend name.
    pub backends: Vec<(String, usize)>,
}

fn policy_token(policy: BackpressurePolicy) -> &'static str {
    match policy {
        BackpressurePolicy::Block => "block",
        BackpressurePolicy::Reject => "reject",
        BackpressurePolicy::ShedOldest => "shed-oldest",
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl ServiceIntrospection {
    /// Render the snapshot as a flat JSON object (see the module docs for
    /// the shape). Hand-rolled — stable key order, no external deps.
    pub fn to_json(&self) -> String {
        let s = &self.stats;
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "{{\"service\":{{\"capacity\":{},\"priority_capacity\":{},\"policy\":\"{}\",\
             \"permit_budget\":{},\"pool_threads\":{},\"dispatcher_executes\":{}}},",
            self.capacity,
            self.priority_capacity,
            policy_token(self.policy),
            self.permit_budget,
            self.pool_threads,
            self.dispatcher_executes,
        ));
        out.push_str(&format!(
            "\"stats\":{{\"submitted\":{},\"completed\":{},\"rejected\":{},\"shed\":{},\
             \"cancelled\":{},\"expired\":{},\"running\":{},\"queue_len\":{},\
             \"high_queue_len\":{},\"normal_queue_len\":{},\"peak_queue_len\":{}}},",
            s.submitted,
            s.completed,
            s.rejected,
            s.shed,
            s.cancelled,
            s.expired,
            s.running,
            s.queue_len,
            s.high_queue_len,
            s.normal_queue_len,
            s.peak_queue_len,
        ));
        out.push_str("\"tenants\":[");
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"tenant\":\"{}\",\"weight\":{:?},\"submitted\":{},\"completed\":{},\
                 \"running\":{},\"shed\":{},\"cancelled\":{},\"expired\":{},\
                 \"high_queued\":{},\"normal_queued\":{}}}",
                json_escape(&t.tenant),
                t.weight,
                t.submitted,
                t.completed,
                t.running,
                t.shed,
                t.cancelled,
                t.expired,
                t.high_queued,
                t.normal_queued,
            ));
        }
        out.push_str("],\"backends\":[");
        for (i, (name, inflight)) in self.backends.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"backend\":\"{}\",\"inflight\":{}}}", json_escape(name), inflight));
        }
        out.push_str("]}");
        out
    }

    /// Render the snapshot as human-oriented text (the `/text` route of
    /// the debug endpoint).
    pub fn to_text(&self) -> String {
        let s = &self.stats;
        let mut out = String::with_capacity(1024);
        out.push_str("execution service\n");
        out.push_str(&format!(
            "  capacity={} priority_capacity={} policy={} permit_budget={} pool_threads={} \
             dispatcher_executes={}\n",
            self.capacity,
            self.priority_capacity,
            policy_token(self.policy),
            self.permit_budget,
            self.pool_threads,
            self.dispatcher_executes,
        ));
        out.push_str(&format!(
            "  submitted={} completed={} rejected={} shed={} cancelled={} expired={}\n",
            s.submitted, s.completed, s.rejected, s.shed, s.cancelled, s.expired
        ));
        out.push_str(&format!(
            "  running={} queued={} (high={} normal={}) peak={}\n",
            s.running, s.queue_len, s.high_queue_len, s.normal_queue_len, s.peak_queue_len
        ));
        out.push_str("tenants\n");
        for t in &self.tenants {
            out.push_str(&format!(
                "  {} weight={:?} submitted={} completed={} running={} shed={} cancelled={} \
                 expired={} queued={} (high={} normal={})\n",
                t.tenant,
                t.weight,
                t.submitted,
                t.completed,
                t.running,
                t.shed,
                t.cancelled,
                t.expired,
                t.queued(),
                t.high_queued,
                t.normal_queued,
            ));
        }
        out.push_str("backends\n");
        for (name, inflight) in &self.backends {
            out.push_str(&format!("  {name} inflight={inflight}\n"));
        }
        out
    }
}

/// A minimal HTTP/1.0 debug listener serving live
/// [`ServiceIntrospection`] snapshots. Routes: `/`, `/stats`,
/// `/stats.json` → JSON; `/text`, `/stats.txt` → plain text; anything
/// else → 404. One request per connection, no keep-alive — this is a
/// debugging peephole, not a web server. Normally bound by setting
/// `QCOR_DEBUG_ENDPOINT=<addr>` before the global service's first use;
/// off by default.
pub struct DebugServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for DebugServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DebugServer").field("addr", &self.addr).finish()
    }
}

impl DebugServer {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and serve snapshots produced by
    /// `provider` until the server is dropped.
    pub fn start<A, F>(addr: A, provider: F) -> std::io::Result<DebugServer>
    where
        A: ToSocketAddrs,
        F: Fn() -> ServiceIntrospection + Send + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new().name("qcor-debug".to_string()).spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                // Serve inline: a debugging endpoint needs no
                // concurrency, and a slow reader is bounded by the
                // stream timeouts below.
                let _ = handle_conn(stream, &provider);
            }
        })?;
        Ok(DebugServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for DebugServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection. An
        // unspecified bind address (0.0.0.0 / ::) is not connectable;
        // loopback on the same port is.
        let target = if self.addr.ip().is_unspecified() {
            SocketAddr::new(std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST), self.addr.port())
        } else {
            self.addr
        };
        let _ = TcpStream::connect_timeout(&target, Duration::from_millis(200));
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn handle_conn<F>(stream: TcpStream, provider: &F) -> std::io::Result<()>
where
    F: Fn() -> ServiceIntrospection,
{
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let path = request_line.split_whitespace().nth(1).unwrap_or("/").to_string();
    let mut stream = reader.into_inner();
    let (status, content_type, body) = match path.as_str() {
        "/" | "/stats" | "/stats.json" => ("200 OK", "application/json", provider().to_json()),
        "/text" | "/stats.txt" => ("200 OK", "text/plain; charset=utf-8", provider().to_text()),
        _ => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_string()),
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn sample() -> ServiceIntrospection {
        ServiceIntrospection {
            stats: ServiceStats {
                submitted: 7,
                completed: 4,
                rejected: 1,
                shed: 1,
                cancelled: 0,
                expired: 1,
                peak_queue_len: 3,
                running: 1,
                queue_len: 0,
                high_queue_len: 0,
                normal_queue_len: 0,
            },
            capacity: 8,
            priority_capacity: 4,
            policy: BackpressurePolicy::ShedOldest,
            permit_budget: 3,
            pool_threads: 4,
            dispatcher_executes: true,
            tenants: vec![TenantStats {
                tenant: "alice \"a\"".to_string(),
                weight: 2.5,
                submitted: 7,
                completed: 4,
                running: 1,
                shed: 1,
                cancelled: 0,
                expired: 1,
                high_queued: 0,
                normal_queued: 0,
            }],
            backends: vec![("qpp".to_string(), 2)],
        }
    }

    #[test]
    fn json_rendering_is_wellformed_and_escaped() {
        let json = sample().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"policy\":\"shed-oldest\""));
        assert!(json.contains("\"dispatcher_executes\":true"));
        assert!(json.contains("\"tenant\":\"alice \\\"a\\\"\""), "quotes must be escaped: {json}");
        assert!(json.contains("\"weight\":2.5"));
        assert!(json.contains("{\"backend\":\"qpp\",\"inflight\":2}"));
        // Balanced braces/brackets outside strings is a cheap sanity
        // proxy for well-formedness without a JSON parser in-tree.
        let (mut depth, mut in_str, mut esc) = (0i32, false, false);
        for c in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn text_rendering_mentions_every_surface() {
        let text = sample().to_text();
        for needle in ["capacity=8", "policy=shed-oldest", "alice", "weight=2.5", "qpp inflight=2"] {
            assert!(text.contains(needle), "`{needle}` missing from:\n{text}");
        }
    }

    #[test]
    fn debug_server_serves_json_text_and_404() {
        let server = DebugServer::start("127.0.0.1:0", sample).expect("bind loopback");
        let addr = server.local_addr();
        let fetch = |path: &str| -> (String, String) {
            let mut conn = TcpStream::connect(addr).expect("connect");
            conn.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes()).unwrap();
            let mut response = String::new();
            conn.read_to_string(&mut response).unwrap();
            let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
            (head.to_string(), body.to_string())
        };
        let (head, body) = fetch("/stats");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert_eq!(body, sample().to_json());
        let (head, body) = fetch("/text");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert_eq!(body, sample().to_text());
        let (head, _) = fetch("/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "{head}");
        drop(server); // Drop joins the listener thread without hanging.
    }
}
