//! The asynchronous kernel-execution service: a bounded two-lane task
//! queue with configurable backpressure, drained onto a shared
//! [`ThreadPool`].
//!
//! [`crate::async_task`] (paper Listing 5) originally spawned one OS
//! thread per task — unbounded under submission pressure. The service
//! replaces that with the shape the ROADMAP's north star asks for:
//!
//! * **Bounded queue** — submissions land in a FIFO queue with a
//!   high-water mark (`capacity`). Once full, the configured
//!   [`BackpressurePolicy`] decides: `Block` the submitter, `Reject` the
//!   submission with [`QcorError::QueueFull`], or `ShedOldest` — admit the
//!   new task and resolve the oldest **shed-admitted** queued task's
//!   future as shed ([`QcorError::TaskShed`]), never dropping work
//!   silently. Block-admitted tasks (`spawn`/`async_task`) are never
//!   shed — their futures stay infallible; if only such tasks are queued,
//!   the incoming shed-policy submission is itself shed instead.
//! * **Priority lanes** — the queue has a `High` and a `Normal` lane
//!   ([`TaskPriority`]). The dispatcher drains `High` first, FIFO within
//!   each lane; shed-oldest victimizes the `Normal` lane first. The high
//!   lane has its own high-water mark (`priority_capacity`,
//!   `QCOR_QUEUE_PRIORITY_CAPACITY`) so latency-sensitive work cannot
//!   monopolize the whole queue budget.
//! * **Fixed thread budget** — a dispatcher thread ships queued tasks to
//!   the workers of one shared [`ThreadPool`]
//!   ([`ThreadPool::spawn_detached`]), one permit per worker, so no matter
//!   how many submissions are in flight, at most *pool-size* threads ever
//!   execute tasks. A team of one degenerates to the dispatcher draining
//!   the queue serially. The permit budget is computed **once**
//!   ([`Inner::max_permits`]) — construction, `drain` and the dispatcher
//!   all read the same field, so the invariant cannot drift.
//! * **Work-conserving join** — [`crate::TaskFuture::wait`] called from
//!   inside an executing task of the *same* service does not park while
//!   holding its permit: it **helps drain the queue**, popping and running
//!   queued tasks under its own permit and re-checking its future between
//!   tasks. It parks only once the queue is empty — at which point the
//!   awaited task is provably running on another permit (or already
//!   resolved), so the park always terminates. Sibling joins inside tasks
//!   therefore can never exhaust the permit budget, no matter how deep
//!   the chains pile up (the regression test submits `permits + 2` tasks
//!   that each join the next one's future). Cross-*service* joins still
//!   park normally under the other service's policy and stats. The one
//!   remaining way to stall is a genuine join **cycle** (task A waiting
//!   on B's future while B waits on A's, futures exchanged through shared
//!   state) — undefined for any join primitive, exactly like two OS
//!   threads `join`ing each other.
//! * **Cancellation and deadlines** — [`crate::TaskFuture::cancel`]
//!   aborts a still-queued task (its future resolves as
//!   [`QcorError::TaskCancelled`]); once dispatched, the task runs to
//!   completion and `cancel` reports `false`. Dropping a future stays
//!   detached (fire-and-forget). [`ExecutionService::submit_with_deadline`]
//!   attaches a deadline that is checked **lazily at dispatch time**: an
//!   expired task never runs — its future resolves through the existing
//!   shed path ([`QcorError::TaskShed`]) and the `expired` counter ticks.
//! * **Per-task quantum context** — each task replays the submitting
//!   thread's `InitOptions` on its worker (fresh accelerator instance via
//!   the cloneable registry, exactly like the old per-thread wrapper) and
//!   clears the `QPUManager` registration afterwards, so worker reuse
//!   never leaks state between tasks.
//!
//! Nested submissions to the **same service** from inside a running task
//! enqueue normally (counted, prioritized and sheddable like any other
//! submission) — the work-conserving join is what makes that safe. The
//! one exception keeps `Block` non-blocking for permit holders: a nested
//! `Block` submission against a full queue runs **inline** on the parent's
//! permit instead of parking in `space_ready` (a submitter that holds a
//! permit must never wait for queue space that only permit holders can
//! free). Submissions to a *different* service enqueue under that
//! service's own policy and stats.
//!
//! All [`ServiceStats`] counters live under the queue lock and are
//! snapshotted with a single acquisition, so a snapshot is always
//! internally consistent:
//! `submitted == completed + running + queue_len + shed + cancelled + expired`
//! holds for **every** snapshot (`rejected` counts submissions that were
//! never admitted and sits outside the identity).

use crate::qpu_manager::QPUManager;
use crate::runtime::{initialize, InitOptions};
use crate::threading::{TaskFuture, TaskOutcome};
use crate::QcorError;
use crossbeam::channel::bounded;
use parking_lot::{Condvar, Mutex};
use qcor_pool::{num_threads_from_env, PoolBuilder, ThreadPool};
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What happens to a submission once the queue is at its high-water mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Block the submitting thread until the queue has room (the default —
    /// submission pressure propagates to the producers). Inside a task of
    /// the same service the submission runs inline instead of blocking
    /// (see the module docs).
    Block,
    /// Fail the submission with [`QcorError::QueueFull`].
    Reject,
    /// Admit the new task and shed the oldest **shed-admitted** queued
    /// task: its future resolves to [`QcorError::TaskShed`] instead of a
    /// value. Block-admitted tasks (`spawn`) are never shed; if none of
    /// the queued tasks is sheddable, the incoming submission itself is
    /// shed. The `Normal` lane is victimized before the `High` lane.
    ShedOldest,
}

/// Which lane of the kernel queue a submission joins. The dispatcher
/// drains `High` completely before touching `Normal`; order within a lane
/// is FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TaskPriority {
    /// The default lane.
    #[default]
    Normal,
    /// Dispatched before all `Normal` tasks; bounded separately by
    /// `priority_capacity` and shed only when no `Normal` victim exists.
    High,
}

/// Configuration for an [`ExecutionService`].
#[derive(Debug, Clone)]
pub struct ExecServiceConfig {
    /// Queue high-water mark across both lanes (≥ 1).
    pub capacity: usize,
    /// High-lane high-water mark. `None` (the default) means the high
    /// lane is bounded only by the total `capacity`; an explicit value is
    /// clamped to `capacity` at construction. A high submission is over
    /// capacity when either its lane or the total is full.
    pub priority_capacity: Option<usize>,
    /// Total pool team size, including the dispatcher (≥ 1): at most
    /// `threads` OS threads ever execute tasks.
    pub threads: usize,
    /// Policy applied by [`ExecutionService::submit`] when the queue is
    /// full.
    pub policy: BackpressurePolicy,
}

impl Default for ExecServiceConfig {
    fn default() -> Self {
        ExecServiceConfig {
            capacity: 256,
            priority_capacity: None,
            threads: num_threads_from_env().max(4),
            policy: BackpressurePolicy::Block,
        }
    }
}

impl ExecServiceConfig {
    /// Builder-style capacity.
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Builder-style high-lane capacity (clamped to the total capacity at
    /// construction; unset = bounded by the total capacity alone).
    pub fn priority_capacity(mut self, capacity: usize) -> Self {
        self.priority_capacity = Some(capacity.max(1));
        self
    }

    /// The high-lane high-water mark this configuration resolves to: the
    /// explicit `priority_capacity` clamped to `capacity`, or `capacity`
    /// itself when unset. This is the value the service enforces and
    /// reports.
    pub fn effective_priority_capacity(&self) -> usize {
        self.priority_capacity.unwrap_or(self.capacity).clamp(1, self.capacity.max(1))
    }

    /// Builder-style team size.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Builder-style backpressure policy.
    pub fn policy(mut self, policy: BackpressurePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The global service's configuration: `QCOR_QUEUE_CAPACITY`,
    /// `QCOR_QUEUE_PRIORITY_CAPACITY` (high-lane high-water mark, default:
    /// the total capacity), `QCOR_SERVICE_THREADS` (default:
    /// `QCOR_NUM_THREADS` with a floor of 4, so task-level latency overlap
    /// survives 1-CPU hosts — the §IV-A cloud scenario needs ≥ 2
    /// concurrent tasks even without cores) and `QCOR_QUEUE_POLICY`
    /// (`block` | `reject` | `shed-oldest`).
    pub fn from_env() -> Self {
        let mut cfg = ExecServiceConfig::default();
        if let Some(cap) = std::env::var("QCOR_QUEUE_CAPACITY").ok().and_then(|v| v.parse::<usize>().ok()) {
            cfg.capacity = cap.max(1);
        }
        if let Some(cap) =
            std::env::var("QCOR_QUEUE_PRIORITY_CAPACITY").ok().and_then(|v| v.parse::<usize>().ok())
        {
            cfg.priority_capacity = Some(cap.max(1));
        }
        if let Some(threads) =
            std::env::var("QCOR_SERVICE_THREADS").ok().and_then(|v| v.parse::<usize>().ok())
        {
            cfg.threads = threads.max(1);
        }
        if let Ok(policy) = std::env::var("QCOR_QUEUE_POLICY") {
            cfg.policy = match policy.as_str() {
                "block" => BackpressurePolicy::Block,
                "reject" => BackpressurePolicy::Reject,
                "shed-oldest" => BackpressurePolicy::ShedOldest,
                // Loud failure beats silently blocking under a policy the
                // operator didn't ask for (same stance as qpp's unknown
                // `granularity` values).
                other => panic!(
                    "QCOR_QUEUE_POLICY=`{other}` is not a backpressure policy \
                     (expected block | reject | shed-oldest)"
                ),
            };
        }
        cfg
    }
}

/// Snapshot of a service's counters, taken under a single lock
/// acquisition so the monotone counters and the gauges (`running`,
/// `queue_len`, `high_queue_len`, `normal_queue_len`) are mutually
/// consistent: `submitted == completed + running + queue_len + shed +
/// cancelled + expired` holds for every snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Tasks admitted to the queue.
    pub submitted: usize,
    /// Tasks that ran to completion (including panicked tasks).
    pub completed: usize,
    /// Submissions refused under [`BackpressurePolicy::Reject`] (never
    /// admitted; outside the accounting identity).
    pub rejected: usize,
    /// Queued tasks dropped under [`BackpressurePolicy::ShedOldest`].
    pub shed: usize,
    /// Queued tasks aborted by [`crate::TaskFuture::cancel`].
    pub cancelled: usize,
    /// Queued tasks whose deadline passed before dispatch (resolved as
    /// shed, never run).
    pub expired: usize,
    /// Highest total queue occupancy observed.
    pub peak_queue_len: usize,
    /// Tasks currently executing on the pool.
    pub running: usize,
    /// Tasks currently queued (both lanes).
    pub queue_len: usize,
    /// Tasks currently queued in the high-priority lane.
    pub high_queue_len: usize,
    /// Tasks currently queued in the normal lane.
    pub normal_queue_len: usize,
}

struct QueuedTask {
    /// Unique per-service ticket, the handle [`crate::TaskFuture::cancel`]
    /// uses to find (and remove) this task while it is still queued.
    ticket: u64,
    run: Box<dyn FnOnce() + Send>,
    /// Resolves the task's future as [`TaskOutcome::Shed`].
    shed: Box<dyn FnOnce() + Send>,
    /// Resolves the task's future as [`TaskOutcome::Cancelled`].
    cancel: Box<dyn FnOnce() + Send>,
    /// Only submissions admitted under [`BackpressurePolicy::ShedOldest`]
    /// opt into being shed; Block-admitted tasks (`spawn`/`async_task`)
    /// keep their infallible-future contract (cancel and deadlines are
    /// explicit caller choices and exempt from that contract).
    sheddable: bool,
    /// Checked lazily at dispatch: a task popped after its deadline never
    /// runs and resolves through the shed path.
    deadline: Option<Instant>,
}

struct QueueState {
    /// High-priority lane, drained before `normal`. FIFO within the lane.
    high: VecDeque<QueuedTask>,
    /// Default lane.
    normal: VecDeque<QueuedTask>,
    /// Free executor slots (pool workers; 1 for a team-of-one service).
    permits: usize,
    shutdown: bool,
    // --- counters (see ServiceStats) -----------------------------------
    submitted: usize,
    completed: usize,
    rejected: usize,
    shed: usize,
    cancelled: usize,
    expired: usize,
    peak_queue: usize,
    running: usize,
}

impl QueueState {
    fn queued(&self) -> usize {
        self.high.len() + self.normal.len()
    }

    /// Pop the next task in dispatch order (high lane first, FIFO within
    /// a lane), skimming off tasks whose deadline has already passed.
    /// Expired tasks are returned separately so the caller can resolve
    /// their futures outside the lock; their counters are updated here.
    fn pop_ready(&mut self) -> (Vec<QueuedTask>, Option<QueuedTask>) {
        let mut expired = Vec::new();
        let now = Instant::now();
        loop {
            let task = match self.high.pop_front() {
                Some(task) => Some(task),
                None => self.normal.pop_front(),
            };
            match task {
                Some(task) if task.deadline.is_some_and(|d| d <= now) => {
                    self.expired += 1;
                    expired.push(task);
                }
                other => return (expired, other),
            }
        }
    }

    /// Remove the queued task with `ticket`, if it is still queued.
    fn remove_ticket(&mut self, ticket: u64) -> Option<QueuedTask> {
        for lane in [&mut self.high, &mut self.normal] {
            if let Some(index) = lane.iter().position(|t| t.ticket == ticket) {
                return lane.remove(index);
            }
        }
        None
    }
}

pub(crate) struct Inner {
    /// Unique service id for same-service nested-submission detection.
    id: usize,
    state: Mutex<QueueState>,
    /// Signals the dispatcher: task arrived / permit freed / shutdown.
    task_ready: Condvar,
    /// Signals blocked submitters: queue space freed / shutdown.
    space_ready: Condvar,
    capacity: usize,
    priority_capacity: usize,
    policy: BackpressurePolicy,
    /// The permit budget (`pool threads − dispatcher`, floor 1), computed
    /// once at construction. `drain`, the dispatcher shutdown wait and
    /// the tests all read this single source of truth — independently
    /// recomputing it in several places is how a drift deadlocks `drain`.
    max_permits: usize,
    /// Ticket source for [`QueuedTask::ticket`].
    next_ticket: AtomicUsize,
    /// [`ThreadPool::id`] of the backing pool — the work-conserving join
    /// asserts that helping only ever happens on threads that hold one of
    /// this service's executor slots (a pool worker, or the dispatcher /
    /// an inline frame, which report worker-pool id 0).
    pool_id: usize,
}

thread_local! {
    /// Id of the service whose task the current thread is executing
    /// (0 = none). `TaskFuture::wait` uses it to decide whether it holds
    /// one of the service's permits and must help drain the queue instead
    /// of parking.
    static IN_SERVICE_TASK: Cell<usize> = const { Cell::new(0) };
}

static NEXT_SERVICE_ID: AtomicUsize = AtomicUsize::new(1);

/// The context a [`TaskFuture`] keeps about the service that owns its
/// task: enough to cancel the task while queued and to help drain the
/// queue when joined from inside a task of the same service. Weak so a
/// forgotten future never keeps a dropped service's queue alive.
pub(crate) struct TaskServiceCtx {
    service: Weak<Inner>,
    service_id: usize,
    ticket: u64,
}

impl TaskServiceCtx {
    /// Cancel the task if it is still queued. See [`TaskFuture::cancel`].
    pub(crate) fn cancel(&self) -> bool {
        let Some(inner) = self.service.upgrade() else { return false };
        let removed = {
            let mut st = inner.state.lock();
            let removed = st.remove_ticket(self.ticket);
            if removed.is_some() {
                st.cancelled += 1;
            }
            removed
        };
        match removed {
            Some(task) => {
                (task.cancel)();
                inner.space_ready.notify_all();
                // `drain` watches queue length through `task_ready`.
                inner.task_ready.notify_all();
                true
            }
            None => false,
        }
    }

    /// The work-conserving join: while `not_ready` holds and the calling
    /// thread is executing a task of this same service, pop queued tasks
    /// and run them under the caller's permit. Returns once the future is
    /// ready or the queue is empty — in the latter case the awaited task
    /// is not queued (it is running on another permit or already
    /// resolved), so parking afterwards always terminates.
    pub(crate) fn help_drain_while(&self, not_ready: impl Fn() -> bool) {
        if IN_SERVICE_TASK.with(|owner| owner.get()) != self.service_id {
            return;
        }
        let Some(inner) = self.service.upgrade() else { return };
        // The current-worker check: a thread executing one of this
        // service's tasks is either a worker of the service's own pool or
        // the dispatcher / an inline frame (worker-pool id 0). Helping
        // from anywhere else would run tasks outside the permit budget.
        let worker_of = qcor_pool::current_worker_pool_id();
        debug_assert!(
            worker_of == 0 || worker_of == inner.pool_id,
            "work-conserving join helping from a foreign pool worker"
        );
        let _ = worker_of;
        while not_ready() {
            let (expired, task) = {
                let mut st = inner.state.lock();
                let (expired, task) = st.pop_ready();
                if task.is_some() {
                    // Queue→running transition inside the pop critical
                    // section, so no snapshot sees the task in neither
                    // gauge. The task's closure retires the pair before
                    // resolving its future.
                    st.running += 1;
                }
                (expired, task)
            };
            let popped_any = !expired.is_empty() || task.is_some();
            resolve_expired(expired);
            let Some(task) = task else {
                if popped_any {
                    inner.space_ready.notify_all();
                    inner.task_ready.notify_all();
                }
                return;
            };
            inner.space_ready.notify_all();
            (task.run)();
            // `drain` and the dispatcher re-check queue state on this
            // signal; the helper freed queue space without moving permits.
            inner.task_ready.notify_all();
        }
    }
}

/// Resolve the futures of deadline-expired tasks (outside the queue lock —
/// the resolution sends on the result channels).
fn resolve_expired(expired: Vec<QueuedTask>) {
    for task in expired {
        (task.shed)();
    }
}

/// The async kernel-execution service. See the [module docs](self).
pub struct ExecutionService {
    inner: Arc<Inner>,
    pool: Arc<ThreadPool>,
    dispatcher: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ExecutionService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutionService")
            .field("capacity", &self.inner.capacity)
            .field("priority_capacity", &self.inner.priority_capacity)
            .field("policy", &self.inner.policy)
            .field("threads", &self.pool.num_threads())
            .finish()
    }
}

/// Options attached to one submission.
struct SubmitOptions {
    policy: BackpressurePolicy,
    priority: TaskPriority,
    deadline: Option<Instant>,
}

impl ExecutionService {
    /// Build a service with its own pool and dispatcher.
    pub fn new(config: ExecServiceConfig) -> Self {
        let pool = Arc::new(PoolBuilder::new().num_threads(config.threads.max(1)).name("qcor-svc").build());
        // The one place the permit budget is computed: every worker of the
        // pool is an executor slot; a team of one leaves the dispatcher
        // itself as the single (inline) executor.
        let max_permits = pool.num_threads().saturating_sub(1).max(1);
        let inner = Arc::new(Inner {
            id: NEXT_SERVICE_ID.fetch_add(1, Ordering::Relaxed),
            state: Mutex::new(QueueState {
                high: VecDeque::new(),
                normal: VecDeque::new(),
                permits: max_permits,
                shutdown: false,
                submitted: 0,
                completed: 0,
                rejected: 0,
                shed: 0,
                cancelled: 0,
                expired: 0,
                peak_queue: 0,
                running: 0,
            }),
            task_ready: Condvar::new(),
            space_ready: Condvar::new(),
            capacity: config.capacity.max(1),
            priority_capacity: config.effective_priority_capacity(),
            policy: config.policy,
            max_permits,
            next_ticket: AtomicUsize::new(1),
            pool_id: pool.id(),
        });
        let dispatcher = {
            let inner = Arc::clone(&inner);
            let pool = Arc::clone(&pool);
            std::thread::Builder::new()
                .name("qcor-svc-dispatch".to_string())
                .spawn(move || dispatcher_loop(inner, pool))
                .expect("failed to spawn the execution-service dispatcher")
        };
        ExecutionService { inner, pool, dispatcher: Some(dispatcher) }
    }

    /// The process-wide service backing [`crate::spawn`] /
    /// [`crate::async_task`], configured from the environment
    /// (see [`ExecServiceConfig::from_env`]).
    pub fn global() -> &'static ExecutionService {
        static GLOBAL: OnceLock<ExecutionService> = OnceLock::new();
        GLOBAL.get_or_init(|| ExecutionService::new(ExecServiceConfig::from_env()))
    }

    /// Submit `f` under the service's configured backpressure policy.
    ///
    /// The task inherits the calling thread's `InitOptions` (replayed on
    /// its executor for a fresh accelerator instance). Fails with
    /// [`QcorError::QueueFull`] under [`BackpressurePolicy::Reject`] when
    /// the queue is at capacity.
    pub fn submit<F, T>(&self, f: F) -> Result<TaskFuture<T>, QcorError>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        self.submit_with(
            SubmitOptions { policy: self.inner.policy, priority: TaskPriority::Normal, deadline: None },
            f,
        )
    }

    /// Submit with [`BackpressurePolicy::Block`] regardless of the
    /// configured policy — the infallible path used by [`crate::spawn`].
    pub fn submit_blocking<F, T>(&self, f: F) -> Result<TaskFuture<T>, QcorError>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        self.submit_with(
            SubmitOptions {
                policy: BackpressurePolicy::Block,
                priority: TaskPriority::Normal,
                deadline: None,
            },
            f,
        )
    }

    /// Submit into the given priority lane under the configured policy.
    /// `High` tasks are dispatched before all `Normal` tasks (FIFO within
    /// a lane) and are bounded by `priority_capacity`.
    pub fn submit_prioritized<F, T>(&self, priority: TaskPriority, f: F) -> Result<TaskFuture<T>, QcorError>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        self.submit_with(SubmitOptions { policy: self.inner.policy, priority, deadline: None }, f)
    }

    /// Submit with a deadline: if the task is still queued when `timeout`
    /// has elapsed, it never runs — at dispatch time it is lazily expired,
    /// its future resolves as [`QcorError::TaskShed`] and the `expired`
    /// counter ticks. A task dispatched before the deadline runs to
    /// completion regardless of how long it takes.
    pub fn submit_with_deadline<F, T>(&self, timeout: Duration, f: F) -> Result<TaskFuture<T>, QcorError>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        self.submit_with(
            SubmitOptions {
                policy: self.inner.policy,
                priority: TaskPriority::Normal,
                deadline: Some(Instant::now() + timeout),
            },
            f,
        )
    }

    fn submit_with<F, T>(&self, opts: SubmitOptions, f: F) -> Result<TaskFuture<T>, QcorError>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let inherited = inherited_task_options();
        let in_own_task = IN_SERVICE_TASK.with(|owner| owner.get()) == self.inner.id;

        let ticket = self.inner.next_ticket.fetch_add(1, Ordering::Relaxed) as u64;
        let (tx, rx) = bounded::<TaskOutcome<T>>(1);
        let shed_tx = tx.clone();
        let cancel_tx = tx.clone();
        let service_id = self.inner.id;
        let inner_for_run = Arc::downgrade(&self.inner);
        let run = Box::new(move || {
            let outcome = run_task_body(service_id, inherited, f);
            // Move the task from `running` to `completed` in one lock
            // acquisition BEFORE publishing the result: once a future
            // resolves, every stats snapshot must already count the task
            // as completed. (Weak: the service outlives all running tasks
            // — Drop joins the dispatcher — so this only fails if the
            // process is tearing the service down anyway.)
            if let Some(inner) = inner_for_run.upgrade() {
                let mut st = inner.state.lock();
                st.running -= 1;
                st.completed += 1;
            }
            // The receiver may already be dropped (fire-and-forget).
            let _ = tx.send(outcome);
        });
        let shed = Box::new(move || {
            let _ = shed_tx.send(TaskOutcome::Shed);
        });
        let cancel = Box::new(move || {
            let _ = cancel_tx.send(TaskOutcome::Cancelled);
        });
        let task = QueuedTask {
            ticket,
            run,
            shed,
            cancel,
            sheddable: opts.policy == BackpressurePolicy::ShedOldest,
            deadline: opts.deadline,
        };
        let ctx = TaskServiceCtx { service: Arc::downgrade(&self.inner), service_id, ticket };

        let lane_cap = match opts.priority {
            TaskPriority::High => self.inner.priority_capacity,
            TaskPriority::Normal => self.inner.capacity,
        };
        let over_capacity = |st: &QueueState| {
            st.queued() >= self.inner.capacity
                || match opts.priority {
                    TaskPriority::High => st.high.len() >= lane_cap,
                    TaskPriority::Normal => false,
                }
        };

        let victim = {
            let mut st = self.inner.state.lock();
            if st.shutdown {
                return Err(QcorError::Execution("execution service is shut down".into()));
            }
            let mut victim = None;
            if over_capacity(&st) {
                match opts.policy {
                    BackpressurePolicy::Block if in_own_task => {
                        // A permit holder must never park in `space_ready`:
                        // queue space is freed by dispatch, which needs
                        // permits. Run the task inline on our own permit —
                        // the work-conserving overflow path (equivalent to
                        // enqueueing it and immediately helping it drain).
                        st.submitted += 1;
                        st.running += 1;
                        drop(st);
                        run_queued_task_prelocked(&self.inner, task);
                        return Ok(TaskFuture::with_ctx(rx, ctx));
                    }
                    BackpressurePolicy::Block => {
                        while over_capacity(&st) && !st.shutdown {
                            self.inner.space_ready.wait(&mut st);
                        }
                        if st.shutdown {
                            return Err(QcorError::Execution("execution service is shut down".into()));
                        }
                    }
                    BackpressurePolicy::Reject => {
                        st.rejected += 1;
                        return Err(QcorError::QueueFull);
                    }
                    BackpressurePolicy::ShedOldest => {
                        // Shed the oldest task that opted into shedding,
                        // victimizing the lane whose limit binds: a full
                        // high lane can only be relieved by a high victim;
                        // otherwise normal-lane victims go first.
                        // Block-admitted tasks are untouchable; if nothing
                        // sheddable is queued, the incoming submission is
                        // the only sheddable work item — it is shed itself
                        // (observable via its future), never enqueued.
                        let high_full = opts.priority == TaskPriority::High && st.high.len() >= lane_cap;
                        let position = if high_full {
                            st.high.iter().position(|t| t.sheddable).map(|i| (TaskPriority::High, i))
                        } else {
                            st.normal
                                .iter()
                                .position(|t| t.sheddable)
                                .map(|i| (TaskPriority::Normal, i))
                                .or_else(|| {
                                    st.high.iter().position(|t| t.sheddable).map(|i| (TaskPriority::High, i))
                                })
                        };
                        match position {
                            Some((TaskPriority::High, index)) => victim = st.high.remove(index),
                            Some((TaskPriority::Normal, index)) => victim = st.normal.remove(index),
                            None => {
                                // Admitted, then instantly shed: both
                                // counters tick so the accounting identity
                                // holds.
                                st.submitted += 1;
                                st.shed += 1;
                                drop(st);
                                (task.shed)();
                                return Ok(TaskFuture::with_ctx(rx, ctx));
                            }
                        }
                        st.shed += 1;
                    }
                }
            }
            match opts.priority {
                TaskPriority::High => st.high.push_back(task),
                TaskPriority::Normal => st.normal.push_back(task),
            }
            st.submitted += 1;
            st.peak_queue = st.peak_queue.max(st.queued());
            victim
        };
        if let Some(victim) = victim {
            (victim.shed)();
        }
        self.inner.task_ready.notify_all();
        Ok(TaskFuture::with_ctx(rx, ctx))
    }

    /// Current total queue occupancy (both lanes).
    pub fn queue_len(&self) -> usize {
        self.inner.state.lock().queued()
    }

    /// Queue high-water mark.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// High-lane high-water mark.
    pub fn priority_capacity(&self) -> usize {
        self.inner.priority_capacity
    }

    /// The configured backpressure policy.
    pub fn policy(&self) -> BackpressurePolicy {
        self.inner.policy
    }

    /// Total team size of the backing pool (the service's thread budget).
    pub fn pool_threads(&self) -> usize {
        self.pool.num_threads()
    }

    /// The executor-permit budget: how many tasks can run concurrently.
    /// Computed once at construction ([`Inner::max_permits`]); everything
    /// that needs the invariant reads this field.
    pub fn permit_budget(&self) -> usize {
        self.inner.max_permits
    }

    /// Consistent counter snapshot (single lock acquisition; see
    /// [`ServiceStats`] for the invariant).
    pub fn stats(&self) -> ServiceStats {
        let st = self.inner.state.lock();
        ServiceStats {
            submitted: st.submitted,
            completed: st.completed,
            rejected: st.rejected,
            shed: st.shed,
            cancelled: st.cancelled,
            expired: st.expired,
            peak_queue_len: st.peak_queue,
            running: st.running,
            queue_len: st.queued(),
            high_queue_len: st.high.len(),
            normal_queue_len: st.normal.len(),
        }
    }

    /// Block until every queued and running task has finished (queue empty
    /// and all permits free). Mainly for tests and orderly shutdowns.
    ///
    /// Must not be called from inside one of this service's own tasks —
    /// the caller would wait for its own permit to free. That misuse is
    /// detected and panics instead of deadlocking.
    pub fn drain(&self) {
        assert!(
            IN_SERVICE_TASK.with(|owner| owner.get()) != self.inner.id,
            "ExecutionService::drain called from inside one of the service's own tasks \
             (it would wait for its own permit and deadlock)"
        );
        let mut st = self.inner.state.lock();
        while st.queued() != 0 || st.permits < self.inner.max_permits || st.running != 0 {
            self.inner.task_ready.wait(&mut st);
        }
    }
}

impl Drop for ExecutionService {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock();
            st.shutdown = true;
        }
        // Wake the dispatcher (to drain and exit) and any blocked
        // submitters (to fail fast).
        self.inner.task_ready.notify_all();
        self.inner.space_ready.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
        // The pool's own Drop joins the workers afterwards.
    }
}

/// [`run_queued_task`] for the inline-overflow path, where the caller has
/// already incremented `running` under the submission lock (so the
/// admission and the gauge move atomically). The task closure itself
/// retires the `running`/`completed` pair.
fn run_queued_task_prelocked(inner: &Inner, task: QueuedTask) {
    (task.run)();
    inner.task_ready.notify_all();
}

/// Execute one task body with the per-task quantum context protocol:
/// replay the inherited `InitOptions` (fresh accelerator instance), run,
/// and always clear the executor thread's registration so worker reuse
/// never leaks state into the next task.
fn run_task_body<F, T>(service_id: usize, inherited: Option<InitOptions>, f: F) -> TaskOutcome<T>
where
    F: FnOnce() -> T,
{
    let previous_owner = IN_SERVICE_TASK.with(|owner| owner.replace(service_id));
    // A task run inline under another task's permit (work-conserving join
    // or inline overflow) shares its parent's OS thread: remember the
    // parent's registration so this task's `initialize` doesn't clobber it.
    let saved = if previous_owner != 0 { QPUManager::instance().get_qpu() } else { None };
    let result = catch_unwind(AssertUnwindSafe(|| {
        if let Some(opts) = inherited {
            initialize(opts).expect("re-initializing inherited backend cannot fail");
        }
        f()
    }));
    IN_SERVICE_TASK.with(|owner| owner.set(previous_owner));
    match saved {
        Some(parent_ctx) => QPUManager::instance().set_qpu(parent_ctx),
        None => QPUManager::instance().clear_current(),
    }
    TaskOutcome::Completed(result)
}

/// The `InitOptions` a child task inherits: the parent's options pinned
/// to the backend the parent's own initialization **resolved to**. A
/// child must get a fresh instance of the *same* backend as its parent —
/// replaying a non-pinned routing policy would re-route (advancing
/// rotation cursors) and could silently hand the child a different
/// backend class. Tasks that want routed placement call `initialize`
/// with a routing policy themselves.
fn inherited_task_options() -> Option<InitOptions> {
    QPUManager::instance().get_qpu().map(|ctx| {
        let mut opts = ctx.init;
        // The registry key routing resolved for the parent — NOT
        // `qpu.name()`, which custom services may register differently.
        opts.backend = ctx.resolved_backend;
        opts.routing = Some(crate::RoutingPolicy::Pinned);
        for key in ["routing", "routing-backends", "routing-capability"] {
            opts.params.remove(key);
        }
        opts
    })
}

/// The dispatcher: waits for (queued task ∧ free permit), ships the task
/// to a pool worker, and lets the worker hand its permit back on
/// completion. Admission control therefore travels all the way down: the
/// pool's internal channel never holds more tasks than there are permits.
/// Deadline-expired tasks are skimmed off here (and by helping joiners)
/// without consuming a permit.
fn dispatcher_loop(inner: Arc<Inner>, pool: Arc<ThreadPool>) {
    loop {
        let (expired, task) = {
            let mut st = inner.state.lock();
            loop {
                if st.queued() != 0 && st.permits > 0 {
                    let (expired, task) = st.pop_ready();
                    if let Some(_task) = &task {
                        st.permits -= 1;
                        st.running += 1;
                    }
                    if task.is_some() || !expired.is_empty() {
                        break (expired, task);
                    }
                    // Everything queued had expired; loop to re-evaluate.
                    continue;
                }
                if st.shutdown && st.queued() == 0 {
                    break (Vec::new(), None);
                }
                inner.task_ready.wait(&mut st);
            }
        };
        let had_expired = !expired.is_empty();
        resolve_expired(expired);
        if had_expired {
            inner.space_ready.notify_all();
            inner.task_ready.notify_all();
        }
        let Some(task) = task else {
            if had_expired {
                // Only expirations were skimmed this round; keep going
                // unless shutdown + empty queue ends the loop above.
                continue;
            }
            break;
        };
        inner.space_ready.notify_all();
        let inner_done = Arc::clone(&inner);
        // Team of one: spawn_detached runs inline on this thread, so the
        // dispatcher itself is the (serial) executor.
        pool.spawn_detached(move || {
            // The task closure retires `running`/`completed` itself before
            // resolving its future; only the permit return lives here.
            (task.run)();
            let mut st = inner_done.state.lock();
            st.permits += 1;
            drop(st);
            inner_done.task_ready.notify_all();
        });
    }
    // Graceful shutdown: wait for in-flight tasks before the service drops
    // the pool.
    let mut st = inner.state.lock();
    while st.permits < inner.max_permits {
        inner.task_ready.wait(&mut st);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn submit_returns_value() {
        let svc = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(4));
        let f = svc.submit(|| 6 * 7).unwrap();
        assert_eq!(f.get(), 42);
        assert_eq!(svc.stats().completed, 1);
    }

    #[test]
    fn fifo_order_on_a_serial_service() {
        // One permit ⇒ strict FIFO execution in submission order.
        let svc = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(16));
        let order = Arc::new(Mutex::new(Vec::new()));
        let futures: Vec<_> = (0..8)
            .map(|i| {
                let order = Arc::clone(&order);
                svc.submit(move || {
                    order.lock().push(i);
                    i
                })
                .unwrap()
            })
            .collect();
        let values: Vec<usize> = futures.into_iter().map(|f| f.get()).collect();
        assert_eq!(values, (0..8).collect::<Vec<_>>());
        assert_eq!(*order.lock(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn reject_policy_returns_queue_full() {
        let svc = ExecutionService::new(
            ExecServiceConfig::default().threads(2).capacity(1).policy(BackpressurePolicy::Reject),
        );
        let gate = Arc::new(AtomicBool::new(false));
        // Occupy the single worker…
        let g = Arc::clone(&gate);
        let running = svc
            .submit(move || {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            })
            .unwrap();
        // …fill the queue…
        while svc.queue_len() < 1 {
            match svc.submit(|| ()) {
                Ok(_) => std::thread::yield_now(),
                Err(_) => break,
            }
        }
        // …and watch an over-submission bounce instead of silently vanishing.
        let mut rejected = false;
        for _ in 0..100 {
            match svc.submit(|| ()) {
                Err(QcorError::QueueFull) => {
                    rejected = true;
                    break;
                }
                Ok(_) => std::thread::sleep(Duration::from_millis(1)),
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        gate.store(true, Ordering::Release);
        running.get();
        assert!(rejected, "a full queue must reject under the Reject policy");
        assert!(svc.stats().rejected >= 1);
    }

    #[test]
    fn shed_oldest_resolves_victim_future_as_shed() {
        let svc = ExecutionService::new(
            ExecServiceConfig::default().threads(2).capacity(1).policy(BackpressurePolicy::ShedOldest),
        );
        let gate = Arc::new(AtomicBool::new(false));
        let g = Arc::clone(&gate);
        let blocker = svc
            .submit(move || {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            })
            .unwrap();
        // Wait until the blocker is actually running (queue empty again).
        while svc.stats().running == 0 {
            std::thread::yield_now();
        }
        let oldest = svc.submit(|| 1).unwrap(); // queued
        let newest = svc.submit(|| 2).unwrap(); // sheds `oldest`
        assert_eq!(oldest.wait(), Err(QcorError::TaskShed));
        gate.store(true, Ordering::Release);
        blocker.get();
        assert_eq!(newest.get(), 2);
        assert_eq!(svc.stats().shed, 1);
    }

    #[test]
    fn shed_oldest_never_sheds_block_admitted_tasks() {
        // A spawn-style (Block) task sits at the queue front; shed-policy
        // over-submissions must not touch it — the incoming submission is
        // shed instead, and the Block task's future stays infallible.
        let svc = ExecutionService::new(
            ExecServiceConfig::default().threads(2).capacity(1).policy(BackpressurePolicy::ShedOldest),
        );
        let gate = Arc::new(AtomicBool::new(false));
        let g = Arc::clone(&gate);
        let blocker = svc
            .submit(move || {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            })
            .unwrap();
        while svc.stats().running == 0 {
            std::thread::yield_now();
        }
        let protected = svc.submit_blocking(|| "protected").unwrap(); // Block-admitted, fills the queue
        let incoming = svc.submit(|| "incoming").unwrap(); // shed policy, no sheddable victim
        assert_eq!(incoming.wait(), Err(QcorError::TaskShed), "incoming submission must shed itself");
        gate.store(true, Ordering::Release);
        blocker.get();
        assert_eq!(protected.wait(), Ok("protected"), "Block-admitted futures are infallible");
        assert_eq!(svc.stats().shed, 1);
    }

    #[test]
    fn nested_submission_joins_without_deadlock() {
        // Team of 2 ⇒ one executor. The outer task consumes it, then
        // submits and joins a child — the child enqueues and the join
        // helps drain it onto the outer task's own permit.
        let svc = Arc::new(ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(4)));
        let svc2 = Arc::clone(&svc);
        let outer = svc.submit(move || svc2.submit(|| 21).unwrap().get() * 2).unwrap();
        assert_eq!(outer.get(), 42);
        // The nested submission is a real, counted queue citizen now.
        assert_eq!(svc.stats().submitted, 2);
        assert_eq!(svc.stats().completed, 2);
    }

    #[test]
    fn nested_block_submission_on_full_queue_runs_inline() {
        // Capacity 1, one executor. The outer task fills the queue with a
        // sibling it never joins, then over-submits under Block: instead
        // of parking in space_ready with the only permit held (deadlock),
        // the overflow submission runs inline on the outer task's permit.
        let svc = Arc::new(ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(1)));
        let svc2 = Arc::clone(&svc);
        let outer = svc
            .submit(move || {
                let filler = svc2.submit(|| 1).unwrap();
                let inline = svc2.submit(|| 2).unwrap(); // queue full ⇒ inline
                assert!(inline.is_ready(), "overflow submission must have run inline");
                inline.get() + filler.get()
            })
            .unwrap();
        assert_eq!(outer.get(), 3);
        svc.drain();
        let stats = svc.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed, 3);
    }

    #[test]
    fn cross_service_submission_enqueues_normally() {
        // A task of service A submitting to service B must go through B's
        // queue (policy + stats), not run inline on A's worker.
        let a = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(4));
        let b = Arc::new(ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(4)));
        let b2 = Arc::clone(&b);
        let out = a.submit(move || b2.submit(|| 11).unwrap().get()).unwrap().get();
        assert_eq!(out, 11);
        assert_eq!(a.stats().submitted, 1);
        assert_eq!(b.stats().submitted, 1, "cross-service submission must hit B's queue");
        assert_eq!(b.stats().completed, 1);
    }

    #[test]
    fn cross_service_submission_honors_target_policy() {
        // B has a Reject policy and a saturated queue: a task of A that
        // over-submits to B must observe QueueFull, not a silent inline run.
        let a = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(4));
        let b = Arc::new(ExecutionService::new(
            ExecServiceConfig::default().threads(2).capacity(1).policy(BackpressurePolicy::Reject),
        ));
        let gate = Arc::new(AtomicBool::new(false));
        let (g, b2) = (Arc::clone(&gate), Arc::clone(&b));
        let blocker = b
            .submit(move || {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            })
            .unwrap();
        while b.stats().running == 0 {
            std::thread::yield_now();
        }
        let filler = b.submit(|| ()).unwrap(); // occupies the queue slot
        let from_a = a.submit(move || b2.submit(|| 1).map(|f| f.get())).unwrap().get();
        assert_eq!(from_a, Err(QcorError::QueueFull));
        gate.store(true, Ordering::Release);
        blocker.get();
        filler.get();
    }

    #[test]
    fn drop_drains_queued_tasks() {
        let svc = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(64));
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let counter = Arc::clone(&counter);
            // Fire and forget: futures dropped immediately.
            let _ = svc.submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(svc);
        assert_eq!(counter.load(Ordering::Relaxed), 16, "drop must drain, not discard, queued work");
    }

    #[test]
    fn panicking_task_does_not_poison_the_service() {
        let svc = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(4));
        let bad = svc.submit(|| panic!("deliberate")).unwrap();
        let result = catch_unwind(AssertUnwindSafe(move || bad.get()));
        assert!(result.is_err());
        assert_eq!(svc.submit(|| 5).unwrap().get(), 5);
    }

    #[test]
    fn team_of_one_service_still_completes() {
        let svc = ExecutionService::new(ExecServiceConfig::default().threads(1).capacity(4));
        let futures: Vec<_> = (0..6).map(|i| svc.submit(move || i * i).unwrap()).collect();
        let got: Vec<usize> = futures.into_iter().map(|f| f.get()).collect();
        assert_eq!(got, vec![0, 1, 4, 9, 16, 25]);
    }

    #[test]
    fn team_of_one_in_task_join_drains_inline() {
        // The dispatcher itself is the executor; an in-task sibling join
        // must still make progress through the drain loop.
        let svc = Arc::new(ExecutionService::new(ExecServiceConfig::default().threads(1).capacity(8)));
        let svc2 = Arc::clone(&svc);
        let outer = svc
            .submit(move || {
                let a = svc2.submit(|| 3).unwrap();
                let b = svc2.submit(|| 4).unwrap();
                a.get() * b.get()
            })
            .unwrap();
        assert_eq!(outer.get(), 12);
    }

    #[test]
    fn permit_budget_is_single_sourced() {
        // The invariant the satellite pins: the stored budget equals the
        // (single) formula, `drain` restores it, and it is what the
        // public accessor reports.
        for threads in [1usize, 2, 3, 4, 8] {
            let svc = ExecutionService::new(ExecServiceConfig::default().threads(threads).capacity(16));
            assert_eq!(svc.permit_budget(), threads.saturating_sub(1).max(1), "threads={threads}");
            assert_eq!(svc.inner.max_permits, svc.permit_budget());
            let futures: Vec<_> = (0..8).map(|i| svc.submit(move || i).unwrap()).collect();
            for f in futures {
                f.get();
            }
            svc.drain();
            let st = svc.inner.state.lock();
            assert_eq!(st.permits, svc.inner.max_permits, "drain must restore the full budget");
        }
    }

    #[test]
    #[should_panic(expected = "drain called from inside")]
    fn drain_from_inside_a_task_panics() {
        let svc = Arc::new(ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(4)));
        let svc2 = Arc::clone(&svc);
        svc.submit(move || svc2.drain()).unwrap().get();
    }

    #[test]
    fn stats_snapshot_is_internally_consistent() {
        // Hammer the service from several submitters while polling stats:
        // every snapshot must satisfy the accounting identity exactly.
        let svc = Arc::new(ExecutionService::new(ExecServiceConfig::default().threads(3).capacity(8)));
        let stop = Arc::new(AtomicBool::new(false));
        let poller = {
            let svc = Arc::clone(&svc);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut snapshots = 0usize;
                while !stop.load(Ordering::Acquire) {
                    let s = svc.stats();
                    assert_eq!(
                        s.submitted,
                        s.completed + s.running + s.queue_len + s.shed + s.cancelled + s.expired,
                        "inconsistent snapshot: {s:?}"
                    );
                    assert_eq!(s.queue_len, s.high_queue_len + s.normal_queue_len);
                    snapshots += 1;
                }
                snapshots
            })
        };
        let submitters: Vec<_> = (0..3)
            .map(|_| {
                let svc = Arc::clone(&svc);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        svc.submit(move || i).unwrap().get();
                    }
                })
            })
            .collect();
        for s in submitters {
            s.join().unwrap();
        }
        stop.store(true, Ordering::Release);
        assert!(poller.join().unwrap() > 0);
        svc.drain();
        let s = svc.stats();
        assert_eq!((s.submitted, s.completed), (600, 600));
    }
}
