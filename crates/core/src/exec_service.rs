//! The asynchronous kernel-execution service: a bounded two-lane task
//! queue with configurable backpressure, drained onto a shared
//! [`ThreadPool`].
//!
//! [`crate::async_task`] (paper Listing 5) originally spawned one OS
//! thread per task — unbounded under submission pressure. The service
//! replaces that with the shape the ROADMAP's north star asks for:
//!
//! * **Bounded queue** — submissions land in a FIFO queue with a
//!   high-water mark (`capacity`). Once full, the configured
//!   [`BackpressurePolicy`] decides: `Block` the submitter, `Reject` the
//!   submission with [`QcorError::QueueFull`], or `ShedOldest` — admit the
//!   new task and resolve the oldest **shed-admitted** queued task's
//!   future as shed ([`QcorError::TaskShed`]), never dropping work
//!   silently. Block-admitted tasks (`spawn`/`async_task`) are never
//!   shed — their futures stay infallible; if only such tasks are queued,
//!   the incoming shed-policy submission is itself shed instead.
//! * **Priority lanes** — the queue has a `High` and a `Normal` lane
//!   ([`TaskPriority`]). The dispatcher drains `High` first, FIFO within
//!   each lane; shed-oldest victimizes the `Normal` lane first. The high
//!   lane has its own high-water mark (`priority_capacity`,
//!   `QCOR_QUEUE_PRIORITY_CAPACITY`) so latency-sensitive work cannot
//!   monopolize the whole queue budget.
//! * **Fixed thread budget** — a dispatcher thread ships queued tasks to
//!   the workers of one shared [`ThreadPool`]
//!   ([`ThreadPool::spawn_detached`]), one permit per worker, so no matter
//!   how many submissions are in flight, at most *pool-size* threads ever
//!   execute tasks. A team of one degenerates to the dispatcher draining
//!   the queue serially. The permit budget is computed **once**
//!   ([`Inner::max_permits`]) — construction, `drain` and the dispatcher
//!   all read the same field, so the invariant cannot drift.
//! * **Work-conserving join** — [`crate::TaskFuture::wait`] called from
//!   inside an executing task of the *same* service does not park while
//!   holding its permit: it **helps drain the queue**, popping and running
//!   queued tasks under its own permit and re-checking its future between
//!   tasks. It parks only once the queue is empty — at which point the
//!   awaited task is provably running on another permit (or already
//!   resolved), so the park always terminates. Sibling joins inside tasks
//!   therefore can never exhaust the permit budget, no matter how deep
//!   the chains pile up (the regression test submits `permits + 2` tasks
//!   that each join the next one's future). Cross-*service* joins still
//!   park normally under the other service's policy and stats. The one
//!   remaining way to stall is a genuine join **cycle** (task A waiting
//!   on B's future while B waits on A's, futures exchanged through shared
//!   state) — undefined for any join primitive, exactly like two OS
//!   threads `join`ing each other.
//! * **Per-tenant fair queuing** — inside each lane, queued tasks are
//!   keyed by **tenant** (an explicit [`TaskSpec::tenant`], else the
//!   submitting thread's session tenant ([`set_thread_tenant`] /
//!   [`InitOptions::tenant`]), else [`DEFAULT_TENANT`]) and dispatched by
//!   deficit-weighted round robin: each visit banks the tenant's weight
//!   (`QCOR_TENANT_WEIGHTS` / [`ExecServiceConfig::tenant_weight`],
//!   default 1.0) and serves one task per unit of banked deficit, so a
//!   tenant with weight 3 gets ~3× the dispatch share of a weight-1 tenant
//!   and a flooding tenant can no longer starve polite ones. A single
//!   tenant degenerates to plain FIFO. Tasks of a task inherit its tenant.
//! * **Work-conserving dispatcher** (opt-in:
//!   [`ExecServiceConfig::dispatcher_executes`] /
//!   `QCOR_DISPATCHER_EXECUTES`) — when every permit is busy and work is
//!   queued, the dispatcher thread pops and runs a task itself instead of
//!   parking. Off by default: inline execution adds one executor beyond
//!   the permit budget and relaxes strict FIFO observability, which the
//!   saturation-pattern tests rely on.
//! * **Cancellation and deadlines** — [`crate::TaskFuture::cancel`]
//!   aborts a still-queued task (its future resolves as
//!   [`QcorError::TaskCancelled`]); once dispatched, `cancel` reports
//!   `false` but **requests a cooperative stop**: the task's
//!   [`CancelToken`] is set, and checkpointed code (e.g. a chunked
//!   `qcor_sim` shot sweep, which checks between chunk jobs) stops at its
//!   next checkpoint and returns the completed prefix. Dropping a future
//!   stays detached (fire-and-forget).
//!   [`ExecutionService::submit_with_deadline`] attaches a deadline that
//!   is enforced **eagerly**: deadlines sit in a min-heap, the dispatcher
//!   sleeps no longer than the nearest one, and an expired task leaves its
//!   queue slot immediately — even when no permit is free — resolving
//!   through the shed path ([`QcorError::TaskShed`]) as the `expired`
//!   counter ticks. A task already dispatched is past eviction and always
//!   runs to completion. (Dispatch-time and helper-side lazy checks remain
//!   as backstops.)
//! * **Live introspection** — [`ExecutionService::introspect`] snapshots
//!   the stats, lane occupancy, per-tenant gauges and live backend loads
//!   into a [`ServiceIntrospection`] (text or JSON via
//!   [`ServiceIntrospection::to_text`] / [`to_json`](ServiceIntrospection::to_json));
//!   setting `QCOR_DEBUG_ENDPOINT=<addr>` serves the global service's
//!   snapshot from a tiny HTTP listener ([`DebugServer`], off by default).
//! * **Per-task quantum context** — each task replays the submitting
//!   thread's `InitOptions` on its worker (fresh accelerator instance via
//!   the cloneable registry, exactly like the old per-thread wrapper) and
//!   clears the `QPUManager` registration afterwards, so worker reuse
//!   never leaks state between tasks.
//!
//! Nested submissions to the **same service** from inside a running task
//! enqueue normally (counted, prioritized and sheddable like any other
//! submission) — the work-conserving join is what makes that safe. The
//! one exception keeps `Block` non-blocking for permit holders: a nested
//! `Block` submission against a full queue runs **inline** on the parent's
//! permit instead of parking in `space_ready` (a submitter that holds a
//! permit must never wait for queue space that only permit holders can
//! free). Submissions to a *different* service enqueue under that
//! service's own policy and stats.
//!
//! All [`ServiceStats`] counters live under the queue lock and are
//! snapshotted with a single acquisition, so a snapshot is always
//! internally consistent:
//! `submitted == completed + running + queue_len + shed + cancelled + expired`
//! holds for **every** snapshot (`rejected` counts submissions that were
//! never admitted and sits outside the identity). Per-tenant counters live
//! under the same lock: the identity also holds per tenant, and every
//! per-tenant counter column sums to its `ServiceStats` total.

use crate::introspect::{DebugServer, ServiceIntrospection, TenantStats};
use crate::qpu_manager::QPUManager;
use crate::runtime::{initialize, InitOptions};
use crate::threading::{TaskFuture, TaskOutcome};
use crate::QcorError;
use crossbeam::channel::bounded;
use parking_lot::{Condvar, Mutex};
use qcor_pool::{num_threads_from_env, PoolBuilder, ThreadPool};
use qcor_sim::cancel::{self, CancelToken};
use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What happens to a submission once the queue is at its high-water mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Block the submitting thread until the queue has room (the default —
    /// submission pressure propagates to the producers). Inside a task of
    /// the same service the submission runs inline instead of blocking
    /// (see the module docs).
    Block,
    /// Fail the submission with [`QcorError::QueueFull`].
    Reject,
    /// Admit the new task and shed the oldest **shed-admitted** queued
    /// task: its future resolves to [`QcorError::TaskShed`] instead of a
    /// value. Block-admitted tasks (`spawn`) are never shed; if none of
    /// the queued tasks is sheddable, the incoming submission itself is
    /// shed. The `Normal` lane is victimized before the `High` lane.
    ShedOldest,
}

/// Which lane of the kernel queue a submission joins. The dispatcher
/// drains `High` completely before touching `Normal`; order within a lane
/// is FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TaskPriority {
    /// The default lane.
    #[default]
    Normal,
    /// Dispatched before all `Normal` tasks; bounded separately by
    /// `priority_capacity` and shed only when no `Normal` victim exists.
    High,
}

/// Configuration for an [`ExecutionService`].
#[derive(Debug, Clone)]
pub struct ExecServiceConfig {
    /// Queue high-water mark across both lanes (≥ 1).
    pub capacity: usize,
    /// High-lane high-water mark. `None` (the default) means the high
    /// lane is bounded only by the total `capacity`; an explicit value is
    /// clamped to `capacity` at construction. A high submission is over
    /// capacity when either its lane or the total is full.
    pub priority_capacity: Option<usize>,
    /// Total pool team size, including the dispatcher (≥ 1): at most
    /// `threads` OS threads ever execute tasks.
    pub threads: usize,
    /// Policy applied by [`ExecutionService::submit`] when the queue is
    /// full.
    pub policy: BackpressurePolicy,
    /// Per-tenant fair-queuing weights (`(tenant, weight)`; weight > 0).
    /// Tenants not listed here weigh 1.0. Later entries override earlier
    /// ones for the same tenant.
    pub tenant_weights: Vec<(String, f64)>,
    /// Work-conserving dispatch: when `true`, the dispatcher runs a queued
    /// task itself whenever every permit is busy (one extra executor
    /// beyond the permit budget). Default `false` — see the module docs
    /// for the trade-off.
    pub dispatcher_executes: bool,
}

impl Default for ExecServiceConfig {
    fn default() -> Self {
        ExecServiceConfig {
            capacity: 256,
            priority_capacity: None,
            threads: num_threads_from_env().max(4),
            policy: BackpressurePolicy::Block,
            tenant_weights: Vec::new(),
            dispatcher_executes: false,
        }
    }
}

impl ExecServiceConfig {
    /// Builder-style capacity.
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Builder-style high-lane capacity (clamped to the total capacity at
    /// construction; unset = bounded by the total capacity alone).
    pub fn priority_capacity(mut self, capacity: usize) -> Self {
        self.priority_capacity = Some(capacity.max(1));
        self
    }

    /// The high-lane high-water mark this configuration resolves to: the
    /// explicit `priority_capacity` clamped to `capacity`, or `capacity`
    /// itself when unset. This is the value the service enforces and
    /// reports.
    pub fn effective_priority_capacity(&self) -> usize {
        self.priority_capacity.unwrap_or(self.capacity).clamp(1, self.capacity.max(1))
    }

    /// Builder-style team size.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Builder-style backpressure policy.
    pub fn policy(mut self, policy: BackpressurePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Builder-style tenant weight (must be positive and finite). Tenants
    /// never configured weigh 1.0.
    pub fn tenant_weight(mut self, tenant: impl Into<String>, weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0,
            "tenant weight must be a positive finite number, got {weight}"
        );
        self.tenant_weights.push((tenant.into(), weight));
        self
    }

    /// Builder-style work-conserving dispatch (see
    /// [`ExecServiceConfig::dispatcher_executes`]).
    pub fn dispatcher_executes(mut self, enabled: bool) -> Self {
        self.dispatcher_executes = enabled;
        self
    }

    /// The global service's configuration: `QCOR_QUEUE_CAPACITY`,
    /// `QCOR_QUEUE_PRIORITY_CAPACITY` (high-lane high-water mark, default:
    /// the total capacity), `QCOR_SERVICE_THREADS` (default:
    /// `QCOR_NUM_THREADS` with a floor of 4, so task-level latency overlap
    /// survives 1-CPU hosts — the §IV-A cloud scenario needs ≥ 2
    /// concurrent tasks even without cores), `QCOR_QUEUE_POLICY`
    /// (`block` | `reject` | `shed-oldest`), `QCOR_TENANT_WEIGHTS`
    /// (`tenant=weight,...`) and `QCOR_DISPATCHER_EXECUTES`
    /// (`1` | `true` | `on` / `0` | `false` | `off`).
    ///
    /// Every knob is parsed **loudly**: a value that is set but not valid
    /// (zero, garbage, an unknown token) panics instead of being silently
    /// clamped or ignored — running under a configuration the operator
    /// didn't ask for is worse than failing fast.
    pub fn from_env() -> Self {
        Self::from_env_reader(|key| std::env::var(key).ok())
    }

    /// The testable core of [`ExecServiceConfig::from_env`]: every knob is
    /// read through `get`, so tests can inject values (and assert the loud
    /// rejections) without racing other tests on the process environment.
    pub fn from_env_reader(get: impl Fn(&str) -> Option<String>) -> Self {
        let mut cfg = ExecServiceConfig::default();
        if let Some(cap) = get("QCOR_QUEUE_CAPACITY") {
            cfg.capacity = parse_positive("QCOR_QUEUE_CAPACITY", &cap);
        }
        if let Some(cap) = get("QCOR_QUEUE_PRIORITY_CAPACITY") {
            cfg.priority_capacity = Some(parse_positive("QCOR_QUEUE_PRIORITY_CAPACITY", &cap));
        }
        if let Some(threads) = get("QCOR_SERVICE_THREADS") {
            cfg.threads = parse_positive("QCOR_SERVICE_THREADS", &threads);
        }
        if let Some(policy) = get("QCOR_QUEUE_POLICY") {
            cfg.policy = match policy.as_str() {
                "block" => BackpressurePolicy::Block,
                "reject" => BackpressurePolicy::Reject,
                "shed-oldest" => BackpressurePolicy::ShedOldest,
                // Loud failure beats silently blocking under a policy the
                // operator didn't ask for (same stance as qpp's unknown
                // `granularity` values).
                other => panic!(
                    "QCOR_QUEUE_POLICY=`{other}` is not a backpressure policy \
                     (expected block | reject | shed-oldest)"
                ),
            };
        }
        if let Some(spec) = get("QCOR_TENANT_WEIGHTS") {
            cfg.tenant_weights = parse_tenant_weights(&spec);
        }
        if let Some(flag) = get("QCOR_DISPATCHER_EXECUTES") {
            cfg.dispatcher_executes = parse_bool_token("QCOR_DISPATCHER_EXECUTES", &flag);
        }
        cfg
    }
}

/// Parse an env knob that must be a positive integer; zero and garbage are
/// rejected loudly (the satellite fix for the old silent `max(1)` clamp).
fn parse_positive(key: &str, value: &str) -> usize {
    match value.trim().parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => panic!("{key}=`{value}` is not a positive integer (expected >= 1)"),
    }
}

/// Parse a `tenant=weight,tenant=weight` spec (`QCOR_TENANT_WEIGHTS`).
/// Empty names, unparsable or non-positive weights, and a wholly empty
/// spec all panic.
fn parse_tenant_weights(spec: &str) -> Vec<(String, f64)> {
    let mut weights = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        let Some((name, weight)) = entry.split_once('=') else {
            panic!("QCOR_TENANT_WEIGHTS entry `{entry}` is not `tenant=weight`");
        };
        let (name, weight_str) = (name.trim(), weight.trim());
        let weight: f64 = weight_str.parse().unwrap_or_else(|_| {
            panic!("QCOR_TENANT_WEIGHTS weight `{weight_str}` for `{name}` is not a number")
        });
        if name.is_empty() || !weight.is_finite() || weight <= 0.0 {
            panic!(
                "QCOR_TENANT_WEIGHTS entry `{entry}` is invalid \
                 (tenant must be non-empty, weight positive and finite)"
            );
        }
        weights.push((name.to_string(), weight));
    }
    if weights.is_empty() {
        panic!("QCOR_TENANT_WEIGHTS is set but empty (expected `tenant=weight,...`)");
    }
    weights
}

/// Parse an on/off env token loudly.
fn parse_bool_token(key: &str, value: &str) -> bool {
    match value.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" => true,
        "0" | "false" | "off" => false,
        other => panic!("{key}=`{other}` is not a boolean token (expected 1 | true | on | 0 | false | off)"),
    }
}

/// Snapshot of a service's counters, taken under a single lock
/// acquisition so the monotone counters and the gauges (`running`,
/// `queue_len`, `high_queue_len`, `normal_queue_len`) are mutually
/// consistent: `submitted == completed + running + queue_len + shed +
/// cancelled + expired` holds for every snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Tasks admitted to the queue.
    pub submitted: usize,
    /// Tasks that ran to completion (including panicked tasks).
    pub completed: usize,
    /// Submissions refused under [`BackpressurePolicy::Reject`] (never
    /// admitted; outside the accounting identity).
    pub rejected: usize,
    /// Queued tasks dropped under [`BackpressurePolicy::ShedOldest`].
    pub shed: usize,
    /// Queued tasks aborted by [`crate::TaskFuture::cancel`].
    pub cancelled: usize,
    /// Queued tasks whose deadline passed before dispatch (resolved as
    /// shed, never run).
    pub expired: usize,
    /// Highest total queue occupancy observed.
    pub peak_queue_len: usize,
    /// Tasks currently executing on the pool.
    pub running: usize,
    /// Tasks currently queued (both lanes).
    pub queue_len: usize,
    /// Tasks currently queued in the high-priority lane.
    pub high_queue_len: usize,
    /// Tasks currently queued in the normal lane.
    pub normal_queue_len: usize,
}

/// The tenant a submission is accounted to when neither the [`TaskSpec`]
/// nor the submitting thread names one.
pub const DEFAULT_TENANT: &str = "default";

/// Lane indices into the per-tenant queue pairs.
const LANE_HIGH: usize = 0;
const LANE_NORMAL: usize = 1;
const LANES: usize = 2;

fn lane_index(priority: TaskPriority) -> usize {
    match priority {
        TaskPriority::High => LANE_HIGH,
        TaskPriority::Normal => LANE_NORMAL,
    }
}

struct QueuedTask {
    /// Unique per-service ticket, the handle [`crate::TaskFuture::cancel`]
    /// uses to find (and remove) this task while it is still queued.
    ticket: u64,
    /// The tenant this task is queued under and accounted to.
    tenant: Arc<str>,
    run: Box<dyn FnOnce() + Send>,
    /// Resolves the task's future as [`TaskOutcome::Shed`].
    shed: Box<dyn FnOnce() + Send>,
    /// Resolves the task's future as [`TaskOutcome::Cancelled`].
    cancel: Box<dyn FnOnce() + Send>,
    /// Only submissions admitted under [`BackpressurePolicy::ShedOldest`]
    /// opt into being shed; Block-admitted tasks (`spawn`/`async_task`)
    /// keep their infallible-future contract (cancel and deadlines are
    /// explicit caller choices and exempt from that contract).
    sheddable: bool,
    /// Enforced eagerly through the deadline heap, with a lazy dispatch
    /// check as backstop: an expired task never runs and resolves through
    /// the shed path.
    deadline: Option<Instant>,
}

/// One tenant's queues, fair-queuing state and counters. Never removed
/// once created (the counters are monotone); tenant cardinality is assumed
/// bounded (session keys, not per-request ids).
struct TenantState {
    /// Fair-queuing weight (> 0); the tenant's relative dispatch share.
    weight: f64,
    /// Deficit-round-robin credit per lane: each rotation visit banks
    /// `weight`, each dispatched task spends 1.0.
    deficit: [f64; LANES],
    /// Whether this tenant currently sits in the lane's rotation list
    /// (guards against double entries, which would double its share).
    in_rotation: [bool; LANES],
    /// Queued tasks per lane, FIFO within the tenant.
    lanes: [VecDeque<QueuedTask>; LANES],
    // --- per-tenant counters (same identity as ServiceStats) ------------
    submitted: usize,
    completed: usize,
    shed: usize,
    cancelled: usize,
    expired: usize,
    running: usize,
}

impl TenantState {
    fn new(weight: f64) -> Self {
        TenantState {
            weight,
            deficit: [0.0; LANES],
            in_rotation: [false; LANES],
            lanes: [VecDeque::new(), VecDeque::new()],
            submitted: 0,
            completed: 0,
            shed: 0,
            cancelled: 0,
            expired: 0,
            running: 0,
        }
    }
}

struct QueueState {
    /// Per-tenant queues and counters, keyed by tenant name.
    tenants: HashMap<Arc<str>, TenantState>,
    /// Deficit-round-robin rotation per lane: the tenants with queued
    /// tasks in that lane, in visit order.
    rotation: [VecDeque<Arc<str>>; LANES],
    /// Cached total occupancy per lane (sum over tenants).
    lane_lens: [usize; LANES],
    /// Min-heap of `(deadline, ticket)` for eager eviction. Entries are
    /// never removed early; stale tickets (dispatched/cancelled tasks) are
    /// skipped when they surface.
    deadlines: BinaryHeap<Reverse<(Instant, u64)>>,
    /// Configured fair-queuing weights; tenants absent here weigh 1.0.
    weights: HashMap<String, f64>,
    /// Free executor slots (pool workers; 1 for a team-of-one service).
    permits: usize,
    shutdown: bool,
    // --- counters (see ServiceStats) -----------------------------------
    submitted: usize,
    completed: usize,
    rejected: usize,
    shed: usize,
    cancelled: usize,
    expired: usize,
    peak_queue: usize,
    running: usize,
}

impl QueueState {
    fn new(max_permits: usize, weights: HashMap<String, f64>) -> Self {
        QueueState {
            tenants: HashMap::new(),
            rotation: [VecDeque::new(), VecDeque::new()],
            lane_lens: [0; LANES],
            deadlines: BinaryHeap::new(),
            weights,
            permits: max_permits,
            shutdown: false,
            submitted: 0,
            completed: 0,
            rejected: 0,
            shed: 0,
            cancelled: 0,
            expired: 0,
            peak_queue: 0,
            running: 0,
        }
    }

    fn queued(&self) -> usize {
        self.lane_lens[LANE_HIGH] + self.lane_lens[LANE_NORMAL]
    }

    /// The tenant's state, created on first use with its configured
    /// weight.
    fn ensure_tenant(&mut self, key: &Arc<str>) -> &mut TenantState {
        if !self.tenants.contains_key(key) {
            let weight = self.weights.get(key.as_ref()).copied().unwrap_or(1.0);
            self.tenants.insert(Arc::clone(key), TenantState::new(weight));
        }
        self.tenants.get_mut(key).expect("just ensured")
    }

    /// The tenant's state, which must already exist (every admitted task
    /// creates its tenant).
    fn tenant_mut(&mut self, key: &Arc<str>) -> &mut TenantState {
        self.tenants.get_mut(key).expect("tenant state exists for every admitted task")
    }

    /// Admit `task` into `lane`: per-tenant queue push, rotation
    /// membership, lane totals, deadline-heap entry and both `submitted`
    /// counters.
    fn enqueue(&mut self, lane: usize, task: QueuedTask) {
        if let Some(deadline) = task.deadline {
            self.deadlines.push(Reverse((deadline, task.ticket)));
        }
        let key = Arc::clone(&task.tenant);
        let needs_rotation = {
            let tenant = self.ensure_tenant(&key);
            tenant.lanes[lane].push_back(task);
            tenant.submitted += 1;
            !std::mem::replace(&mut tenant.in_rotation[lane], true)
        };
        if needs_rotation {
            self.rotation[lane].push_back(key);
        }
        self.lane_lens[lane] += 1;
        self.submitted += 1;
        self.peak_queue = self.peak_queue.max(self.queued());
    }

    /// Pop the next task of `lane` by deficit-weighted round robin over
    /// the lane's tenants. FIFO within a tenant; a lane with one tenant
    /// degenerates to plain FIFO.
    fn pop_lane(&mut self, lane: usize) -> Option<QueuedTask> {
        loop {
            let key = self.rotation[lane].front()?.clone();
            let tenant = self.tenants.get_mut(&key).expect("rotation references live tenants");
            if tenant.lanes[lane].is_empty() {
                // Stale entry: the tenant's queue emptied through
                // cancel/evict/shed. Banked deficit is forfeited so an
                // idle tenant cannot burst later.
                tenant.in_rotation[lane] = false;
                tenant.deficit[lane] = 0.0;
                self.rotation[lane].pop_front();
                continue;
            }
            if tenant.deficit[lane] < 1.0 {
                tenant.deficit[lane] += tenant.weight;
                if tenant.deficit[lane] < 1.0 {
                    // Fractional weight: bank the quantum, visit the next
                    // tenant. Weights are > 0, so every tenant eventually
                    // accumulates a full unit — no starvation.
                    let entry = self.rotation[lane].pop_front().expect("front exists");
                    self.rotation[lane].push_back(entry);
                    continue;
                }
            }
            tenant.deficit[lane] -= 1.0;
            let task = tenant.lanes[lane].pop_front().expect("checked non-empty");
            self.lane_lens[lane] -= 1;
            if tenant.lanes[lane].is_empty() {
                tenant.in_rotation[lane] = false;
                tenant.deficit[lane] = 0.0;
                self.rotation[lane].pop_front();
            } else if tenant.deficit[lane] < 1.0 {
                // Quantum spent: rotate to the back for the next round.
                let entry = self.rotation[lane].pop_front().expect("front exists");
                self.rotation[lane].push_back(entry);
            }
            return Some(task);
        }
    }

    /// Pop the next task in dispatch order (high lane first, fair-queued
    /// within a lane), skimming off tasks whose deadline has already
    /// passed — the lazy backstop behind the eager heap. Expired tasks are
    /// returned separately so the caller can resolve their futures outside
    /// the lock; their counters are updated here.
    fn pop_ready(&mut self) -> (Vec<QueuedTask>, Option<QueuedTask>) {
        let mut expired = Vec::new();
        let now = Instant::now();
        loop {
            let task = match self.pop_lane(LANE_HIGH) {
                Some(task) => Some(task),
                None => self.pop_lane(LANE_NORMAL),
            };
            match task {
                Some(task) if task.deadline.is_some_and(|d| d <= now) => {
                    self.note_expired(&task);
                    expired.push(task);
                }
                other => return (expired, other),
            }
        }
    }

    /// Move a just-popped task into the `running` gauges (global and
    /// per-tenant) in the same critical section as the pop, so no snapshot
    /// sees it in neither.
    fn mark_running(&mut self, task: &QueuedTask) {
        self.running += 1;
        let key = Arc::clone(&task.tenant);
        self.tenant_mut(&key).running += 1;
    }

    fn note_expired(&mut self, task: &QueuedTask) {
        self.expired += 1;
        let key = Arc::clone(&task.tenant);
        self.tenant_mut(&key).expired += 1;
    }

    /// Remove the queued task with `ticket`, if it is still queued.
    fn remove_ticket(&mut self, ticket: u64) -> Option<QueuedTask> {
        for tenant in self.tenants.values_mut() {
            for lane in [LANE_HIGH, LANE_NORMAL] {
                if let Some(index) = tenant.lanes[lane].iter().position(|t| t.ticket == ticket) {
                    let task = tenant.lanes[lane].remove(index);
                    if task.is_some() {
                        self.lane_lens[lane] -= 1;
                    }
                    return task;
                }
            }
        }
        None
    }

    /// Eager deadline eviction: pop every heap entry at or past `now`,
    /// remove the tasks that are still queued (stale tickets — already
    /// dispatched, cancelled or lazily expired — are skipped) and tick the
    /// `expired` counters. A dispatched task is unreachable here by
    /// construction: eviction can only ever remove queued work.
    fn evict_expired(&mut self, now: Instant) -> Vec<QueuedTask> {
        let mut evicted = Vec::new();
        while let Some(Reverse((deadline, ticket))) = self.deadlines.peek().copied() {
            if deadline > now {
                break;
            }
            self.deadlines.pop();
            if let Some(task) = self.remove_ticket(ticket) {
                self.note_expired(&task);
                evicted.push(task);
            }
        }
        evicted
    }

    /// The nearest pending deadline (possibly of a stale ticket — waking
    /// for one merely pops it from the heap).
    fn next_deadline(&self) -> Option<Instant> {
        self.deadlines.peek().map(|Reverse((when, _))| *when)
    }

    /// Pick a shed victim from `lane`: the tenant with the largest backlog
    /// in that lane that has a sheddable task (the flooder pays first),
    /// oldest sheddable task within it. Ties break on the lexicographically
    /// smaller tenant name, so the choice is deterministic.
    fn shed_victim(&mut self, lane: usize) -> Option<QueuedTask> {
        let mut best: Option<(usize, &Arc<str>)> = None;
        for (key, tenant) in self.tenants.iter() {
            if !tenant.lanes[lane].iter().any(|t| t.sheddable) {
                continue;
            }
            let backlog = tenant.lanes[lane].len();
            let better = match &best {
                None => true,
                Some((len, name)) => backlog > *len || (backlog == *len && key.as_ref() < name.as_ref()),
            };
            if better {
                best = Some((backlog, key));
            }
        }
        let key = Arc::clone(best?.1);
        let tenant = self.tenants.get_mut(&key).expect("chosen victim tenant exists");
        let index = tenant.lanes[lane].iter().position(|t| t.sheddable).expect("victim is sheddable");
        let task = tenant.lanes[lane].remove(index).expect("victim index is valid");
        self.lane_lens[lane] -= 1;
        Some(task)
    }

    /// The `ServiceStats` snapshot of this state (callers hold the lock).
    fn stats_snapshot(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.submitted,
            completed: self.completed,
            rejected: self.rejected,
            shed: self.shed,
            cancelled: self.cancelled,
            expired: self.expired,
            peak_queue_len: self.peak_queue,
            running: self.running,
            queue_len: self.queued(),
            high_queue_len: self.lane_lens[LANE_HIGH],
            normal_queue_len: self.lane_lens[LANE_NORMAL],
        }
    }
}

pub(crate) struct Inner {
    /// Unique service id for same-service nested-submission detection.
    id: usize,
    state: Mutex<QueueState>,
    /// Signals the dispatcher: task arrived / permit freed / shutdown.
    task_ready: Condvar,
    /// Signals blocked submitters: queue space freed / shutdown.
    space_ready: Condvar,
    capacity: usize,
    priority_capacity: usize,
    policy: BackpressurePolicy,
    /// The permit budget (`pool threads − dispatcher`, floor 1), computed
    /// once at construction. `drain`, the dispatcher shutdown wait and
    /// the tests all read this single source of truth — independently
    /// recomputing it in several places is how a drift deadlocks `drain`.
    max_permits: usize,
    /// Ticket source for [`QueuedTask::ticket`].
    next_ticket: AtomicUsize,
    /// [`ThreadPool::id`] of the backing pool — the work-conserving join
    /// asserts that helping only ever happens on threads that hold one of
    /// this service's executor slots (a pool worker, or the dispatcher /
    /// an inline frame, which report worker-pool id 0).
    pool_id: usize,
    /// Work-conserving dispatch (see [`ExecServiceConfig::dispatcher_executes`]).
    dispatcher_executes: bool,
}

thread_local! {
    /// Id of the service whose task the current thread is executing
    /// (0 = none). `TaskFuture::wait` uses it to decide whether it holds
    /// one of the service's permits and must help drain the queue instead
    /// of parking.
    static IN_SERVICE_TASK: Cell<usize> = const { Cell::new(0) };

    /// The tenant submissions from this thread are accounted to when the
    /// [`TaskSpec`] names none. Inside a service task, this is the task's
    /// own tenant, so nested submissions inherit it.
    static CURRENT_TENANT: RefCell<Option<Arc<str>>> = const { RefCell::new(None) };
}

/// Set (or clear) the calling thread's session tenant. Subsequent
/// submissions from this thread without an explicit [`TaskSpec::tenant`]
/// are queued and accounted under it; `None` falls back to
/// [`DEFAULT_TENANT`]. Usually set once per session thread (or via
/// [`InitOptions::tenant`]).
pub fn set_thread_tenant(tenant: Option<&str>) {
    CURRENT_TENANT.with(|current| {
        *current.borrow_mut() = tenant.map(Arc::from);
    });
}

/// The calling thread's session tenant, if one is set.
pub fn thread_tenant() -> Option<String> {
    CURRENT_TENANT.with(|current| current.borrow().as_ref().map(|t| t.to_string()))
}

fn current_tenant_key() -> Option<Arc<str>> {
    CURRENT_TENANT.with(|current| current.borrow().clone())
}

static NEXT_SERVICE_ID: AtomicUsize = AtomicUsize::new(1);

/// The context a [`TaskFuture`] keeps about the service that owns its
/// task: enough to cancel the task while queued and to help drain the
/// queue when joined from inside a task of the same service. Weak so a
/// forgotten future never keeps a dropped service's queue alive.
pub(crate) struct TaskServiceCtx {
    service: Weak<Inner>,
    service_id: usize,
    ticket: u64,
    /// The task's cooperative-cancellation token (installed around the
    /// task body); set when `cancel` arrives after dispatch.
    token: CancelToken,
}

impl TaskServiceCtx {
    /// Cancel the task if it is still queued. See [`TaskFuture::cancel`].
    pub(crate) fn cancel(&self) -> bool {
        let Some(inner) = self.service.upgrade() else { return false };
        let removed = {
            let mut st = inner.state.lock();
            let removed = st.remove_ticket(self.ticket);
            if let Some(task) = &removed {
                st.cancelled += 1;
                let key = Arc::clone(&task.tenant);
                st.tenant_mut(&key).cancelled += 1;
            }
            removed
        };
        match removed {
            Some(task) => {
                (task.cancel)();
                inner.space_ready.notify_all();
                // `drain` watches queue length through `task_ready`.
                inner.task_ready.notify_all();
                true
            }
            None => {
                // Past dispatch (or already resolved): request a
                // cooperative stop. Checkpointed task code observes the
                // token and truncates at its next safe point; the future
                // still resolves with whatever the task returns.
                self.token.cancel();
                false
            }
        }
    }

    /// The work-conserving join: while `not_ready` holds and the calling
    /// thread is executing a task of this same service, pop queued tasks
    /// and run them under the caller's permit. Returns once the future is
    /// ready or the queue is empty — in the latter case the awaited task
    /// is not queued (it is running on another permit or already
    /// resolved), so parking afterwards always terminates.
    pub(crate) fn help_drain_while(&self, not_ready: impl Fn() -> bool) {
        if IN_SERVICE_TASK.with(|owner| owner.get()) != self.service_id {
            return;
        }
        let Some(inner) = self.service.upgrade() else { return };
        // The current-worker check: a thread executing one of this
        // service's tasks is either a worker of the service's own pool or
        // the dispatcher / an inline frame (worker-pool id 0). Helping
        // from anywhere else would run tasks outside the permit budget.
        let worker_of = qcor_pool::current_worker_pool_id();
        debug_assert!(
            worker_of == 0 || worker_of == inner.pool_id,
            "work-conserving join helping from a foreign pool worker"
        );
        let _ = worker_of;
        while not_ready() {
            let (expired, task) = {
                let mut st = inner.state.lock();
                let (expired, task) = st.pop_ready();
                if let Some(task) = &task {
                    // Queue→running transition inside the pop critical
                    // section, so no snapshot sees the task in neither
                    // gauge. The task's closure retires the pair before
                    // resolving its future.
                    st.mark_running(task);
                }
                (expired, task)
            };
            let popped_any = !expired.is_empty() || task.is_some();
            resolve_expired(expired);
            let Some(task) = task else {
                if popped_any {
                    inner.space_ready.notify_all();
                    inner.task_ready.notify_all();
                }
                return;
            };
            inner.space_ready.notify_all();
            (task.run)();
            // `drain` and the dispatcher re-check queue state on this
            // signal; the helper freed queue space without moving permits.
            inner.task_ready.notify_all();
        }
    }
}

/// Resolve the futures of deadline-expired tasks (outside the queue lock —
/// the resolution sends on the result channels).
fn resolve_expired(expired: Vec<QueuedTask>) {
    for task in expired {
        (task.shed)();
    }
}

/// The async kernel-execution service. See the module docs above.
pub struct ExecutionService {
    inner: Arc<Inner>,
    pool: Arc<ThreadPool>,
    dispatcher: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ExecutionService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutionService")
            .field("capacity", &self.inner.capacity)
            .field("priority_capacity", &self.inner.priority_capacity)
            .field("policy", &self.inner.policy)
            .field("threads", &self.pool.num_threads())
            .finish()
    }
}

/// Options attached to one submission.
struct SubmitOptions {
    policy: BackpressurePolicy,
    priority: TaskPriority,
    deadline: Option<Instant>,
    tenant: Option<String>,
}

/// A submission descriptor for [`ExecutionService::submit_spec`]: tenant,
/// priority and deadline in one builder, for callers that need more than
/// the single-knob `submit_*` helpers.
///
/// ```
/// use qcor_core::{ExecServiceConfig, ExecutionService, TaskPriority, TaskSpec};
/// use std::time::Duration;
///
/// let svc = ExecutionService::new(ExecServiceConfig::default());
/// let spec = TaskSpec::new()
///     .tenant("session-42")
///     .priority(TaskPriority::High)
///     .deadline(Duration::from_secs(30));
/// let answer = svc.submit_spec(spec, || 6 * 7).unwrap();
/// assert_eq!(answer.get(), 42);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaskSpec {
    tenant: Option<String>,
    priority: TaskPriority,
    deadline: Option<Duration>,
}

impl TaskSpec {
    /// An empty spec: thread/session tenant, `Normal` priority, no
    /// deadline.
    pub fn new() -> Self {
        TaskSpec::default()
    }

    /// Queue and account the task under `tenant` (overrides the submitting
    /// thread's session tenant).
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// The lane the task joins.
    pub fn priority(mut self, priority: TaskPriority) -> Self {
        self.priority = priority;
        self
    }

    /// Evict the task (future resolves [`QcorError::TaskShed`]) if it is
    /// still queued when `timeout` has elapsed.
    pub fn deadline(mut self, timeout: Duration) -> Self {
        self.deadline = Some(timeout);
        self
    }
}

impl ExecutionService {
    /// Build a service with its own pool and dispatcher.
    pub fn new(config: ExecServiceConfig) -> Self {
        let pool = Arc::new(PoolBuilder::new().num_threads(config.threads.max(1)).name("qcor-svc").build());
        // The one place the permit budget is computed: every worker of the
        // pool is an executor slot; a team of one leaves the dispatcher
        // itself as the single (inline) executor.
        let max_permits = pool.num_threads().saturating_sub(1).max(1);
        // Later entries override earlier ones for the same tenant.
        let weights: HashMap<String, f64> = config.tenant_weights.iter().cloned().collect();
        let inner = Arc::new(Inner {
            id: NEXT_SERVICE_ID.fetch_add(1, Ordering::Relaxed),
            state: Mutex::new(QueueState::new(max_permits, weights)),
            task_ready: Condvar::new(),
            space_ready: Condvar::new(),
            capacity: config.capacity.max(1),
            priority_capacity: config.effective_priority_capacity(),
            policy: config.policy,
            max_permits,
            next_ticket: AtomicUsize::new(1),
            pool_id: pool.id(),
            dispatcher_executes: config.dispatcher_executes,
        });
        let dispatcher = {
            let inner = Arc::clone(&inner);
            let pool = Arc::clone(&pool);
            std::thread::Builder::new()
                .name("qcor-svc-dispatch".to_string())
                .spawn(move || dispatcher_loop(inner, pool))
                .expect("failed to spawn the execution-service dispatcher")
        };
        ExecutionService { inner, pool, dispatcher: Some(dispatcher) }
    }

    /// The process-wide service backing [`crate::spawn`] /
    /// [`crate::async_task`], configured from the environment
    /// (see [`ExecServiceConfig::from_env`]).
    pub fn global() -> &'static ExecutionService {
        static GLOBAL: OnceLock<ExecutionService> = OnceLock::new();
        let service = GLOBAL.get_or_init(|| ExecutionService::new(ExecServiceConfig::from_env()));
        // The debug endpoint (`QCOR_DEBUG_ENDPOINT=<addr>`, e.g.
        // `127.0.0.1:7979`) is bound at most once, on first `global()` use.
        // The listener lives for the process (the global service is never
        // dropped either), so the server handle is deliberately leaked.
        static DEBUG: OnceLock<()> = OnceLock::new();
        DEBUG.get_or_init(|| {
            if let Some(addr) = std::env::var("QCOR_DEBUG_ENDPOINT").ok().filter(|a| !a.trim().is_empty()) {
                let addr = addr.trim().to_string();
                let server = DebugServer::start(&addr, || ExecutionService::global().introspect())
                    .unwrap_or_else(|e| {
                        panic!("QCOR_DEBUG_ENDPOINT=`{addr}`: failed to bind debug listener: {e}")
                    });
                eprintln!("qcor: debug introspection endpoint listening on {}", server.local_addr());
                std::mem::forget(server);
            }
        });
        service
    }

    /// Submit `f` under the service's configured backpressure policy.
    ///
    /// The task inherits the calling thread's `InitOptions` (replayed on
    /// its executor for a fresh accelerator instance). Fails with
    /// [`QcorError::QueueFull`] under [`BackpressurePolicy::Reject`] when
    /// the queue is at capacity.
    pub fn submit<F, T>(&self, f: F) -> Result<TaskFuture<T>, QcorError>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        self.submit_with(
            SubmitOptions {
                policy: self.inner.policy,
                priority: TaskPriority::Normal,
                deadline: None,
                tenant: None,
            },
            f,
        )
    }

    /// Submit with [`BackpressurePolicy::Block`] regardless of the
    /// configured policy — the infallible path used by [`crate::spawn`].
    pub fn submit_blocking<F, T>(&self, f: F) -> Result<TaskFuture<T>, QcorError>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        self.submit_with(
            SubmitOptions {
                policy: BackpressurePolicy::Block,
                priority: TaskPriority::Normal,
                deadline: None,
                tenant: None,
            },
            f,
        )
    }

    /// Submit under a full [`TaskSpec`] (tenant + priority + deadline),
    /// under the service's configured backpressure policy.
    pub fn submit_spec<F, T>(&self, spec: TaskSpec, f: F) -> Result<TaskFuture<T>, QcorError>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        self.submit_with(
            SubmitOptions {
                policy: self.inner.policy,
                priority: spec.priority,
                deadline: spec.deadline.map(|timeout| Instant::now() + timeout),
                tenant: spec.tenant,
            },
            f,
        )
    }

    /// Submit into the given priority lane under the configured policy.
    /// `High` tasks are dispatched before all `Normal` tasks (FIFO within
    /// a lane) and are bounded by `priority_capacity`.
    pub fn submit_prioritized<F, T>(&self, priority: TaskPriority, f: F) -> Result<TaskFuture<T>, QcorError>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        self.submit_with(
            SubmitOptions { policy: self.inner.policy, priority, deadline: None, tenant: None },
            f,
        )
    }

    /// Submit with a deadline: if the task is still queued when `timeout`
    /// has elapsed, it never runs — at dispatch time it is lazily expired,
    /// its future resolves as [`QcorError::TaskShed`] and the `expired`
    /// counter ticks. A task dispatched before the deadline runs to
    /// completion regardless of how long it takes.
    pub fn submit_with_deadline<F, T>(&self, timeout: Duration, f: F) -> Result<TaskFuture<T>, QcorError>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        self.submit_with(
            SubmitOptions {
                policy: self.inner.policy,
                priority: TaskPriority::Normal,
                deadline: Some(Instant::now() + timeout),
                tenant: None,
            },
            f,
        )
    }

    fn submit_with<F, T>(&self, opts: SubmitOptions, f: F) -> Result<TaskFuture<T>, QcorError>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let inherited = inherited_task_options();
        let in_own_task = IN_SERVICE_TASK.with(|owner| owner.get()) == self.inner.id;
        let tenant: Arc<str> = match opts.tenant {
            Some(tenant) => Arc::from(tenant.as_str()),
            None => current_tenant_key().unwrap_or_else(|| Arc::from(DEFAULT_TENANT)),
        };

        let ticket = self.inner.next_ticket.fetch_add(1, Ordering::Relaxed) as u64;
        let token = CancelToken::new();
        let (tx, rx) = bounded::<TaskOutcome<T>>(1);
        let shed_tx = tx.clone();
        let cancel_tx = tx.clone();
        let service_id = self.inner.id;
        let inner_for_run = Arc::downgrade(&self.inner);
        let run_tenant = Arc::clone(&tenant);
        let run_token = token.clone();
        let run = Box::new(move || {
            let outcome = run_task_body(service_id, inherited, Arc::clone(&run_tenant), run_token, f);
            // Move the task from `running` to `completed` in one lock
            // acquisition BEFORE publishing the result: once a future
            // resolves, every stats snapshot must already count the task
            // as completed. (Weak: the service outlives all running tasks
            // — Drop joins the dispatcher — so this only fails if the
            // process is tearing the service down anyway.)
            if let Some(inner) = inner_for_run.upgrade() {
                let mut st = inner.state.lock();
                st.running -= 1;
                st.completed += 1;
                let t = st.tenant_mut(&run_tenant);
                t.running -= 1;
                t.completed += 1;
            }
            // The receiver may already be dropped (fire-and-forget).
            let _ = tx.send(outcome);
        });
        let shed = Box::new(move || {
            let _ = shed_tx.send(TaskOutcome::Shed);
        });
        let cancel = Box::new(move || {
            let _ = cancel_tx.send(TaskOutcome::Cancelled);
        });
        let task = QueuedTask {
            ticket,
            tenant: Arc::clone(&tenant),
            run,
            shed,
            cancel,
            sheddable: opts.policy == BackpressurePolicy::ShedOldest,
            deadline: opts.deadline,
        };
        let ctx = TaskServiceCtx { service: Arc::downgrade(&self.inner), service_id, ticket, token };

        let lane = lane_index(opts.priority);
        let lane_cap = match opts.priority {
            TaskPriority::High => self.inner.priority_capacity,
            TaskPriority::Normal => self.inner.capacity,
        };
        let over_capacity = |st: &QueueState| {
            st.queued() >= self.inner.capacity
                || match opts.priority {
                    TaskPriority::High => st.lane_lens[LANE_HIGH] >= lane_cap,
                    TaskPriority::Normal => false,
                }
        };

        let victim = {
            let mut st = self.inner.state.lock();
            if st.shutdown {
                return Err(QcorError::Execution("execution service is shut down".into()));
            }
            let mut victim = None;
            if over_capacity(&st) {
                match opts.policy {
                    BackpressurePolicy::Block if in_own_task => {
                        // A permit holder must never park in `space_ready`:
                        // queue space is freed by dispatch, which needs
                        // permits. Run the task inline on our own permit —
                        // the work-conserving overflow path (equivalent to
                        // enqueueing it and immediately helping it drain).
                        st.submitted += 1;
                        st.running += 1;
                        {
                            let t = st.ensure_tenant(&tenant);
                            t.submitted += 1;
                            t.running += 1;
                        }
                        drop(st);
                        run_queued_task_prelocked(&self.inner, task);
                        return Ok(TaskFuture::with_ctx(rx, ctx));
                    }
                    BackpressurePolicy::Block => {
                        while over_capacity(&st) && !st.shutdown {
                            self.inner.space_ready.wait(&mut st);
                        }
                        if st.shutdown {
                            return Err(QcorError::Execution("execution service is shut down".into()));
                        }
                    }
                    BackpressurePolicy::Reject => {
                        st.rejected += 1;
                        return Err(QcorError::QueueFull);
                    }
                    BackpressurePolicy::ShedOldest => {
                        // Shed a queued task that opted into shedding,
                        // victimizing the lane whose limit binds: a full
                        // high lane can only be relieved by a high victim;
                        // otherwise normal-lane victims go first. Within a
                        // lane, the victim comes from the tenant with the
                        // largest backlog (the flooder pays first), oldest
                        // sheddable task of that tenant. Block-admitted
                        // tasks are untouchable; if nothing sheddable is
                        // queued, the incoming submission is the only
                        // sheddable work item — it is shed itself
                        // (observable via its future), never enqueued.
                        let high_full =
                            opts.priority == TaskPriority::High && st.lane_lens[LANE_HIGH] >= lane_cap;
                        victim = if high_full {
                            st.shed_victim(LANE_HIGH)
                        } else {
                            st.shed_victim(LANE_NORMAL).or_else(|| st.shed_victim(LANE_HIGH))
                        };
                        match &victim {
                            Some(v) => {
                                st.shed += 1;
                                let key = Arc::clone(&v.tenant);
                                st.tenant_mut(&key).shed += 1;
                            }
                            None => {
                                // Admitted, then instantly shed: both
                                // counters tick so the accounting identity
                                // holds.
                                st.submitted += 1;
                                st.shed += 1;
                                {
                                    let t = st.ensure_tenant(&tenant);
                                    t.submitted += 1;
                                    t.shed += 1;
                                }
                                drop(st);
                                (task.shed)();
                                return Ok(TaskFuture::with_ctx(rx, ctx));
                            }
                        }
                    }
                }
            }
            st.enqueue(lane, task);
            victim
        };
        if let Some(victim) = victim {
            (victim.shed)();
        }
        self.inner.task_ready.notify_all();
        Ok(TaskFuture::with_ctx(rx, ctx))
    }

    /// Current total queue occupancy (both lanes).
    pub fn queue_len(&self) -> usize {
        self.inner.state.lock().queued()
    }

    /// Queue high-water mark.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// High-lane high-water mark.
    pub fn priority_capacity(&self) -> usize {
        self.inner.priority_capacity
    }

    /// The configured backpressure policy.
    pub fn policy(&self) -> BackpressurePolicy {
        self.inner.policy
    }

    /// Total team size of the backing pool (the service's thread budget).
    pub fn pool_threads(&self) -> usize {
        self.pool.num_threads()
    }

    /// The executor-permit budget: how many tasks can run concurrently.
    /// Computed once at construction (`Inner::max_permits`); everything
    /// that needs the invariant reads this field.
    pub fn permit_budget(&self) -> usize {
        self.inner.max_permits
    }

    /// Consistent counter snapshot (single lock acquisition; see
    /// [`ServiceStats`] for the invariant).
    pub fn stats(&self) -> ServiceStats {
        self.inner.state.lock().stats_snapshot()
    }

    /// A full live snapshot: [`ServiceStats`], the service's configuration
    /// surface, per-tenant gauges (one [`TenantStats`] per tenant ever
    /// seen, sorted by name) and the registry's per-backend in-flight
    /// loads. The stats and tenant rows come from **one** lock
    /// acquisition, so the per-tenant columns sum exactly to the
    /// `ServiceStats` totals and the accounting identity holds per row.
    pub fn introspect(&self) -> ServiceIntrospection {
        let (stats, mut tenants) = {
            let st = self.inner.state.lock();
            let tenants: Vec<TenantStats> = st
                .tenants
                .iter()
                .map(|(key, t)| TenantStats {
                    tenant: key.to_string(),
                    weight: t.weight,
                    submitted: t.submitted,
                    completed: t.completed,
                    running: t.running,
                    shed: t.shed,
                    cancelled: t.cancelled,
                    expired: t.expired,
                    high_queued: t.lanes[LANE_HIGH].len(),
                    normal_queued: t.lanes[LANE_NORMAL].len(),
                })
                .collect();
            (st.stats_snapshot(), tenants)
        };
        tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        ServiceIntrospection {
            stats,
            capacity: self.inner.capacity,
            priority_capacity: self.inner.priority_capacity,
            policy: self.inner.policy,
            permit_budget: self.inner.max_permits,
            pool_threads: self.pool.num_threads(),
            dispatcher_executes: self.inner.dispatcher_executes,
            tenants,
            backends: qcor_xacc::registry::global().backend_loads(),
        }
    }

    /// Block until every queued and running task has finished (queue empty
    /// and all permits free). Mainly for tests and orderly shutdowns.
    ///
    /// Must not be called from inside one of this service's own tasks —
    /// the caller would wait for its own permit to free. That misuse is
    /// detected and panics instead of deadlocking.
    pub fn drain(&self) {
        assert!(
            IN_SERVICE_TASK.with(|owner| owner.get()) != self.inner.id,
            "ExecutionService::drain called from inside one of the service's own tasks \
             (it would wait for its own permit and deadlock)"
        );
        let mut st = self.inner.state.lock();
        while st.queued() != 0 || st.permits < self.inner.max_permits || st.running != 0 {
            self.inner.task_ready.wait(&mut st);
        }
    }
}

impl Drop for ExecutionService {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock();
            st.shutdown = true;
        }
        // Wake the dispatcher (to drain and exit) and any blocked
        // submitters (to fail fast).
        self.inner.task_ready.notify_all();
        self.inner.space_ready.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
        // The pool's own Drop joins the workers afterwards.
    }
}

/// [`run_queued_task`] for the inline-overflow path, where the caller has
/// already incremented `running` under the submission lock (so the
/// admission and the gauge move atomically). The task closure itself
/// retires the `running`/`completed` pair.
fn run_queued_task_prelocked(inner: &Inner, task: QueuedTask) {
    (task.run)();
    inner.task_ready.notify_all();
}

/// Execute one task body with the per-task quantum context protocol:
/// replay the inherited `InitOptions` (fresh accelerator instance),
/// install the task's tenant and cancellation token on the executor
/// thread, run, and always restore/clear everything so worker reuse never
/// leaks state into the next task.
fn run_task_body<F, T>(
    service_id: usize,
    inherited: Option<InitOptions>,
    tenant: Arc<str>,
    token: CancelToken,
    f: F,
) -> TaskOutcome<T>
where
    F: FnOnce() -> T,
{
    let previous_owner = IN_SERVICE_TASK.with(|owner| owner.replace(service_id));
    // The task's tenant becomes the thread tenant for the task's duration,
    // so nested submissions are accounted to the same tenant; the token
    // travels the same way so checkpointed code (chunked shot sweeps,
    // `cancel_requested`) observes cooperative cancellation.
    let previous_tenant = CURRENT_TENANT.with(|current| current.replace(Some(tenant)));
    let previous_token = cancel::set_thread_cancel_token(Some(token));
    // A task run inline under another task's permit (work-conserving join
    // or inline overflow) shares its parent's OS thread: remember the
    // parent's registration so this task's `initialize` doesn't clobber it.
    let saved = if previous_owner != 0 { QPUManager::instance().get_qpu() } else { None };
    let result = catch_unwind(AssertUnwindSafe(|| {
        if let Some(opts) = inherited {
            initialize(opts).expect("re-initializing inherited backend cannot fail");
        }
        f()
    }));
    IN_SERVICE_TASK.with(|owner| owner.set(previous_owner));
    CURRENT_TENANT.with(|current| *current.borrow_mut() = previous_tenant);
    cancel::set_thread_cancel_token(previous_token);
    match saved {
        Some(parent_ctx) => QPUManager::instance().set_qpu(parent_ctx),
        None => QPUManager::instance().clear_current(),
    }
    TaskOutcome::Completed(result)
}

/// The `InitOptions` a child task inherits: the parent's options pinned
/// to the backend the parent's own initialization **resolved to**. A
/// child must get a fresh instance of the *same* backend as its parent —
/// replaying a non-pinned routing policy would re-route (advancing
/// rotation cursors) and could silently hand the child a different
/// backend class. Tasks that want routed placement call `initialize`
/// with a routing policy themselves.
fn inherited_task_options() -> Option<InitOptions> {
    QPUManager::instance().get_qpu().map(|ctx| {
        let mut opts = ctx.init;
        // The registry key routing resolved for the parent — NOT
        // `qpu.name()`, which custom services may register differently.
        opts.backend = ctx.resolved_backend;
        opts.routing = Some(crate::RoutingPolicy::Pinned);
        for key in ["routing", "routing-backends", "routing-capability"] {
            opts.params.remove(key);
        }
        opts
    })
}

/// One round of the dispatcher loop, decided under the queue lock.
enum Round {
    /// Ship the task to a pool worker under a permit.
    Dispatch(QueuedTask),
    /// Work-conserving dispatch: every permit is busy, run the task on the
    /// dispatcher thread itself.
    Inline(QueuedTask),
    /// Only evictions/expirations happened this round.
    Housekeeping,
    Exit,
}

/// The dispatcher: waits for (queued task ∧ free permit), ships the task
/// to a pool worker, and lets the worker hand its permit back on
/// completion. Admission control therefore travels all the way down: the
/// pool's internal channel never holds more tasks than there are permits.
/// Deadlines are enforced eagerly: the dispatcher never sleeps past the
/// nearest pending deadline and evicts expired tasks from their queue
/// slots as soon as it fires, permit or no permit (dispatch-time skimming
/// stays as a backstop). With `dispatcher_executes`, a queued task is run
/// inline on this thread when every permit is busy.
fn dispatcher_loop(inner: Arc<Inner>, pool: Arc<ThreadPool>) {
    loop {
        let (expired, round) = {
            let mut st = inner.state.lock();
            loop {
                let evicted = st.evict_expired(Instant::now());
                if !evicted.is_empty() {
                    break (evicted, Round::Housekeeping);
                }
                if st.queued() != 0 && (st.permits > 0 || inner.dispatcher_executes) {
                    let pooled = st.permits > 0;
                    let (expired, task) = st.pop_ready();
                    if let Some(task) = task {
                        st.mark_running(&task);
                        if pooled {
                            st.permits -= 1;
                            break (expired, Round::Dispatch(task));
                        }
                        break (expired, Round::Inline(task));
                    }
                    if !expired.is_empty() {
                        break (expired, Round::Housekeeping);
                    }
                    // Everything queued had expired; loop to re-evaluate.
                    continue;
                }
                if st.shutdown && st.queued() == 0 {
                    break (Vec::new(), Round::Exit);
                }
                match st.next_deadline() {
                    Some(deadline) => {
                        let timeout = deadline.saturating_duration_since(Instant::now());
                        if timeout.is_zero() {
                            // Already due: evict on the next iteration
                            // (the heap entry is consumed there, so this
                            // cannot spin).
                            continue;
                        }
                        let _ = inner.task_ready.wait_for(&mut st, timeout);
                    }
                    None => inner.task_ready.wait(&mut st),
                }
            }
        };
        let had_expired = !expired.is_empty();
        resolve_expired(expired);
        if had_expired {
            inner.space_ready.notify_all();
            inner.task_ready.notify_all();
        }
        let task = match round {
            Round::Dispatch(task) => task,
            Round::Inline(task) => {
                // Every permit is busy: be work-conserving and run the
                // task right here. No permit moves; the dispatcher is one
                // extra executor. The task closure retires its own
                // `running`/`completed` pair.
                inner.space_ready.notify_all();
                (task.run)();
                inner.task_ready.notify_all();
                continue;
            }
            Round::Housekeeping => continue,
            Round::Exit => break,
        };
        inner.space_ready.notify_all();
        let inner_done = Arc::clone(&inner);
        // Team of one: spawn_detached runs inline on this thread, so the
        // dispatcher itself is the (serial) executor.
        pool.spawn_detached(move || {
            // The task closure retires `running`/`completed` itself before
            // resolving its future; only the permit return lives here.
            (task.run)();
            let mut st = inner_done.state.lock();
            st.permits += 1;
            drop(st);
            inner_done.task_ready.notify_all();
        });
    }
    // Graceful shutdown: wait for in-flight tasks before the service drops
    // the pool.
    let mut st = inner.state.lock();
    while st.permits < inner.max_permits {
        inner.task_ready.wait(&mut st);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn submit_returns_value() {
        let svc = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(4));
        let f = svc.submit(|| 6 * 7).unwrap();
        assert_eq!(f.get(), 42);
        assert_eq!(svc.stats().completed, 1);
    }

    #[test]
    fn fifo_order_on_a_serial_service() {
        // One permit ⇒ strict FIFO execution in submission order.
        let svc = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(16));
        let order = Arc::new(Mutex::new(Vec::new()));
        let futures: Vec<_> = (0..8)
            .map(|i| {
                let order = Arc::clone(&order);
                svc.submit(move || {
                    order.lock().push(i);
                    i
                })
                .unwrap()
            })
            .collect();
        let values: Vec<usize> = futures.into_iter().map(|f| f.get()).collect();
        assert_eq!(values, (0..8).collect::<Vec<_>>());
        assert_eq!(*order.lock(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn reject_policy_returns_queue_full() {
        let svc = ExecutionService::new(
            ExecServiceConfig::default().threads(2).capacity(1).policy(BackpressurePolicy::Reject),
        );
        let gate = Arc::new(AtomicBool::new(false));
        // Occupy the single worker…
        let g = Arc::clone(&gate);
        let running = svc
            .submit(move || {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            })
            .unwrap();
        // …fill the queue…
        while svc.queue_len() < 1 {
            match svc.submit(|| ()) {
                Ok(_) => std::thread::yield_now(),
                Err(_) => break,
            }
        }
        // …and watch an over-submission bounce instead of silently vanishing.
        let mut rejected = false;
        for _ in 0..100 {
            match svc.submit(|| ()) {
                Err(QcorError::QueueFull) => {
                    rejected = true;
                    break;
                }
                Ok(_) => std::thread::sleep(Duration::from_millis(1)),
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        gate.store(true, Ordering::Release);
        running.get();
        assert!(rejected, "a full queue must reject under the Reject policy");
        assert!(svc.stats().rejected >= 1);
    }

    #[test]
    fn shed_oldest_resolves_victim_future_as_shed() {
        let svc = ExecutionService::new(
            ExecServiceConfig::default().threads(2).capacity(1).policy(BackpressurePolicy::ShedOldest),
        );
        let gate = Arc::new(AtomicBool::new(false));
        let g = Arc::clone(&gate);
        let blocker = svc
            .submit(move || {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            })
            .unwrap();
        // Wait until the blocker is actually running (queue empty again).
        while svc.stats().running == 0 {
            std::thread::yield_now();
        }
        let oldest = svc.submit(|| 1).unwrap(); // queued
        let newest = svc.submit(|| 2).unwrap(); // sheds `oldest`
        assert_eq!(oldest.wait(), Err(QcorError::TaskShed));
        gate.store(true, Ordering::Release);
        blocker.get();
        assert_eq!(newest.get(), 2);
        assert_eq!(svc.stats().shed, 1);
    }

    #[test]
    fn shed_oldest_never_sheds_block_admitted_tasks() {
        // A spawn-style (Block) task sits at the queue front; shed-policy
        // over-submissions must not touch it — the incoming submission is
        // shed instead, and the Block task's future stays infallible.
        let svc = ExecutionService::new(
            ExecServiceConfig::default().threads(2).capacity(1).policy(BackpressurePolicy::ShedOldest),
        );
        let gate = Arc::new(AtomicBool::new(false));
        let g = Arc::clone(&gate);
        let blocker = svc
            .submit(move || {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            })
            .unwrap();
        while svc.stats().running == 0 {
            std::thread::yield_now();
        }
        let protected = svc.submit_blocking(|| "protected").unwrap(); // Block-admitted, fills the queue
        let incoming = svc.submit(|| "incoming").unwrap(); // shed policy, no sheddable victim
        assert_eq!(incoming.wait(), Err(QcorError::TaskShed), "incoming submission must shed itself");
        gate.store(true, Ordering::Release);
        blocker.get();
        assert_eq!(protected.wait(), Ok("protected"), "Block-admitted futures are infallible");
        assert_eq!(svc.stats().shed, 1);
    }

    #[test]
    fn nested_submission_joins_without_deadlock() {
        // Team of 2 ⇒ one executor. The outer task consumes it, then
        // submits and joins a child — the child enqueues and the join
        // helps drain it onto the outer task's own permit.
        let svc = Arc::new(ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(4)));
        let svc2 = Arc::clone(&svc);
        let outer = svc.submit(move || svc2.submit(|| 21).unwrap().get() * 2).unwrap();
        assert_eq!(outer.get(), 42);
        // The nested submission is a real, counted queue citizen now.
        assert_eq!(svc.stats().submitted, 2);
        assert_eq!(svc.stats().completed, 2);
    }

    #[test]
    fn nested_block_submission_on_full_queue_runs_inline() {
        // Capacity 1, one executor. The outer task fills the queue with a
        // sibling it never joins, then over-submits under Block: instead
        // of parking in space_ready with the only permit held (deadlock),
        // the overflow submission runs inline on the outer task's permit.
        let svc = Arc::new(ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(1)));
        let svc2 = Arc::clone(&svc);
        let outer = svc
            .submit(move || {
                let filler = svc2.submit(|| 1).unwrap();
                let inline = svc2.submit(|| 2).unwrap(); // queue full ⇒ inline
                assert!(inline.is_ready(), "overflow submission must have run inline");
                inline.get() + filler.get()
            })
            .unwrap();
        assert_eq!(outer.get(), 3);
        svc.drain();
        let stats = svc.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed, 3);
    }

    #[test]
    fn cross_service_submission_enqueues_normally() {
        // A task of service A submitting to service B must go through B's
        // queue (policy + stats), not run inline on A's worker.
        let a = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(4));
        let b = Arc::new(ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(4)));
        let b2 = Arc::clone(&b);
        let out = a.submit(move || b2.submit(|| 11).unwrap().get()).unwrap().get();
        assert_eq!(out, 11);
        assert_eq!(a.stats().submitted, 1);
        assert_eq!(b.stats().submitted, 1, "cross-service submission must hit B's queue");
        assert_eq!(b.stats().completed, 1);
    }

    #[test]
    fn cross_service_submission_honors_target_policy() {
        // B has a Reject policy and a saturated queue: a task of A that
        // over-submits to B must observe QueueFull, not a silent inline run.
        let a = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(4));
        let b = Arc::new(ExecutionService::new(
            ExecServiceConfig::default().threads(2).capacity(1).policy(BackpressurePolicy::Reject),
        ));
        let gate = Arc::new(AtomicBool::new(false));
        let (g, b2) = (Arc::clone(&gate), Arc::clone(&b));
        let blocker = b
            .submit(move || {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            })
            .unwrap();
        while b.stats().running == 0 {
            std::thread::yield_now();
        }
        let filler = b.submit(|| ()).unwrap(); // occupies the queue slot
        let from_a = a.submit(move || b2.submit(|| 1).map(|f| f.get())).unwrap().get();
        assert_eq!(from_a, Err(QcorError::QueueFull));
        gate.store(true, Ordering::Release);
        blocker.get();
        filler.get();
    }

    #[test]
    fn drop_drains_queued_tasks() {
        let svc = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(64));
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let counter = Arc::clone(&counter);
            // Fire and forget: futures dropped immediately.
            let _ = svc.submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(svc);
        assert_eq!(counter.load(Ordering::Relaxed), 16, "drop must drain, not discard, queued work");
    }

    #[test]
    fn panicking_task_does_not_poison_the_service() {
        let svc = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(4));
        let bad = svc.submit(|| panic!("deliberate")).unwrap();
        let result = catch_unwind(AssertUnwindSafe(move || bad.get()));
        assert!(result.is_err());
        assert_eq!(svc.submit(|| 5).unwrap().get(), 5);
    }

    #[test]
    fn team_of_one_service_still_completes() {
        let svc = ExecutionService::new(ExecServiceConfig::default().threads(1).capacity(4));
        let futures: Vec<_> = (0..6).map(|i| svc.submit(move || i * i).unwrap()).collect();
        let got: Vec<usize> = futures.into_iter().map(|f| f.get()).collect();
        assert_eq!(got, vec![0, 1, 4, 9, 16, 25]);
    }

    #[test]
    fn team_of_one_in_task_join_drains_inline() {
        // The dispatcher itself is the executor; an in-task sibling join
        // must still make progress through the drain loop.
        let svc = Arc::new(ExecutionService::new(ExecServiceConfig::default().threads(1).capacity(8)));
        let svc2 = Arc::clone(&svc);
        let outer = svc
            .submit(move || {
                let a = svc2.submit(|| 3).unwrap();
                let b = svc2.submit(|| 4).unwrap();
                a.get() * b.get()
            })
            .unwrap();
        assert_eq!(outer.get(), 12);
    }

    #[test]
    fn permit_budget_is_single_sourced() {
        // The invariant the satellite pins: the stored budget equals the
        // (single) formula, `drain` restores it, and it is what the
        // public accessor reports.
        for threads in [1usize, 2, 3, 4, 8] {
            let svc = ExecutionService::new(ExecServiceConfig::default().threads(threads).capacity(16));
            assert_eq!(svc.permit_budget(), threads.saturating_sub(1).max(1), "threads={threads}");
            assert_eq!(svc.inner.max_permits, svc.permit_budget());
            let futures: Vec<_> = (0..8).map(|i| svc.submit(move || i).unwrap()).collect();
            for f in futures {
                f.get();
            }
            svc.drain();
            let st = svc.inner.state.lock();
            assert_eq!(st.permits, svc.inner.max_permits, "drain must restore the full budget");
        }
    }

    #[test]
    #[should_panic(expected = "drain called from inside")]
    fn drain_from_inside_a_task_panics() {
        let svc = Arc::new(ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(4)));
        let svc2 = Arc::clone(&svc);
        svc.submit(move || svc2.drain()).unwrap().get();
    }

    #[test]
    fn stats_snapshot_is_internally_consistent() {
        // Hammer the service from several submitters while polling stats:
        // every snapshot must satisfy the accounting identity exactly.
        let svc = Arc::new(ExecutionService::new(ExecServiceConfig::default().threads(3).capacity(8)));
        let stop = Arc::new(AtomicBool::new(false));
        let poller = {
            let svc = Arc::clone(&svc);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut snapshots = 0usize;
                while !stop.load(Ordering::Acquire) {
                    let s = svc.stats();
                    assert_eq!(
                        s.submitted,
                        s.completed + s.running + s.queue_len + s.shed + s.cancelled + s.expired,
                        "inconsistent snapshot: {s:?}"
                    );
                    assert_eq!(s.queue_len, s.high_queue_len + s.normal_queue_len);
                    snapshots += 1;
                }
                snapshots
            })
        };
        let submitters: Vec<_> = (0..3)
            .map(|_| {
                let svc = Arc::clone(&svc);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        svc.submit(move || i).unwrap().get();
                    }
                })
            })
            .collect();
        for s in submitters {
            s.join().unwrap();
        }
        stop.store(true, Ordering::Release);
        assert!(poller.join().unwrap() > 0);
        svc.drain();
        let s = svc.stats();
        assert_eq!((s.submitted, s.completed), (600, 600));
    }

    // ---- per-tenant fair queuing ---------------------------------------

    fn noop_task(ticket: u64, tenant: &str) -> QueuedTask {
        QueuedTask {
            ticket,
            tenant: Arc::from(tenant),
            run: Box::new(|| {}),
            shed: Box::new(|| {}),
            cancel: Box::new(|| {}),
            sheddable: false,
            deadline: None,
        }
    }

    #[test]
    fn drr_pops_follow_tenant_weights() {
        // Weight 3 vs weight 1, 8 tasks each, heavy enqueued first. The
        // deficit round robin must serve ~3 heavy per light while both
        // have backlog, then drain the leftover light tasks.
        let weights: HashMap<String, f64> = [("heavy".to_string(), 3.0)].into_iter().collect();
        let mut st = QueueState::new(1, weights);
        let mut ticket = 0u64;
        for tenant in ["heavy", "light"] {
            for _ in 0..8 {
                ticket += 1;
                st.enqueue(LANE_NORMAL, noop_task(ticket, tenant));
            }
        }
        let mut order = Vec::new();
        while let Some(task) = st.pop_lane(LANE_NORMAL) {
            order.push(task.tenant.to_string());
        }
        let expected: Vec<String> =
            ["h", "h", "h", "l", "h", "h", "h", "l", "h", "h", "l", "l", "l", "l", "l", "l"]
                .iter()
                .map(|t| if *t == "h" { "heavy".to_string() } else { "light".to_string() })
                .collect();
        assert_eq!(order, expected);
        assert_eq!(st.queued(), 0);
    }

    #[test]
    fn single_tenant_drr_degenerates_to_fifo() {
        let mut st = QueueState::new(1, HashMap::new());
        for ticket in 1..=6 {
            st.enqueue(LANE_NORMAL, noop_task(ticket, "solo"));
        }
        let order: Vec<u64> = std::iter::from_fn(|| st.pop_lane(LANE_NORMAL)).map(|t| t.ticket).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn removing_a_tenants_last_task_keeps_rotation_clean() {
        // Cancel empties tenant `b`'s lane while its rotation entry is
        // still queued; a later re-enqueue must not give `b` two rotation
        // slots (double share). Exercised via pop order: a and b keep
        // alternating at equal weight.
        let mut st = QueueState::new(1, HashMap::new());
        st.enqueue(LANE_NORMAL, noop_task(1, "a"));
        st.enqueue(LANE_NORMAL, noop_task(2, "b"));
        assert!(st.remove_ticket(2).is_some());
        st.enqueue(LANE_NORMAL, noop_task(3, "b"));
        st.enqueue(LANE_NORMAL, noop_task(4, "a"));
        st.enqueue(LANE_NORMAL, noop_task(5, "b"));
        let order: Vec<(String, u64)> = std::iter::from_fn(|| st.pop_lane(LANE_NORMAL))
            .map(|t| (t.tenant.to_string(), t.ticket))
            .collect();
        // Equal weights ⇒ strict alternation while both have backlog.
        assert_eq!(
            order,
            vec![("a".to_string(), 1), ("b".to_string(), 3), ("a".to_string(), 4), ("b".to_string(), 5)]
        );
    }

    #[test]
    fn weighted_shares_converge_under_saturation() {
        // A flooder (weight 1) pre-loads a deep backlog; a favored tenant
        // (weight 3) then lands its batch. While both queues are
        // non-empty the favored tenant must finish well before the
        // flooder's backlog clears — its tasks are interleaved at 3×.
        let svc = ExecutionService::new(
            ExecServiceConfig::default().threads(2).capacity(256).tenant_weight("favored", 3.0),
        );
        let gate = Arc::new(AtomicBool::new(false));
        let g = Arc::clone(&gate);
        let blocker = svc
            .submit(move || {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            })
            .unwrap();
        while svc.stats().running == 0 {
            std::thread::yield_now();
        }
        let completion_log = Arc::new(Mutex::new(Vec::new()));
        let mut futures = Vec::new();
        for i in 0..60 {
            let log = Arc::clone(&completion_log);
            futures.push(
                svc.submit_spec(TaskSpec::new().tenant("flooder"), move || log.lock().push(("f", i)))
                    .unwrap(),
            );
        }
        for i in 0..20 {
            let log = Arc::clone(&completion_log);
            futures.push(
                svc.submit_spec(TaskSpec::new().tenant("favored"), move || log.lock().push(("v", i)))
                    .unwrap(),
            );
        }
        gate.store(true, Ordering::Release);
        blocker.get();
        for f in futures {
            f.get();
        }
        let log = completion_log.lock();
        let last_favored = log.iter().rposition(|(t, _)| *t == "v").unwrap();
        let favored_before: usize = log[..=last_favored].iter().filter(|(t, _)| *t == "v").count();
        let flooder_before: usize = log[..=last_favored].iter().filter(|(t, _)| *t == "f").count();
        assert_eq!(favored_before, 20);
        // At weight 3 vs 1 the favored batch of 20 completes alongside
        // ~⌈20/3⌉·1 ≈ 7 flooder tasks; allow generous slack but require
        // it to clear long before the 60-deep flooder backlog does.
        assert!(
            flooder_before <= 20,
            "favored tenant starved: {flooder_before} flooder tasks finished before its batch"
        );
        let stats = svc.stats();
        assert_eq!(stats.completed, 81);
    }

    #[test]
    fn tenant_resolution_spec_thread_default() {
        let svc = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(16));
        svc.submit(|| ()).unwrap().get(); // default tenant
        set_thread_tenant(Some("session-7"));
        svc.submit(|| ()).unwrap().get(); // thread tenant
        let explicit = TaskSpec::new().tenant("explicit");
        svc.submit_spec(explicit, || ()).unwrap().get(); // spec wins
        set_thread_tenant(None);
        svc.drain();
        let snap = svc.introspect();
        let names: Vec<&str> = snap.tenants.iter().map(|t| t.tenant.as_str()).collect();
        assert_eq!(names, vec![DEFAULT_TENANT, "explicit", "session-7"]);
        assert!(snap.tenants.iter().all(|t| t.submitted == 1 && t.completed == 1));
    }

    #[test]
    fn nested_submissions_inherit_the_parent_tenant() {
        let svc = Arc::new(ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(16)));
        let svc2 = Arc::clone(&svc);
        svc.submit_spec(TaskSpec::new().tenant("parent"), move || {
            assert_eq!(thread_tenant().as_deref(), Some("parent"));
            svc2.submit(|| ()).unwrap().get()
        })
        .unwrap()
        .get();
        svc.drain();
        let snap = svc.introspect();
        let parent = snap.tenants.iter().find(|t| t.tenant == "parent").unwrap();
        assert_eq!((parent.submitted, parent.completed), (2, 2), "child must inherit `parent`");
    }

    #[test]
    fn per_tenant_gauges_sum_to_totals() {
        let svc = ExecutionService::new(ExecServiceConfig::default().threads(3).capacity(64));
        let mut futures = Vec::new();
        for (tenant, n) in [("a", 5), ("b", 3), ("c", 7)] {
            for i in 0..n {
                futures.push(svc.submit_spec(TaskSpec::new().tenant(tenant), move || i).unwrap());
            }
        }
        for f in futures {
            f.get();
        }
        svc.drain();
        let snap = svc.introspect();
        let s = snap.stats;
        assert_eq!(s.submitted, s.completed + s.running + s.queue_len + s.shed + s.cancelled + s.expired);
        let sum = |f: fn(&TenantStats) -> usize| snap.tenants.iter().map(f).sum::<usize>();
        assert_eq!(sum(|t| t.submitted), s.submitted);
        assert_eq!(sum(|t| t.completed), s.completed);
        assert_eq!(sum(|t| t.running), s.running);
        assert_eq!(sum(|t| t.shed), s.shed);
        assert_eq!(sum(|t| t.cancelled), s.cancelled);
        assert_eq!(sum(|t| t.expired), s.expired);
        assert_eq!(sum(|t| t.queued()), s.queue_len);
        for t in &snap.tenants {
            assert_eq!(
                t.submitted,
                t.completed + t.running + t.queued() + t.shed + t.cancelled + t.expired,
                "identity violated for {t:?}"
            );
        }
    }

    // ---- eager deadline eviction ---------------------------------------

    #[test]
    fn eager_eviction_removes_expired_tasks_without_a_free_permit() {
        // One permit, held by a blocker for the whole test. The doomed
        // task's 5ms deadline must tick `expired` while the permit is
        // still busy — that is the eager heap at work; lazy dispatch-time
        // expiry could never fire here.
        let svc = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(8));
        let gate = Arc::new(AtomicBool::new(false));
        let g = Arc::clone(&gate);
        let blocker = svc
            .submit(move || {
                while !g.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
            .unwrap();
        while svc.stats().running == 0 {
            std::thread::yield_now();
        }
        let doomed = svc.submit_with_deadline(Duration::from_millis(5), || 1).unwrap();
        let deadline_observed = Instant::now() + Duration::from_secs(10);
        while svc.stats().expired == 0 {
            assert!(
                Instant::now() < deadline_observed,
                "eager eviction did not fire while the permit was busy: {:?}",
                svc.stats()
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        // Evicted while the blocker still runs: queue slot freed eagerly.
        let s = svc.stats();
        assert_eq!((s.expired, s.queue_len, s.running), (1, 0, 1), "{s:?}");
        assert_eq!(doomed.wait(), Err(QcorError::TaskShed));
        gate.store(true, Ordering::Release);
        blocker.get();
    }

    #[test]
    fn eager_eviction_never_drops_a_dispatched_task() {
        // The deadline fires mid-execution: the heap entry surfaces, finds
        // the ticket no longer queued, and must leave the running task
        // alone — it completes normally and `expired` stays 0.
        let svc = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(8));
        let slow = svc
            .submit_with_deadline(Duration::from_millis(20), || {
                std::thread::sleep(Duration::from_millis(80));
                17
            })
            .unwrap();
        // Dispatched immediately (idle permit), runs past its deadline.
        assert_eq!(slow.wait(), Ok(17));
        std::thread::sleep(Duration::from_millis(30)); // let the heap entry surface
        let s = svc.stats();
        assert_eq!((s.expired, s.completed), (0, 1), "{s:?}");
    }

    // ---- cooperative cancellation --------------------------------------

    #[test]
    fn cancel_after_dispatch_requests_cooperative_stop() {
        let svc = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(8));
        let f = svc
            .submit(|| {
                while !qcor_sim::cancel_requested() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                7
            })
            .unwrap();
        while svc.stats().running == 0 {
            std::thread::yield_now();
        }
        assert!(!f.cancel(), "a dispatched task reports false from cancel()");
        assert_eq!(f.get(), 7, "the cooperative stop lets the task finish with its partial result");
        assert_eq!(svc.stats().cancelled, 0, "cooperative stop is not a queue-cancel");
    }

    // ---- work-conserving dispatcher ------------------------------------

    #[test]
    fn work_conserving_dispatcher_executes_inline() {
        // One permit, blocked; with dispatcher_executes the second task
        // must complete anyway (on the dispatcher thread).
        let svc = ExecutionService::new(
            ExecServiceConfig::default().threads(2).capacity(8).dispatcher_executes(true),
        );
        let gate = Arc::new(AtomicBool::new(false));
        let g = Arc::clone(&gate);
        let blocker = svc
            .submit(move || {
                while !g.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                "blocker"
            })
            .unwrap();
        while svc.stats().running == 0 {
            std::thread::yield_now();
        }
        let overflow = svc.submit(|| "inline").unwrap();
        assert_eq!(overflow.get(), "inline", "must run while the only permit is busy");
        assert_eq!(svc.stats().running, 1, "the blocker is still holding the permit");
        gate.store(true, Ordering::Release);
        assert_eq!(blocker.get(), "blocker");
        svc.drain();
        let s = svc.stats();
        assert_eq!((s.submitted, s.completed), (2, 2));
    }

    // ---- loud env parsing (satellite: no silent clamps) ----------------

    fn env<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |key| pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| v.to_string())
    }

    #[test]
    fn from_env_reader_parses_every_knob() {
        let cfg = ExecServiceConfig::from_env_reader(env(&[
            ("QCOR_QUEUE_CAPACITY", "17"),
            ("QCOR_QUEUE_PRIORITY_CAPACITY", "5"),
            ("QCOR_SERVICE_THREADS", "3"),
            ("QCOR_QUEUE_POLICY", "shed-oldest"),
            ("QCOR_TENANT_WEIGHTS", "alice=2.5, bob=1"),
            ("QCOR_DISPATCHER_EXECUTES", "on"),
        ]));
        assert_eq!(cfg.capacity, 17);
        assert_eq!(cfg.priority_capacity, Some(5));
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.policy, BackpressurePolicy::ShedOldest);
        assert_eq!(cfg.tenant_weights, vec![("alice".to_string(), 2.5), ("bob".to_string(), 1.0)]);
        assert!(cfg.dispatcher_executes);
    }

    #[test]
    #[should_panic(expected = "QCOR_QUEUE_CAPACITY=`0` is not a positive integer")]
    fn from_env_reader_rejects_zero_capacity() {
        // The satellite fix: zero used to be silently clamped to 1.
        let _ = ExecServiceConfig::from_env_reader(env(&[("QCOR_QUEUE_CAPACITY", "0")]));
    }

    #[test]
    #[should_panic(expected = "QCOR_SERVICE_THREADS=`many` is not a positive integer")]
    fn from_env_reader_rejects_garbage_threads() {
        let _ = ExecServiceConfig::from_env_reader(env(&[("QCOR_SERVICE_THREADS", "many")]));
    }

    #[test]
    #[should_panic(expected = "QCOR_TENANT_WEIGHTS weight `fast` for `alice` is not a number")]
    fn from_env_reader_rejects_bad_tenant_weight() {
        let _ = ExecServiceConfig::from_env_reader(env(&[("QCOR_TENANT_WEIGHTS", "alice=fast")]));
    }

    #[test]
    #[should_panic(expected = "is invalid")]
    fn from_env_reader_rejects_nonpositive_tenant_weight() {
        let _ = ExecServiceConfig::from_env_reader(env(&[("QCOR_TENANT_WEIGHTS", "alice=0")]));
    }

    #[test]
    #[should_panic(expected = "QCOR_DISPATCHER_EXECUTES=`maybe` is not a boolean token")]
    fn from_env_reader_rejects_bad_bool() {
        let _ = ExecServiceConfig::from_env_reader(env(&[("QCOR_DISPATCHER_EXECUTES", "maybe")]));
    }
}
