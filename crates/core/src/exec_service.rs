//! The asynchronous kernel-execution service: a bounded task queue with
//! configurable backpressure, drained onto a shared [`ThreadPool`].
//!
//! [`crate::async_task`] (paper Listing 5) originally spawned one OS
//! thread per task — unbounded under submission pressure. The service
//! replaces that with the shape the ROADMAP's north star asks for:
//!
//! * **Bounded queue** — submissions land in a FIFO queue with a
//!   high-water mark (`capacity`). Once full, the configured
//!   [`BackpressurePolicy`] decides: `Block` the submitter, `Reject` the
//!   submission with [`QcorError::QueueFull`], or `ShedOldest` — admit the
//!   new task and resolve the oldest **shed-admitted** queued task's
//!   future as shed ([`QcorError::TaskShed`]), never dropping work
//!   silently. Block-admitted tasks (`spawn`/`async_task`) are never
//!   shed — their futures stay infallible; if only such tasks are queued,
//!   the incoming shed-policy submission is itself shed instead.
//! * **Fixed thread budget** — a dispatcher thread ships queued tasks to
//!   the workers of one shared [`ThreadPool`]
//!   ([`ThreadPool::spawn_detached`]), one permit per worker, so no matter
//!   how many submissions are in flight, at most *pool-size* threads ever
//!   execute tasks. A team of one degenerates to the dispatcher draining
//!   the queue serially.
//! * **Per-task quantum context** — each task replays the submitting
//!   thread's `InitOptions` on its worker (fresh accelerator instance via
//!   the cloneable registry, exactly like the old per-thread wrapper) and
//!   clears the `QPUManager` registration afterwards, so worker reuse
//!   never leaks state between tasks.
//!
//! Nested submissions to the **same service** from inside a running task
//! execute inline on the worker (mirroring nested `submit_batch`), which
//! guarantees forward progress: a task blocking on a child future can
//! never deadlock the team. Submissions to a *different* service enqueue
//! normally under that service's own policy and stats.
//!
//! The one pattern a bounded executor cannot absorb (the standard
//! trade-off of every fixed-size pool): tasks that block on futures of
//! **sibling** top-level tasks. If every executor slot holds a task
//! waiting on a future whose task is still queued behind it, the service
//! stalls — the inline escape only covers submissions *created by* the
//! running task. Keep cross-task joins in the submitting thread, or size
//! `threads` above the depth of such chains (a work-conserving join is a
//! recorded follow-up).

use crate::qpu_manager::QPUManager;
use crate::runtime::{initialize, InitOptions};
use crate::threading::{TaskFuture, TaskOutcome};
use crate::QcorError;
use crossbeam::channel::bounded;
use parking_lot::{Condvar, Mutex};
use qcor_pool::{num_threads_from_env, PoolBuilder, ThreadPool};
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

/// What happens to a submission once the queue is at its high-water mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Block the submitting thread until the queue has room (the default —
    /// submission pressure propagates to the producers).
    Block,
    /// Fail the submission with [`QcorError::QueueFull`].
    Reject,
    /// Admit the new task and shed the oldest **shed-admitted** queued
    /// task: its future resolves to [`QcorError::TaskShed`] instead of a
    /// value. Block-admitted tasks (`spawn`) are never shed; if none of
    /// the queued tasks is sheddable, the incoming submission itself is
    /// shed.
    ShedOldest,
}

/// Configuration for an [`ExecutionService`].
#[derive(Debug, Clone)]
pub struct ExecServiceConfig {
    /// Queue high-water mark (≥ 1).
    pub capacity: usize,
    /// Total pool team size, including the dispatcher (≥ 1): at most
    /// `threads` OS threads ever execute tasks.
    pub threads: usize,
    /// Policy applied by [`ExecutionService::submit`] when the queue is
    /// full.
    pub policy: BackpressurePolicy,
}

impl Default for ExecServiceConfig {
    fn default() -> Self {
        ExecServiceConfig {
            capacity: 256,
            threads: num_threads_from_env().max(4),
            policy: BackpressurePolicy::Block,
        }
    }
}

impl ExecServiceConfig {
    /// Builder-style capacity.
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Builder-style team size.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Builder-style backpressure policy.
    pub fn policy(mut self, policy: BackpressurePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The global service's configuration: `QCOR_QUEUE_CAPACITY`,
    /// `QCOR_SERVICE_THREADS` (default: `QCOR_NUM_THREADS` with a floor of
    /// 4, so task-level latency overlap survives 1-CPU hosts — the §IV-A
    /// cloud scenario needs ≥ 2 concurrent tasks even without cores) and
    /// `QCOR_QUEUE_POLICY` (`block` | `reject` | `shed-oldest`).
    pub fn from_env() -> Self {
        let mut cfg = ExecServiceConfig::default();
        if let Some(cap) = std::env::var("QCOR_QUEUE_CAPACITY").ok().and_then(|v| v.parse::<usize>().ok()) {
            cfg.capacity = cap.max(1);
        }
        if let Some(threads) =
            std::env::var("QCOR_SERVICE_THREADS").ok().and_then(|v| v.parse::<usize>().ok())
        {
            cfg.threads = threads.max(1);
        }
        if let Ok(policy) = std::env::var("QCOR_QUEUE_POLICY") {
            cfg.policy = match policy.as_str() {
                "block" => BackpressurePolicy::Block,
                "reject" => BackpressurePolicy::Reject,
                "shed-oldest" => BackpressurePolicy::ShedOldest,
                // Loud failure beats silently blocking under a policy the
                // operator didn't ask for (same stance as qpp's unknown
                // `granularity` values).
                other => panic!(
                    "QCOR_QUEUE_POLICY=`{other}` is not a backpressure policy \
                     (expected block | reject | shed-oldest)"
                ),
            };
        }
        cfg
    }
}

/// Snapshot of a service's counters (all monotone except the gauges
/// `queue_len` and `running`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Tasks admitted to the queue.
    pub submitted: usize,
    /// Tasks that ran to completion (including panicked tasks).
    pub completed: usize,
    /// Submissions refused under [`BackpressurePolicy::Reject`].
    pub rejected: usize,
    /// Queued tasks dropped under [`BackpressurePolicy::ShedOldest`].
    pub shed: usize,
    /// Highest queue occupancy observed.
    pub peak_queue_len: usize,
    /// Tasks currently executing on the pool.
    pub running: usize,
    /// Tasks currently queued.
    pub queue_len: usize,
}

struct QueuedTask {
    run: Box<dyn FnOnce() + Send>,
    shed: Box<dyn FnOnce() + Send>,
    /// Only submissions admitted under [`BackpressurePolicy::ShedOldest`]
    /// opt into being shed; Block-admitted tasks (`spawn`/`async_task`)
    /// keep their infallible-future contract.
    sheddable: bool,
}

struct QueueState {
    queue: VecDeque<QueuedTask>,
    /// Free executor slots (pool workers; 1 for a team-of-one service).
    permits: usize,
    shutdown: bool,
}

struct Inner {
    /// Unique service id for same-service nested-submission detection.
    id: usize,
    state: Mutex<QueueState>,
    /// Signals the dispatcher: task arrived / permit freed / shutdown.
    task_ready: Condvar,
    /// Signals blocked submitters: queue space freed / shutdown.
    space_ready: Condvar,
    capacity: usize,
    policy: BackpressurePolicy,
    submitted: AtomicUsize,
    completed: AtomicUsize,
    rejected: AtomicUsize,
    shed: AtomicUsize,
    peak_queue: AtomicUsize,
    running: AtomicUsize,
}

thread_local! {
    /// Id of the service whose task the current thread is executing
    /// (0 = none). A nested submission to the **same** service runs
    /// inline (forward progress); submissions to a *different* service
    /// enqueue normally and keep that service's policy and stats honest.
    static IN_SERVICE_TASK: Cell<usize> = const { Cell::new(0) };
}

static NEXT_SERVICE_ID: AtomicUsize = AtomicUsize::new(1);

/// The async kernel-execution service. See the [module docs](self).
pub struct ExecutionService {
    inner: Arc<Inner>,
    pool: Arc<ThreadPool>,
    dispatcher: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ExecutionService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutionService")
            .field("capacity", &self.inner.capacity)
            .field("policy", &self.inner.policy)
            .field("threads", &self.pool.num_threads())
            .finish()
    }
}

impl ExecutionService {
    /// Build a service with its own pool and dispatcher.
    pub fn new(config: ExecServiceConfig) -> Self {
        let pool = Arc::new(PoolBuilder::new().num_threads(config.threads.max(1)).name("qcor-svc").build());
        let inner = Arc::new(Inner {
            id: NEXT_SERVICE_ID.fetch_add(1, Ordering::Relaxed),
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                permits: pool.num_threads().saturating_sub(1).max(1),
                shutdown: false,
            }),
            task_ready: Condvar::new(),
            space_ready: Condvar::new(),
            capacity: config.capacity.max(1),
            policy: config.policy,
            submitted: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            rejected: AtomicUsize::new(0),
            shed: AtomicUsize::new(0),
            peak_queue: AtomicUsize::new(0),
            running: AtomicUsize::new(0),
        });
        let dispatcher = {
            let inner = Arc::clone(&inner);
            let pool = Arc::clone(&pool);
            std::thread::Builder::new()
                .name("qcor-svc-dispatch".to_string())
                .spawn(move || dispatcher_loop(inner, pool))
                .expect("failed to spawn the execution-service dispatcher")
        };
        ExecutionService { inner, pool, dispatcher: Some(dispatcher) }
    }

    /// The process-wide service backing [`crate::spawn`] /
    /// [`crate::async_task`], configured from the environment
    /// (see [`ExecServiceConfig::from_env`]).
    pub fn global() -> &'static ExecutionService {
        static GLOBAL: OnceLock<ExecutionService> = OnceLock::new();
        GLOBAL.get_or_init(|| ExecutionService::new(ExecServiceConfig::from_env()))
    }

    /// Submit `f` under the service's configured backpressure policy.
    ///
    /// The task inherits the calling thread's `InitOptions` (replayed on
    /// its executor for a fresh accelerator instance). Fails with
    /// [`QcorError::QueueFull`] under [`BackpressurePolicy::Reject`] when
    /// the queue is at capacity.
    pub fn submit<F, T>(&self, f: F) -> Result<TaskFuture<T>, QcorError>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        self.submit_with(self.inner.policy, f)
    }

    /// Submit with [`BackpressurePolicy::Block`] regardless of the
    /// configured policy — the infallible path used by [`crate::spawn`].
    pub fn submit_blocking<F, T>(&self, f: F) -> Result<TaskFuture<T>, QcorError>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        self.submit_with(BackpressurePolicy::Block, f)
    }

    fn submit_with<F, T>(&self, policy: BackpressurePolicy, f: F) -> Result<TaskFuture<T>, QcorError>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let inherited = inherited_task_options();
        if IN_SERVICE_TASK.with(|owner| owner.get()) == self.inner.id {
            // Nested submission to the *same* service from inside one of
            // its running tasks: execute inline so a parent blocking on
            // this future cannot starve the team. Submissions to other
            // services enqueue normally (their policy and stats apply).
            return Ok(TaskFuture::ready(run_task_body(self.inner.id, inherited, f)));
        }

        let (tx, rx) = bounded::<TaskOutcome<T>>(1);
        let shed_tx = tx.clone();
        let inner = Arc::clone(&self.inner);
        let run = Box::new(move || {
            inner.running.fetch_add(1, Ordering::Relaxed);
            let outcome = run_task_body(inner.id, inherited, f);
            inner.running.fetch_sub(1, Ordering::Relaxed);
            inner.completed.fetch_add(1, Ordering::Relaxed);
            // The receiver may already be dropped (fire-and-forget).
            let _ = tx.send(outcome);
        });
        let shed = Box::new(move || {
            let _ = shed_tx.send(TaskOutcome::Shed);
        });
        let task = QueuedTask { run, shed, sheddable: policy == BackpressurePolicy::ShedOldest };

        let victim = {
            let mut st = self.inner.state.lock();
            if st.shutdown {
                return Err(QcorError::Execution("execution service is shut down".into()));
            }
            let mut victim = None;
            if st.queue.len() >= self.inner.capacity {
                match policy {
                    BackpressurePolicy::Block => {
                        while st.queue.len() >= self.inner.capacity && !st.shutdown {
                            self.inner.space_ready.wait(&mut st);
                        }
                        if st.shutdown {
                            return Err(QcorError::Execution("execution service is shut down".into()));
                        }
                    }
                    BackpressurePolicy::Reject => {
                        self.inner.rejected.fetch_add(1, Ordering::Relaxed);
                        return Err(QcorError::QueueFull);
                    }
                    BackpressurePolicy::ShedOldest => {
                        // Shed the oldest task that opted into shedding.
                        // Block-admitted tasks are untouchable; if nothing
                        // sheddable is queued, the incoming submission is
                        // the only sheddable work item — it is shed itself
                        // (observable via its future), never enqueued.
                        match st.queue.iter().position(|t| t.sheddable) {
                            Some(index) => victim = st.queue.remove(index),
                            None => {
                                drop(st);
                                self.inner.shed.fetch_add(1, Ordering::Relaxed);
                                (task.shed)();
                                return Ok(TaskFuture::new(rx));
                            }
                        }
                    }
                }
            }
            st.queue.push_back(task);
            self.inner.submitted.fetch_add(1, Ordering::Relaxed);
            self.inner.peak_queue.fetch_max(st.queue.len(), Ordering::Relaxed);
            victim
        };
        if let Some(victim) = victim {
            self.inner.shed.fetch_add(1, Ordering::Relaxed);
            (victim.shed)();
        }
        self.inner.task_ready.notify_all();
        Ok(TaskFuture::new(rx))
    }

    /// Current queue occupancy.
    pub fn queue_len(&self) -> usize {
        self.inner.state.lock().queue.len()
    }

    /// Queue high-water mark.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// The configured backpressure policy.
    pub fn policy(&self) -> BackpressurePolicy {
        self.inner.policy
    }

    /// Total team size of the backing pool (the service's thread budget).
    pub fn pool_threads(&self) -> usize {
        self.pool.num_threads()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed),
            peak_queue_len: self.inner.peak_queue.load(Ordering::Relaxed),
            running: self.inner.running.load(Ordering::Relaxed),
            queue_len: self.queue_len(),
        }
    }

    /// Block until every queued and running task has finished (queue empty
    /// and all permits free). Mainly for tests and orderly shutdowns.
    pub fn drain(&self) {
        let max_permits = self.pool.num_threads().saturating_sub(1).max(1);
        let mut st = self.inner.state.lock();
        while !st.queue.is_empty() || st.permits < max_permits {
            self.inner.task_ready.wait(&mut st);
        }
    }
}

impl Drop for ExecutionService {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock();
            st.shutdown = true;
        }
        // Wake the dispatcher (to drain and exit) and any blocked
        // submitters (to fail fast).
        self.inner.task_ready.notify_all();
        self.inner.space_ready.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
        // The pool's own Drop joins the workers afterwards.
    }
}

/// Execute one task body with the per-task quantum context protocol:
/// replay the inherited `InitOptions` (fresh accelerator instance), run,
/// and always clear the executor thread's registration so worker reuse
/// never leaks state into the next task.
fn run_task_body<F, T>(service_id: usize, inherited: Option<InitOptions>, f: F) -> TaskOutcome<T>
where
    F: FnOnce() -> T,
{
    let previous_owner = IN_SERVICE_TASK.with(|owner| owner.replace(service_id));
    // A nested inline task shares its parent's OS thread: remember the
    // parent's registration so the child's `initialize` doesn't clobber it.
    let saved = if previous_owner != 0 { QPUManager::instance().get_qpu() } else { None };
    let result = catch_unwind(AssertUnwindSafe(|| {
        if let Some(opts) = inherited {
            initialize(opts).expect("re-initializing inherited backend cannot fail");
        }
        f()
    }));
    IN_SERVICE_TASK.with(|owner| owner.set(previous_owner));
    match saved {
        Some(parent_ctx) => QPUManager::instance().set_qpu(parent_ctx),
        None => QPUManager::instance().clear_current(),
    }
    TaskOutcome::Completed(result)
}

/// The `InitOptions` a child task inherits: the parent's options pinned
/// to the backend the parent's own initialization **resolved to**. A
/// child must get a fresh instance of the *same* backend as its parent —
/// replaying a non-pinned routing policy would re-route (advancing
/// rotation cursors) and could silently hand the child a different
/// backend class. Tasks that want routed placement call `initialize`
/// with a routing policy themselves.
fn inherited_task_options() -> Option<InitOptions> {
    QPUManager::instance().get_qpu().map(|ctx| {
        let mut opts = ctx.init;
        // The registry key routing resolved for the parent — NOT
        // `qpu.name()`, which custom services may register differently.
        opts.backend = ctx.resolved_backend;
        opts.routing = Some(crate::RoutingPolicy::Pinned);
        for key in ["routing", "routing-backends", "routing-capability"] {
            opts.params.remove(key);
        }
        opts
    })
}

/// The dispatcher: waits for (queued task ∧ free permit), ships the task
/// to a pool worker, and lets the worker hand its permit back on
/// completion. Admission control therefore travels all the way down: the
/// pool's internal channel never holds more tasks than there are permits.
fn dispatcher_loop(inner: Arc<Inner>, pool: Arc<ThreadPool>) {
    let max_permits = pool.num_threads().saturating_sub(1).max(1);
    loop {
        let task = {
            let mut st = inner.state.lock();
            loop {
                if !st.queue.is_empty() && st.permits > 0 {
                    st.permits -= 1;
                    break st.queue.pop_front();
                }
                if st.shutdown && st.queue.is_empty() {
                    break None;
                }
                inner.task_ready.wait(&mut st);
            }
        };
        let Some(task) = task else { break };
        inner.space_ready.notify_all();
        let inner_done = Arc::clone(&inner);
        // Team of one: spawn_detached runs inline on this thread, so the
        // dispatcher itself is the (serial) executor.
        pool.spawn_detached(move || {
            (task.run)();
            let mut st = inner_done.state.lock();
            st.permits += 1;
            drop(st);
            inner_done.task_ready.notify_all();
        });
    }
    // Graceful shutdown: wait for in-flight tasks before the service drops
    // the pool.
    let mut st = inner.state.lock();
    while st.permits < max_permits {
        inner.task_ready.wait(&mut st);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    #[test]
    fn submit_returns_value() {
        let svc = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(4));
        let f = svc.submit(|| 6 * 7).unwrap();
        assert_eq!(f.get(), 42);
        assert_eq!(svc.stats().completed, 1);
    }

    #[test]
    fn fifo_order_on_a_serial_service() {
        // One permit ⇒ strict FIFO execution in submission order.
        let svc = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(16));
        let order = Arc::new(Mutex::new(Vec::new()));
        let futures: Vec<_> = (0..8)
            .map(|i| {
                let order = Arc::clone(&order);
                svc.submit(move || {
                    order.lock().push(i);
                    i
                })
                .unwrap()
            })
            .collect();
        let values: Vec<usize> = futures.into_iter().map(|f| f.get()).collect();
        assert_eq!(values, (0..8).collect::<Vec<_>>());
        assert_eq!(*order.lock(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn reject_policy_returns_queue_full() {
        let svc = ExecutionService::new(
            ExecServiceConfig::default().threads(2).capacity(1).policy(BackpressurePolicy::Reject),
        );
        let gate = Arc::new(AtomicBool::new(false));
        // Occupy the single worker…
        let g = Arc::clone(&gate);
        let running = svc
            .submit(move || {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            })
            .unwrap();
        // …fill the queue…
        while svc.queue_len() < 1 {
            match svc.submit(|| ()) {
                Ok(_) => std::thread::yield_now(),
                Err(_) => break,
            }
        }
        // …and watch an over-submission bounce instead of silently vanishing.
        let mut rejected = false;
        for _ in 0..100 {
            match svc.submit(|| ()) {
                Err(QcorError::QueueFull) => {
                    rejected = true;
                    break;
                }
                Ok(_) => std::thread::sleep(Duration::from_millis(1)),
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        gate.store(true, Ordering::Release);
        running.get();
        assert!(rejected, "a full queue must reject under the Reject policy");
        assert!(svc.stats().rejected >= 1);
    }

    #[test]
    fn shed_oldest_resolves_victim_future_as_shed() {
        let svc = ExecutionService::new(
            ExecServiceConfig::default().threads(2).capacity(1).policy(BackpressurePolicy::ShedOldest),
        );
        let gate = Arc::new(AtomicBool::new(false));
        let g = Arc::clone(&gate);
        let blocker = svc
            .submit(move || {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            })
            .unwrap();
        // Wait until the blocker is actually running (queue empty again).
        while svc.stats().running == 0 {
            std::thread::yield_now();
        }
        let oldest = svc.submit(|| 1).unwrap(); // queued
        let newest = svc.submit(|| 2).unwrap(); // sheds `oldest`
        assert_eq!(oldest.wait(), Err(QcorError::TaskShed));
        gate.store(true, Ordering::Release);
        blocker.get();
        assert_eq!(newest.get(), 2);
        assert_eq!(svc.stats().shed, 1);
    }

    #[test]
    fn shed_oldest_never_sheds_block_admitted_tasks() {
        // A spawn-style (Block) task sits at the queue front; shed-policy
        // over-submissions must not touch it — the incoming submission is
        // shed instead, and the Block task's future stays infallible.
        let svc = ExecutionService::new(
            ExecServiceConfig::default().threads(2).capacity(1).policy(BackpressurePolicy::ShedOldest),
        );
        let gate = Arc::new(AtomicBool::new(false));
        let g = Arc::clone(&gate);
        let blocker = svc
            .submit(move || {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            })
            .unwrap();
        while svc.stats().running == 0 {
            std::thread::yield_now();
        }
        let protected = svc.submit_blocking(|| "protected").unwrap(); // Block-admitted, fills the queue
        let incoming = svc.submit(|| "incoming").unwrap(); // shed policy, no sheddable victim
        assert_eq!(incoming.wait(), Err(QcorError::TaskShed), "incoming submission must shed itself");
        gate.store(true, Ordering::Release);
        blocker.get();
        assert_eq!(protected.wait(), Ok("protected"), "Block-admitted futures are infallible");
        assert_eq!(svc.stats().shed, 1);
    }

    #[test]
    fn nested_submission_runs_inline_and_cannot_deadlock() {
        // Team of 2 ⇒ one executor. The outer task consumes it, then
        // submits and joins a child — which must run inline.
        let svc = Arc::new(ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(4)));
        let svc2 = Arc::clone(&svc);
        let outer = svc.submit(move || svc2.submit(|| 21).unwrap().get() * 2).unwrap();
        assert_eq!(outer.get(), 42);
    }

    #[test]
    fn cross_service_submission_enqueues_normally() {
        // A task of service A submitting to service B must go through B's
        // queue (policy + stats), not run inline on A's worker.
        let a = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(4));
        let b = Arc::new(ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(4)));
        let b2 = Arc::clone(&b);
        let out = a.submit(move || b2.submit(|| 11).unwrap().get()).unwrap().get();
        assert_eq!(out, 11);
        assert_eq!(a.stats().submitted, 1);
        assert_eq!(b.stats().submitted, 1, "cross-service submission must hit B's queue");
        assert_eq!(b.stats().completed, 1);
    }

    #[test]
    fn cross_service_submission_honors_target_policy() {
        // B has a Reject policy and a saturated queue: a task of A that
        // over-submits to B must observe QueueFull, not a silent inline run.
        let a = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(4));
        let b = Arc::new(ExecutionService::new(
            ExecServiceConfig::default().threads(2).capacity(1).policy(BackpressurePolicy::Reject),
        ));
        let gate = Arc::new(AtomicBool::new(false));
        let (g, b2) = (Arc::clone(&gate), Arc::clone(&b));
        let blocker = b
            .submit(move || {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            })
            .unwrap();
        while b.stats().running == 0 {
            std::thread::yield_now();
        }
        let filler = b.submit(|| ()).unwrap(); // occupies the queue slot
        let from_a = a.submit(move || b2.submit(|| 1).map(|f| f.get())).unwrap().get();
        assert_eq!(from_a, Err(QcorError::QueueFull));
        gate.store(true, Ordering::Release);
        blocker.get();
        filler.get();
    }

    #[test]
    fn drop_drains_queued_tasks() {
        let svc = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(64));
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let counter = Arc::clone(&counter);
            // Fire and forget: futures dropped immediately.
            let _ = svc.submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(svc);
        assert_eq!(counter.load(Ordering::Relaxed), 16, "drop must drain, not discard, queued work");
    }

    #[test]
    fn panicking_task_does_not_poison_the_service() {
        let svc = ExecutionService::new(ExecServiceConfig::default().threads(2).capacity(4));
        let bad = svc.submit(|| panic!("deliberate")).unwrap();
        let result = catch_unwind(AssertUnwindSafe(move || bad.get()));
        assert!(result.is_err());
        assert_eq!(svc.submit(|| 5).unwrap().get(), 5);
    }

    #[test]
    fn team_of_one_service_still_completes() {
        let svc = ExecutionService::new(ExecServiceConfig::default().threads(1).capacity(4));
        let futures: Vec<_> = (0..6).map(|i| svc.submit(move || i * i).unwrap()).collect();
        let got: Vec<usize> = futures.into_iter().map(|f| f.get()).collect();
        assert_eq!(got, vec![0, 1, 4, 9, 16, 25]);
    }
}
