//! First-order optimizers: plain gradient descent and Adam.

use super::{ObjectiveFn, Optimizer, OptimizerResult};

/// Fixed-step gradient descent with gradient-norm stopping.
#[derive(Debug, Clone)]
pub struct GradientDescent {
    /// Step size.
    pub learning_rate: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// Stop when ‖∇f‖∞ falls below this.
    pub tol: f64,
}

impl Default for GradientDescent {
    fn default() -> Self {
        GradientDescent { learning_rate: 0.05, max_iters: 1000, tol: 1e-6 }
    }
}

impl Optimizer for GradientDescent {
    fn name(&self) -> &'static str {
        "gradient-descent"
    }

    fn optimize(&self, f: &dyn ObjectiveFn, x0: &[f64]) -> OptimizerResult {
        let mut x = x0.to_vec();
        let mut evals = 0usize;
        let mut iterations = 0usize;
        for _ in 0..self.max_iters {
            iterations += 1;
            let g = f.grad(&x);
            evals += 2 * x.len(); // finite-difference cost bound
            let gmax = g.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            if gmax < self.tol {
                break;
            }
            for (xi, gi) in x.iter_mut().zip(&g) {
                *xi -= self.learning_rate * gi;
            }
        }
        let opt_val = f.eval(&x);
        evals += 1;
        OptimizerResult { opt_val, opt_params: x, iterations, evaluations: evals }
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Step size.
    pub learning_rate: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical floor.
    pub epsilon: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// Stop when ‖∇f‖∞ falls below this.
    pub tol: f64,
}

impl Default for Adam {
    fn default() -> Self {
        Adam { learning_rate: 0.05, beta1: 0.9, beta2: 0.999, epsilon: 1e-8, max_iters: 2000, tol: 1e-6 }
    }
}

impl Optimizer for Adam {
    fn name(&self) -> &'static str {
        "adam"
    }

    fn optimize(&self, f: &dyn ObjectiveFn, x0: &[f64]) -> OptimizerResult {
        let n = x0.len();
        let mut x = x0.to_vec();
        let mut m = vec![0.0; n];
        let mut v = vec![0.0; n];
        let mut evals = 0usize;
        let mut iterations = 0usize;
        for t in 1..=self.max_iters {
            iterations += 1;
            let g = f.grad(&x);
            evals += 2 * n;
            let gmax = g.iter().fold(0.0f64, |acc, val| acc.max(val.abs()));
            if gmax < self.tol {
                break;
            }
            let bc1 = 1.0 - self.beta1.powi(t as i32);
            let bc2 = 1.0 - self.beta2.powi(t as i32);
            for i in 0..n {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g[i] * g[i];
                let m_hat = m[i] / bc1;
                let v_hat = v[i] / bc2;
                x[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
            }
        }
        let opt_val = f.eval(&x);
        evals += 1;
        OptimizerResult { opt_val, opt_params: x, iterations, evaluations: evals }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::test_functions::{cosine_well, quadratic};

    #[test]
    fn gradient_descent_converges_on_quadratic() {
        let opt = GradientDescent::default();
        let r = opt.optimize(&quadratic, &[5.0, 5.0]);
        assert!((r.opt_val - 3.0).abs() < 1e-4, "{r:?}");
        assert!(r.iterations > 1);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let opt = Adam::default();
        let r = opt.optimize(&quadratic, &[5.0, 5.0]);
        assert!((r.opt_val - 3.0).abs() < 1e-3, "{r:?}");
    }

    #[test]
    fn both_find_the_cosine_well() {
        for opt in [&GradientDescent::default() as &dyn Optimizer, &Adam::default()] {
            let r = opt.optimize(&cosine_well, &[2.0]);
            assert!((r.opt_params[0] - 0.5).abs() < 1e-2, "{}: {:?}", opt.name(), r);
            assert!((r.opt_val - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn respects_iteration_cap() {
        let opt = GradientDescent { max_iters: 3, ..Default::default() };
        let r = opt.optimize(&quadratic, &[50.0, 50.0]);
        assert_eq!(r.iterations, 3);
    }

    #[test]
    fn already_converged_start_stops_immediately() {
        let opt = GradientDescent::default();
        let r = opt.optimize(&quadratic, &[1.0, -2.0]);
        assert_eq!(r.iterations, 1);
        assert!((r.opt_val - 3.0).abs() < 1e-9);
    }
}
