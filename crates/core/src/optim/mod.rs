//! Classical optimizers for variational workloads (the `createOptimizer`
//! of paper Listing 3).
//!
//! The paper's VQE example uses nlopt's L-BFGS; here the optimizers are
//! implemented from scratch: [`GradientDescent`], [`Adam`], [`LBfgs`]
//! (two-loop recursion with Armijo backtracking) and [`NelderMead`]
//! (derivative-free simplex). [`create_optimizer`] resolves them by name;
//! `"nlopt"` is accepted as an alias for L-BFGS to keep Listing 3 code
//! working verbatim.

mod gd;
mod lbfgs;
mod nelder_mead;
mod spsa;

pub use gd::{Adam, GradientDescent};
pub use lbfgs::LBfgs;
pub use nelder_mead::NelderMead;
pub use spsa::Spsa;

use crate::HetMap;

/// A real-valued objective over R^n.
///
/// The default gradient is a central finite difference; analytic objectives
/// can override it.
pub trait ObjectiveFn: Sync {
    /// Evaluate the objective.
    fn eval(&self, x: &[f64]) -> f64;

    /// Gradient at `x`. Default: central differences with step 1e-5.
    fn grad(&self, x: &[f64]) -> Vec<f64> {
        central_difference(&|y| self.eval(y), x, 1e-5)
    }
}

impl<F: Fn(&[f64]) -> f64 + Sync> ObjectiveFn for F {
    fn eval(&self, x: &[f64]) -> f64 {
        self(x)
    }
}

/// Central-difference gradient with the given step.
pub fn central_difference(f: &dyn Fn(&[f64]) -> f64, x: &[f64], step: f64) -> Vec<f64> {
    let mut grad = Vec::with_capacity(x.len());
    let mut probe = x.to_vec();
    for i in 0..x.len() {
        probe[i] = x[i] + step;
        let plus = f(&probe);
        probe[i] = x[i] - step;
        let minus = f(&probe);
        probe[i] = x[i];
        grad.push((plus - minus) / (2.0 * step));
    }
    grad
}

/// Result of an optimization run: `(opt_val, opt_params)` plus counters.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizerResult {
    /// Best objective value found.
    pub opt_val: f64,
    /// Arguments achieving it.
    pub opt_params: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Objective evaluations consumed (including gradient probes when the
    /// objective uses finite differences internally).
    pub evaluations: usize,
}

/// A minimizer.
pub trait Optimizer: Send + Sync {
    /// Optimizer name.
    fn name(&self) -> &'static str;
    /// Minimize `f` starting from `x0`.
    fn optimize(&self, f: &dyn ObjectiveFn, x0: &[f64]) -> OptimizerResult;
}

/// `createOptimizer(name, options)`. Recognized names: `"gradient-descent"`,
/// `"adam"`, `"l-bfgs"`, `"nelder-mead"`, and the alias `"nlopt"`
/// (→ L-BFGS, matching the paper's `{"nlopt-optimizer", "l-bfgs"}`).
///
/// Common options: `max-iters` (int), `tol` (float), `step`/`lr` (float).
pub fn create_optimizer(name: &str, options: &HetMap) -> Option<Box<dyn Optimizer>> {
    let max_iters = options.get_usize("max-iters");
    let tol = options.get_float("tol");
    match name.to_ascii_lowercase().as_str() {
        "gradient-descent" | "gd" => {
            let mut opt = GradientDescent::default();
            if let Some(lr) = options.get_float("lr").or_else(|| options.get_float("step")) {
                opt.learning_rate = lr;
            }
            if let Some(m) = max_iters {
                opt.max_iters = m;
            }
            if let Some(t) = tol {
                opt.tol = t;
            }
            Some(Box::new(opt))
        }
        "adam" => {
            let mut opt = Adam::default();
            if let Some(lr) = options.get_float("lr").or_else(|| options.get_float("step")) {
                opt.learning_rate = lr;
            }
            if let Some(m) = max_iters {
                opt.max_iters = m;
            }
            if let Some(t) = tol {
                opt.tol = t;
            }
            Some(Box::new(opt))
        }
        "l-bfgs" | "lbfgs" | "nlopt" => {
            let mut opt = LBfgs::default();
            if let Some(m) = max_iters {
                opt.max_iters = m;
            }
            if let Some(t) = tol {
                opt.tol = t;
            }
            Some(Box::new(opt))
        }
        "nelder-mead" | "neldermead" => {
            let mut opt = NelderMead::default();
            if let Some(m) = max_iters {
                opt.max_iters = m;
            }
            if let Some(t) = tol {
                opt.tol = t;
            }
            Some(Box::new(opt))
        }
        "spsa" => {
            let mut opt = Spsa::default();
            if let Some(m) = max_iters {
                opt.max_iters = m;
            }
            if let Some(a) = options.get_float("lr").or_else(|| options.get_float("step")) {
                opt.a = a;
            }
            if let Some(s) = options.get_usize("seed") {
                opt.seed = s as u64;
            }
            Some(Box::new(opt))
        }
        _ => None,
    }
}

#[cfg(test)]
pub(crate) mod test_functions {
    /// Convex quadratic with minimum at (1, -2), value 3.
    pub fn quadratic(x: &[f64]) -> f64 {
        (x[0] - 1.0).powi(2) + 2.0 * (x[1] + 2.0).powi(2) + 3.0
    }

    /// The Rosenbrock banana (minimum 0 at (1,1)).
    pub fn rosenbrock(x: &[f64]) -> f64 {
        (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)
    }

    /// 1-D sinusoid used for the VQE-like landscape (min at θ ≈ -π/2 + ...).
    pub fn cosine_well(x: &[f64]) -> f64 {
        2.0 - (x[0] - 0.5).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_resolves_all_names() {
        let opts = HetMap::new();
        for name in ["gradient-descent", "adam", "l-bfgs", "nlopt", "nelder-mead", "spsa"] {
            assert!(create_optimizer(name, &opts).is_some(), "{name}");
        }
        assert!(create_optimizer("simulated-annealing", &opts).is_none());
    }

    #[test]
    fn factory_applies_options() {
        let opts = HetMap::new().with("max-iters", 7usize).with("tol", 0.5);
        let opt = create_optimizer("nelder-mead", &opts).unwrap();
        assert_eq!(opt.name(), "nelder-mead");
    }

    #[test]
    fn central_difference_matches_analytic() {
        let f = |x: &[f64]| x[0] * x[0] + 3.0 * x[1];
        let g = central_difference(&f, &[2.0, 5.0], 1e-6);
        assert!((g[0] - 4.0).abs() < 1e-6);
        assert!((g[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn every_optimizer_solves_the_quadratic() {
        let opts = HetMap::new().with("max-iters", 2000usize);
        for name in ["gradient-descent", "adam", "l-bfgs", "nelder-mead"] {
            let opt = create_optimizer(name, &opts).unwrap();
            let result = opt.optimize(&test_functions::quadratic, &[0.0, 0.0]);
            assert!(
                (result.opt_val - 3.0).abs() < 1e-3,
                "{name}: reached {} at {:?}",
                result.opt_val,
                result.opt_params
            );
            assert!((result.opt_params[0] - 1.0).abs() < 0.05, "{name}");
            assert!((result.opt_params[1] + 2.0).abs() < 0.05, "{name}");
        }
    }
}
