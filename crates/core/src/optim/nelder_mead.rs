//! Derivative-free Nelder–Mead simplex minimizer — robust to the sampling
//! noise of shot-based objectives where gradients are unreliable.

use super::{ObjectiveFn, Optimizer, OptimizerResult};

/// Nelder–Mead with standard reflection/expansion/contraction/shrink
/// coefficients.
#[derive(Debug, Clone)]
pub struct NelderMead {
    /// Iteration cap.
    pub max_iters: usize,
    /// Stop when the simplex's value spread falls below this.
    pub tol: f64,
    /// Initial simplex edge length.
    pub initial_step: f64,
}

impl Default for NelderMead {
    fn default() -> Self {
        NelderMead { max_iters: 1000, tol: 1e-10, initial_step: 0.5 }
    }
}

const ALPHA: f64 = 1.0; // reflection
const GAMMA: f64 = 2.0; // expansion
const RHO: f64 = 0.5; // contraction
const SIGMA: f64 = 0.5; // shrink

impl Optimizer for NelderMead {
    fn name(&self) -> &'static str {
        "nelder-mead"
    }

    fn optimize(&self, f: &dyn ObjectiveFn, x0: &[f64]) -> OptimizerResult {
        let n = x0.len();
        let mut evals = 0usize;
        let eval = |x: &[f64], evals: &mut usize| {
            *evals += 1;
            f.eval(x)
        };

        // Initial simplex: x0 plus a step along each axis.
        let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
        let fx0 = eval(x0, &mut evals);
        simplex.push((x0.to_vec(), fx0));
        for i in 0..n {
            let mut v = x0.to_vec();
            v[i] += self.initial_step;
            let fv = eval(&v, &mut evals);
            simplex.push((v, fv));
        }

        let mut iterations = 0usize;
        for _ in 0..self.max_iters {
            iterations += 1;
            simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
            let spread = simplex[n].1 - simplex[0].1;
            if spread.abs() < self.tol {
                break;
            }

            // Centroid of all but the worst.
            let mut centroid = vec![0.0; n];
            for (v, _) in &simplex[..n] {
                for i in 0..n {
                    centroid[i] += v[i] / n as f64;
                }
            }
            let worst = simplex[n].clone();

            let reflect: Vec<f64> =
                (0..n).map(|i| centroid[i] + ALPHA * (centroid[i] - worst.0[i])).collect();
            let f_reflect = eval(&reflect, &mut evals);

            if f_reflect < simplex[0].1 {
                // Try expanding.
                let expand: Vec<f64> =
                    (0..n).map(|i| centroid[i] + GAMMA * (reflect[i] - centroid[i])).collect();
                let f_expand = eval(&expand, &mut evals);
                simplex[n] = if f_expand < f_reflect { (expand, f_expand) } else { (reflect, f_reflect) };
            } else if f_reflect < simplex[n - 1].1 {
                simplex[n] = (reflect, f_reflect);
            } else {
                // Contract toward the better of (worst, reflected).
                let (base, f_base) =
                    if f_reflect < worst.1 { (&reflect, f_reflect) } else { (&worst.0, worst.1) };
                let contract: Vec<f64> =
                    (0..n).map(|i| centroid[i] + RHO * (base[i] - centroid[i])).collect();
                let f_contract = eval(&contract, &mut evals);
                if f_contract < f_base {
                    simplex[n] = (contract, f_contract);
                } else {
                    // Shrink everything toward the best vertex.
                    let best = simplex[0].0.clone();
                    for entry in simplex.iter_mut().skip(1) {
                        for (x, b) in entry.0.iter_mut().zip(&best) {
                            *x = b + SIGMA * (*x - b);
                        }
                        entry.1 = eval(&entry.0, &mut evals);
                    }
                }
            }
        }
        simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
        let (opt_params, opt_val) = simplex.swap_remove(0);
        OptimizerResult { opt_val, opt_params, iterations, evaluations: evals }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::test_functions::{cosine_well, quadratic, rosenbrock};

    #[test]
    fn solves_quadratic() {
        let r = NelderMead::default().optimize(&quadratic, &[4.0, 4.0]);
        assert!((r.opt_val - 3.0).abs() < 1e-6, "{r:?}");
    }

    #[test]
    fn solves_rosenbrock_without_gradients() {
        let opt = NelderMead { max_iters: 5000, ..Default::default() };
        let r = opt.optimize(&rosenbrock, &[-1.2, 1.0]);
        assert!(r.opt_val < 1e-6, "{r:?}");
    }

    #[test]
    fn one_dimensional_well() {
        let r = NelderMead::default().optimize(&cosine_well, &[3.0]);
        assert!((r.opt_params[0] - 0.5).abs() < 1e-3, "{r:?}");
    }

    #[test]
    fn tolerates_noisy_objectives() {
        // A deterministic "noise" pattern that finite-difference gradients
        // amplify but a simplex tolerates.
        let noisy = |x: &[f64]| quadratic(x) + 1e-4 * (x[0] * 1000.0).sin();
        let r = NelderMead::default().optimize(&noisy, &[4.0, 4.0]);
        assert!((r.opt_val - 3.0).abs() < 0.01, "{r:?}");
    }

    #[test]
    fn iteration_cap_respected() {
        let opt = NelderMead { max_iters: 2, ..Default::default() };
        let r = opt.optimize(&rosenbrock, &[5.0, 5.0]);
        assert_eq!(r.iterations, 2);
    }
}
