//! Limited-memory BFGS with two-loop recursion and Armijo backtracking —
//! the from-scratch stand-in for the paper's nlopt `l-bfgs`.

use super::{ObjectiveFn, Optimizer, OptimizerResult};
use std::collections::VecDeque;

/// L-BFGS minimizer.
#[derive(Debug, Clone)]
pub struct LBfgs {
    /// History length (pairs of (s, y) kept).
    pub history: usize,
    /// Iteration cap.
    pub max_iters: usize,
    /// Stop when ‖∇f‖∞ falls below this.
    pub tol: f64,
    /// Armijo sufficient-decrease constant.
    pub c1: f64,
    /// Backtracking shrink factor.
    pub shrink: f64,
    /// Maximum backtracking steps per line search.
    pub max_backtracks: usize,
}

impl Default for LBfgs {
    fn default() -> Self {
        LBfgs { history: 8, max_iters: 500, tol: 1e-8, c1: 1e-4, shrink: 0.5, max_backtracks: 40 }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl LBfgs {
    /// The two-loop recursion: approximate H·g from the (s, y) history.
    fn direction(&self, grad: &[f64], pairs: &VecDeque<(Vec<f64>, Vec<f64>)>) -> Vec<f64> {
        let mut q = grad.to_vec();
        let mut alphas = Vec::with_capacity(pairs.len());
        for (s, y) in pairs.iter().rev() {
            let rho = 1.0 / dot(y, s);
            let alpha = rho * dot(s, &q);
            for (qi, yi) in q.iter_mut().zip(y) {
                *qi -= alpha * yi;
            }
            alphas.push((alpha, rho));
        }
        // Initial Hessian scaling γ = sᵀy / yᵀy from the newest pair.
        if let Some((s, y)) = pairs.back() {
            let gamma = dot(s, y) / dot(y, y);
            for qi in q.iter_mut() {
                *qi *= gamma;
            }
        }
        for ((s, y), (alpha, rho)) in pairs.iter().zip(alphas.into_iter().rev()) {
            let beta = rho * dot(y, &q);
            for (qi, si) in q.iter_mut().zip(s) {
                *qi += (alpha - beta) * si;
            }
        }
        // q now approximates H∇f; descend along −q.
        q
    }
}

impl Optimizer for LBfgs {
    fn name(&self) -> &'static str {
        "l-bfgs"
    }

    fn optimize(&self, f: &dyn ObjectiveFn, x0: &[f64]) -> OptimizerResult {
        let n = x0.len();
        let mut x = x0.to_vec();
        let mut fx = f.eval(&x);
        let mut grad = f.grad(&x);
        let mut evals = 1 + 2 * n;
        let mut pairs: VecDeque<(Vec<f64>, Vec<f64>)> = VecDeque::new();
        let mut iterations = 0usize;

        for _ in 0..self.max_iters {
            iterations += 1;
            let gmax = grad.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            if gmax < self.tol {
                break;
            }
            let mut dir = self.direction(&grad, &pairs);
            // dir ≈ H∇f: descent direction is −dir. Safeguard against a
            // non-descent proposal (can happen with noisy objectives).
            if dot(&dir, &grad) <= 0.0 {
                dir = grad.clone();
            }

            // Armijo backtracking along −dir.
            let slope = -dot(&grad, &dir);
            let mut step = 1.0;
            let mut accepted = false;
            let mut x_new = x.clone();
            let mut f_new = fx;
            for _ in 0..self.max_backtracks {
                for i in 0..n {
                    x_new[i] = x[i] - step * dir[i];
                }
                f_new = f.eval(&x_new);
                evals += 1;
                if f_new <= fx + self.c1 * step * slope {
                    accepted = true;
                    break;
                }
                step *= self.shrink;
            }
            if !accepted {
                break; // line search failed: local flatness or noise floor
            }

            let grad_new = f.grad(&x_new);
            evals += 2 * n;
            let s: Vec<f64> = x_new.iter().zip(&x).map(|(a, b)| a - b).collect();
            let y: Vec<f64> = grad_new.iter().zip(&grad).map(|(a, b)| a - b).collect();
            if dot(&s, &y) > 1e-12 {
                pairs.push_back((s, y));
                if pairs.len() > self.history {
                    pairs.pop_front();
                }
            }
            x = x_new;
            fx = f_new;
            grad = grad_new;
        }
        OptimizerResult { opt_val: fx, opt_params: x, iterations, evaluations: evals }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::test_functions::{quadratic, rosenbrock};

    #[test]
    fn solves_quadratic_in_few_iterations() {
        let opt = LBfgs::default();
        let r = opt.optimize(&quadratic, &[10.0, 10.0]);
        assert!((r.opt_val - 3.0).abs() < 1e-8, "{r:?}");
        assert!(r.iterations < 50, "should converge quickly, took {}", r.iterations);
    }

    #[test]
    fn solves_rosenbrock() {
        let opt = LBfgs { max_iters: 2000, ..Default::default() };
        let r = opt.optimize(&rosenbrock, &[-1.2, 1.0]);
        assert!(r.opt_val < 1e-6, "{r:?}");
        assert!((r.opt_params[0] - 1.0).abs() < 1e-3);
        assert!((r.opt_params[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn beats_gradient_descent_on_rosenbrock_evaluations() {
        let lbfgs = LBfgs { max_iters: 2000, ..Default::default() };
        let r = lbfgs.optimize(&rosenbrock, &[-1.2, 1.0]);
        let gd = crate::optim::GradientDescent { max_iters: 2000, learning_rate: 1e-3, ..Default::default() };
        let r_gd = gd.optimize(&rosenbrock, &[-1.2, 1.0]);
        assert!(r.opt_val < r_gd.opt_val, "L-BFGS {} vs GD {}", r.opt_val, r_gd.opt_val);
    }

    #[test]
    fn converged_start_exits_fast() {
        let opt = LBfgs::default();
        let r = opt.optimize(&quadratic, &[1.0, -2.0]);
        assert!(r.iterations <= 2);
    }

    #[test]
    fn one_dimensional_problems_work() {
        let opt = LBfgs::default();
        let f = |x: &[f64]| (x[0] - 3.0).powi(4) + 1.0;
        let r = opt.optimize(&f, &[0.0]);
        assert!((r.opt_params[0] - 3.0).abs() < 0.05, "{r:?}");
    }
}
