//! SPSA — simultaneous perturbation stochastic approximation (Spall).
//!
//! The optimizer of choice for *sampled* variational objectives: each
//! iteration estimates the gradient from just **two** objective
//! evaluations regardless of dimension, and the standard gain schedules
//! tolerate shot noise that breaks finite-difference L-BFGS. This extends
//! the paper's `createOptimizer` set for the sampled execution mode.

use super::{ObjectiveFn, Optimizer, OptimizerResult};

/// SPSA minimizer with the standard asymptotic gain schedules
/// a_k = a / (k + 1 + A)^α, c_k = c / (k + 1)^γ.
#[derive(Debug, Clone)]
pub struct Spsa {
    /// Step-size numerator.
    pub a: f64,
    /// Perturbation-size numerator.
    pub c: f64,
    /// Stability constant (typically ~10% of max_iters).
    pub big_a: f64,
    /// Step-size decay exponent (0.602 per Spall).
    pub alpha: f64,
    /// Perturbation decay exponent (0.101 per Spall).
    pub gamma: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// Seed for the perturbation directions.
    pub seed: u64,
}

impl Default for Spsa {
    fn default() -> Self {
        Spsa { a: 0.2, c: 0.1, big_a: 20.0, alpha: 0.602, gamma: 0.101, max_iters: 200, seed: 7 }
    }
}

/// Tiny deterministic xorshift for ±1 Bernoulli directions (keeps the
/// optimizer dependency-free and reproducible).
struct XorShift(u64);

impl XorShift {
    fn next_sign(&mut self) -> f64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        if x & 1 == 0 {
            1.0
        } else {
            -1.0
        }
    }
}

impl Optimizer for Spsa {
    fn name(&self) -> &'static str {
        "spsa"
    }

    fn optimize(&self, f: &dyn ObjectiveFn, x0: &[f64]) -> OptimizerResult {
        let n = x0.len();
        let mut x = x0.to_vec();
        let mut rng = XorShift(self.seed | 1);
        let mut evals = 0usize;
        let mut best_x = x.clone();
        let mut best_val = f.eval(&x);
        evals += 1;
        let mut iterations = 0usize;
        for k in 0..self.max_iters {
            iterations += 1;
            let ak = self.a / (k as f64 + 1.0 + self.big_a).powf(self.alpha);
            let ck = self.c / (k as f64 + 1.0).powf(self.gamma);
            let delta: Vec<f64> = (0..n).map(|_| rng.next_sign()).collect();
            let plus: Vec<f64> = x.iter().zip(&delta).map(|(xi, d)| xi + ck * d).collect();
            let minus: Vec<f64> = x.iter().zip(&delta).map(|(xi, d)| xi - ck * d).collect();
            let (fp, fm) = (f.eval(&plus), f.eval(&minus));
            evals += 2;
            let diff = (fp - fm) / (2.0 * ck);
            for (xi, d) in x.iter_mut().zip(&delta) {
                // ĝ_i = diff / δ_i; with δ_i = ±1 this is diff * δ_i.
                *xi -= ak * diff * d;
            }
            let fx = f.eval(&x);
            evals += 1;
            if fx < best_val {
                best_val = fx;
                best_x = x.clone();
            }
        }
        OptimizerResult { opt_val: best_val, opt_params: best_x, iterations, evaluations: evals }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::test_functions::{cosine_well, quadratic};

    #[test]
    fn solves_quadratic() {
        let opt = Spsa { max_iters: 800, a: 0.5, ..Default::default() };
        let r = opt.optimize(&quadratic, &[4.0, -4.0]);
        assert!((r.opt_val - 3.0).abs() < 0.05, "{r:?}");
    }

    #[test]
    fn finds_cosine_well() {
        let opt = Spsa { max_iters: 600, ..Default::default() };
        let r = opt.optimize(&cosine_well, &[2.5]);
        assert!((r.opt_params[0] - 0.5).abs() < 0.1, "{r:?}");
    }

    #[test]
    fn tolerates_heavy_noise() {
        // Deterministic pseudo-noise an order of magnitude above L-BFGS's
        // finite-difference step resolution.
        let noisy = |x: &[f64]| quadratic(x) + 0.01 * ((x[0] * 9431.0).sin() + (x[1] * 5939.0).cos());
        let opt = Spsa { max_iters: 1200, a: 0.5, ..Default::default() };
        let r = opt.optimize(&noisy, &[4.0, 4.0]);
        assert!((r.opt_val - 3.0).abs() < 0.25, "{r:?}");
    }

    #[test]
    fn evaluation_count_is_three_per_iteration() {
        let opt = Spsa { max_iters: 10, ..Default::default() };
        let r = opt.optimize(&quadratic, &[1.0, 1.0]);
        assert_eq!(r.evaluations, 1 + 3 * 10);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let opt = Spsa::default();
        let a = opt.optimize(&quadratic, &[3.0, 3.0]);
        let b = opt.optimize(&quadratic, &[3.0, 3.0]);
        assert_eq!(a.opt_params, b.opt_params);
    }
}
