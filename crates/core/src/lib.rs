//! # qcor — a thread-safe quantum-classical runtime
//!
//! This crate is the Rust reproduction of the paper's primary contribution:
//! user-level multi-threading for the QCOR heterogeneous quantum-classical
//! programming model. It provides the user-facing runtime of paper
//! Listings 1–5 with the two fixes of §V:
//!
//! 1. **Thread-safe user API** — [`qalloc`] registers buffers in a global
//!    table behind a mutex (Listing 6); every public routine here may be
//!    called concurrently from any number of threads.
//! 2. **Increased parallelism** — accelerators are *cloneable* (fresh
//!    instance per [`initialize`] call) and the singleton [`QPUManager`]
//!    maps each OS thread to its own accelerator instance (Listing 8), so
//!    concurrent kernels never share simulator state.
//!
//! Beyond the paper, the runtime scales this shape out: [`spawn`] /
//! [`async_task`] enqueue on a bounded kernel queue drained by a shared
//! pool ([`ExecutionService`], with block / reject / shed-oldest
//! backpressure), and the [`QPUManager`] routes initializations across
//! registered backends ([`RoutingPolicy`]: pinned, round-robin, or by
//! [`BackendCapability`]).
//!
//! The paper's Bell example (Listing 4) translates directly:
//!
//! ```
//! use qcor::{initialize, qalloc, InitOptions, Kernel};
//!
//! fn foo() {
//!     initialize(InitOptions::default().threads(1)).unwrap();
//!     let q = qalloc(2);
//!     let bell = Kernel::from_xasm(
//!         "__qpu__ void bell(qreg q) {
//!              H(q[0]); CX(q[0], q[1]);
//!              for (int i = 0; i < q.size(); i++) { Measure(q[i]); }
//!          }",
//!         2,
//!     ).unwrap();
//!     bell.invoke(&q, &[]).unwrap();
//!     assert_eq!(q.total_shots(), 1024);
//! }
//!
//! // Two kernels in parallel, each on its own accelerator instance:
//! let t0 = qcor::spawn(foo);
//! let t1 = qcor::spawn(foo);
//! t0.get();
//! t1.get();
//! ```

mod allocation;
mod exec_service;
mod introspect;
mod kernel;
mod objective;
pub mod optim;
mod qpu_manager;
mod runtime;
mod threading;

pub use allocation::{
    allocated_buffer_count, clear_allocated_buffers, find_buffer, qalloc, qalloc_named, QReg,
};
pub use exec_service::{
    set_thread_tenant, thread_tenant, BackpressurePolicy, ExecServiceConfig, ExecutionService, ServiceStats,
    TaskPriority, TaskSpec, DEFAULT_TENANT,
};
pub use introspect::{DebugServer, ServiceIntrospection, TenantStats};
pub use kernel::Kernel;
pub use objective::{create_objective_function, EvalStrategy, ObjectiveFunction};
pub use optim::{create_optimizer, Optimizer, OptimizerResult};
pub use qpu_manager::{QPUManager, RoutingPolicy};
pub use runtime::{
    current_options, execute, execute_with, initialize, initialize_legacy_shared, InitOptions,
};
pub use threading::{async_task, spawn, TaskFuture};

pub use qcor_xacc::{Accelerator, AcceleratorBuffer, BackendCapability, ExecOptions, HetMap, HetValue};

/// Submit `f` to the global [`ExecutionService`] under its configured
/// backpressure policy (`QCOR_QUEUE_POLICY`). Unlike [`spawn`], a full
/// queue can surface as [`QcorError::QueueFull`] (reject) or resolve the
/// oldest queued task as [`QcorError::TaskShed`] (shed-oldest).
pub fn submit<F, T>(f: F) -> Result<TaskFuture<T>, QcorError>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    ExecutionService::global().submit(f)
}

/// Errors surfaced by the runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum QcorError {
    /// The current thread has not called [`initialize`].
    NotInitialized,
    /// The registry has no such backend.
    UnknownBackend(String),
    /// The backend failed to execute a kernel.
    Execution(String),
    /// Kernel construction/binding failed.
    Kernel(String),
    /// The execution-service queue is at its high-water mark and the
    /// backpressure policy is `Reject`.
    QueueFull,
    /// The task was shed from the queue (`ShedOldest` backpressure, or a
    /// per-task deadline that expired while queued) before it could run.
    TaskShed,
    /// The task was cancelled via `TaskFuture::cancel` while it was still
    /// queued; it never ran.
    TaskCancelled,
    /// Backend routing failed (bad policy parameters, or no backend
    /// matches the requested capability).
    Routing(String),
    /// A backend factory rejected its construction parameters (e.g. an
    /// unknown `granularity` or `fusion` value). Permanently invalid
    /// configuration — retrying without fixing the params cannot succeed,
    /// unlike [`QcorError::Execution`].
    InvalidParam(String),
}

impl std::fmt::Display for QcorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QcorError::NotInitialized => write!(
                f,
                "quantum::initialize() has not been called on this thread \
                 (each thread must register its accelerator with the QPUManager)"
            ),
            QcorError::UnknownBackend(name) => write!(f, "unknown backend `{name}`"),
            QcorError::Execution(msg) => write!(f, "kernel execution failed: {msg}"),
            QcorError::Kernel(msg) => write!(f, "kernel error: {msg}"),
            QcorError::QueueFull => write!(
                f,
                "kernel queue is at its high-water mark and the backpressure policy rejects new work"
            ),
            QcorError::TaskShed => {
                write!(
                    f,
                    "task was shed from the kernel queue (shed-oldest backpressure or expired deadline)"
                )
            }
            QcorError::TaskCancelled => {
                write!(f, "task was cancelled while queued and never ran")
            }
            QcorError::Routing(msg) => write!(f, "backend routing failed: {msg}"),
            QcorError::InvalidParam(msg) => write!(f, "invalid backend parameter: {msg}"),
        }
    }
}

impl std::error::Error for QcorError {}

impl From<qcor_xacc::XaccError> for QcorError {
    fn from(e: qcor_xacc::XaccError) -> Self {
        match e {
            qcor_xacc::XaccError::UnknownService(name) => QcorError::UnknownBackend(name),
            qcor_xacc::XaccError::Execution(msg) => QcorError::Execution(msg),
            qcor_xacc::XaccError::InvalidParam(msg) => QcorError::InvalidParam(msg),
        }
    }
}

impl From<qcor_circuit::CircuitError> for QcorError {
    fn from(e: qcor_circuit::CircuitError) -> Self {
        QcorError::Kernel(e.to_string())
    }
}
