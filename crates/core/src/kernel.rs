//! Quantum kernels: the invokable unit of QCOR programs.
//!
//! In QCOR a `__qpu__` function is compiled from XASM and invoked like a
//! C++ function (`bell(q)`, `ansatz(q, theta)`). Here a [`Kernel`] wraps
//! either a parsed XASM template, a concrete circuit, or a Rust closure
//! that builds a circuit from its classical arguments; `invoke` binds the
//! arguments and dispatches through the calling thread's accelerator.

use crate::allocation::QReg;
use crate::runtime::execute;
use crate::QcorError;
use qcor_circuit::{xasm, Circuit, ParamCircuit};
use std::sync::Arc;

type BuilderFn = dyn Fn(&[f64]) -> Circuit + Send + Sync;

enum KernelBody {
    Xasm(ParamCircuit),
    Fixed(Circuit),
    Builder { num_params: usize, build: Arc<BuilderFn> },
}

/// An invokable quantum kernel.
pub struct Kernel {
    name: String,
    body: KernelBody,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel").field("name", &self.name).field("num_params", &self.num_params()).finish()
    }
}

impl Kernel {
    /// Compile an XASM kernel source over an `n`-qubit register.
    pub fn from_xasm(src: &str, num_qubits: usize) -> Result<Self, QcorError> {
        let pc = xasm::parse_kernel(src, num_qubits)?;
        Ok(Kernel { name: pc.name.clone(), body: KernelBody::Xasm(pc) })
    }

    /// Wrap a fully concrete circuit.
    pub fn from_circuit(name: impl Into<String>, circuit: Circuit) -> Self {
        Kernel { name: name.into(), body: KernelBody::Fixed(circuit) }
    }

    /// Wrap a Rust closure taking `num_params` classical arguments — the
    /// single-source style of writing kernels directly in the host
    /// language.
    pub fn from_fn(
        name: impl Into<String>,
        num_params: usize,
        build: impl Fn(&[f64]) -> Circuit + Send + Sync + 'static,
    ) -> Self {
        Kernel { name: name.into(), body: KernelBody::Builder { num_params, build: Arc::new(build) } }
    }

    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of classical parameters the kernel takes.
    pub fn num_params(&self) -> usize {
        match &self.body {
            KernelBody::Xasm(pc) => pc.param_names.len(),
            KernelBody::Fixed(_) => 0,
            KernelBody::Builder { num_params, .. } => *num_params,
        }
    }

    /// Bind classical arguments to a concrete circuit without executing.
    pub fn bind(&self, args: &[f64]) -> Result<Circuit, QcorError> {
        match &self.body {
            KernelBody::Xasm(pc) => Ok(pc.bind(args)?),
            KernelBody::Fixed(c) => {
                if args.is_empty() {
                    Ok(c.clone())
                } else {
                    Err(QcorError::Kernel(format!(
                        "kernel `{}` takes no parameters, got {}",
                        self.name,
                        args.len()
                    )))
                }
            }
            KernelBody::Builder { num_params, build } => {
                if args.len() != *num_params {
                    return Err(QcorError::Kernel(format!(
                        "kernel `{}` takes {num_params} parameter(s), got {}",
                        self.name,
                        args.len()
                    )));
                }
                Ok(build(args))
            }
        }
    }

    /// Bind and execute on the calling thread's accelerator against `q`.
    pub fn invoke(&self, q: &QReg, args: &[f64]) -> Result<(), QcorError> {
        let circuit = self.bind(args)?;
        if circuit.num_qubits() > q.size() {
            return Err(QcorError::Kernel(format!(
                "kernel `{}` needs {} qubits but the register has {}",
                self.name,
                circuit.num_qubits(),
                q.size()
            )));
        }
        execute(q, &circuit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::qalloc;
    use crate::qpu_manager::QPUManager;
    use crate::runtime::{initialize, InitOptions};

    const BELL_SRC: &str = r#"
        __qpu__ void bell(qreg q) {
            using qcor::xasm;
            H(q[0]);
            CX(q[0], q[1]);
            for (int i = 0; i < q.size(); i++) { Measure(q[i]); }
        }
    "#;

    #[test]
    fn xasm_kernel_invokes_end_to_end() {
        std::thread::spawn(|| {
            initialize(InitOptions::default().threads(1).shots(128).seed(21)).unwrap();
            let q = qalloc(2);
            let bell = Kernel::from_xasm(BELL_SRC, 2).unwrap();
            assert_eq!(bell.name(), "bell");
            bell.invoke(&q, &[]).unwrap();
            assert_eq!(q.total_shots(), 128);
            QPUManager::instance().clear_current();
        })
        .join()
        .unwrap();
    }

    #[test]
    fn parametric_kernel_binds_arguments() {
        let ansatz = Kernel::from_xasm(
            "__qpu__ void ansatz(qreg q, double theta) { X(q[0]); Ry(q[1], theta); CX(q[1], q[0]); }",
            2,
        )
        .unwrap();
        assert_eq!(ansatz.num_params(), 1);
        let c = ansatz.bind(&[0.25]).unwrap();
        assert!((c.instructions()[1].params[0] - 0.25).abs() < 1e-15);
        assert!(ansatz.bind(&[]).is_err());
    }

    #[test]
    fn closure_kernel_builds_circuits() {
        let k = Kernel::from_fn("ghz", 0, |_| qcor_circuit::library::ghz_kernel(3));
        let c = k.bind(&[]).unwrap();
        assert_eq!(c.num_qubits(), 3);
        assert!(k.bind(&[1.0]).is_err());
    }

    #[test]
    fn oversized_kernel_rejected_at_invoke() {
        std::thread::spawn(|| {
            initialize(InitOptions::default().threads(1)).unwrap();
            let q = qalloc(1);
            let bell = Kernel::from_xasm(BELL_SRC, 2).unwrap();
            assert!(bell.invoke(&q, &[]).is_err());
            QPUManager::instance().clear_current();
        })
        .join()
        .unwrap();
    }
}
