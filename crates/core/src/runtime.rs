//! `quantum::initialize()` and kernel execution.
//!
//! As in the paper's implementation (§V-C), each thread that wants to run
//! quantum kernels calls [`initialize`] first; the runtime obtains a
//! *fresh* accelerator instance from the (cloneable) registry factory and
//! registers it with the [`QPUManager`] under the current thread id.
//! [`execute`] then routes every kernel invocation from this thread to its
//! own instance. The [`crate::spawn`]/[`crate::async_task`] wrappers do the
//! initialize call automatically, which is the convenience the paper
//! proposes as `qcor::thread` / `qcor::async`; behind them sits the
//! bounded kernel queue of [`crate::ExecutionService`] (configured by
//! `QCOR_SERVICE_THREADS`, `QCOR_QUEUE_CAPACITY`,
//! `QCOR_QUEUE_PRIORITY_CAPACITY` and `QCOR_QUEUE_POLICY`), whose
//! work-conserving joins make it safe to `wait` on sibling task futures
//! from inside a task.

use crate::allocation::QReg;
use crate::qpu_manager::{QPUManager, RoutingPolicy, ThreadContext};
use crate::QcorError;
use qcor_circuit::Circuit;
use qcor_xacc::{registry, BackendCapability, ExecOptions, HetMap, HetValue};

/// Options for [`initialize`].
#[derive(Debug, Clone)]
pub struct InitOptions {
    /// Backend service name (default `"qpp"`). Under non-pinned routing
    /// this is only a fallback — the router picks the actual service.
    pub backend: String,
    /// Simulator threads per kernel (the per-kernel `OMP_NUM_THREADS` of
    /// the paper's experiments). `None` = backend default.
    pub threads: Option<usize>,
    /// Shots per kernel invocation (default 1024, as in Listing 2).
    pub shots: usize,
    /// RNG seed for reproducible counts.
    pub seed: Option<u64>,
    /// Additional backend parameters.
    pub params: HetMap,
    /// How the `QPUManager` routes this initialization to a backend.
    /// `None` = inherit the manager's process-wide policy (default:
    /// pinned to `backend`). Backend params (`routing`,
    /// `routing-backends`, `routing-capability`) override this field.
    pub routing: Option<RoutingPolicy>,
    /// Session tenant for the calling thread: when set, [`initialize`]
    /// also calls [`crate::set_thread_tenant`], so subsequent execution-
    /// service submissions from this thread are fair-queued and accounted
    /// under this tenant. `None` leaves the thread's tenant untouched.
    pub tenant: Option<String>,
}

impl Default for InitOptions {
    fn default() -> Self {
        InitOptions {
            backend: "qpp".to_string(),
            threads: None,
            shots: 1024,
            seed: None,
            params: HetMap::new(),
            routing: None,
            tenant: None,
        }
    }
}

impl InitOptions {
    /// Select a backend by name.
    pub fn backend(mut self, name: impl Into<String>) -> Self {
        self.backend = name.into();
        self
    }

    /// Simulator threads per kernel.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// Shots per kernel invocation.
    pub fn shots(mut self, shots: usize) -> Self {
        self.shots = shots;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Extra backend parameter.
    pub fn param(mut self, key: impl Into<String>, value: impl Into<qcor_xacc::HetValue>) -> Self {
        self.params.insert(key, value);
        self
    }

    /// Session tenant for this thread's submissions (see
    /// [`InitOptions::tenant`]).
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Explicit shots-per-chunk for the backend's batched shot scheduler
    /// (see `qcor_sim::ShotPlan`); part of the determinism tuple
    /// `(seed, tasks, chunk_shots)`. Default: adaptive granularity.
    pub fn chunk_shots(mut self, chunk_shots: usize) -> Self {
        self.params.insert("chunk-shots", chunk_shots.max(1));
        self
    }

    /// Disable adaptive shot chunking: a kernel invocation runs all its
    /// shots sequentially on the executing thread with amplitude loops
    /// work-shared over the simulator pool (the pre-scheduler behavior,
    /// kept for A/B comparison).
    pub fn sequential_shots(mut self) -> Self {
        self.params.insert("granularity", "sequential");
        self
    }

    /// Select how the `qpp-noisy` backend executes its noise model:
    /// `"trajectory"` (the default — per-shot Kraus-branch sampling on the
    /// batched shot scheduler), `"density"` (exact mixed-state oracle) or
    /// `"interpreted"` (the legacy per-shot loop, the A/B baseline).
    /// Unknown tokens are rejected by the backend as `InvalidParam`, like
    /// `gate_fusion`. Defaults to the `QCOR_NOISE_MODE` process default.
    pub fn noise_mode(mut self, mode: impl Into<String>) -> Self {
        self.params.insert("noise-mode", mode.into());
        self
    }

    /// Force gate fusion on or off for this backend (compile-then-execute:
    /// the circuit is lowered once per shot plan into fused kernel ops and
    /// replayed per shot — see `qcor_sim::CompiledCircuit`). Defaults to
    /// the `QCOR_GATE_FUSION` process default (enabled); `false` keeps the
    /// interpreted executor for A/B comparison. Seeded counts are
    /// identical either way.
    pub fn gate_fusion(mut self, enabled: bool) -> Self {
        self.params.insert("fusion", enabled);
        self
    }

    /// Select the backend's amplitude precision: `"f64"` (default) or
    /// `"f32"` — the single-precision compiled replay (`qcor_sim::fp32`),
    /// which halves state memory and agrees with f64 amplitudes to ~1e-4.
    /// Unknown tokens are rejected by the backend as `InvalidParam`, like
    /// `gate_fusion`. Defaults to the `QCOR_PRECISION` process default.
    pub fn precision(mut self, precision: impl Into<String>) -> Self {
        self.params.insert("precision", precision.into());
        self
    }

    /// Force the structural compile cache on or off for this backend (an
    /// angle sweep over one circuit shape reuses a cached
    /// `qcor_sim::CompiledTemplate` and only re-binds parameters). Defaults
    /// to the `QCOR_COMPILE_CACHE` process default (enabled); `false`
    /// compiles cold every invocation for A/B comparison. Seeded counts
    /// are identical either way.
    pub fn compile_cache(mut self, enabled: bool) -> Self {
        self.params.insert("compile-cache", enabled);
        self
    }

    /// Select the backend's amplitude-sharded kernel dispatch: `"auto"`
    /// (the default — shard large sweeps one job per pool thread),
    /// `"off"`, or a fixed shard count such as `"4"`. Sharded amplitudes
    /// and seeded counts are bit-identical to the unsharded dispatch on
    /// any pool size. Unknown tokens are rejected by the backend as
    /// `InvalidParam`, like `precision`. Defaults to the
    /// `QCOR_AMP_SHARDS` process default.
    pub fn amp_shards(mut self, shards: impl Into<String>) -> Self {
        self.params.insert("amp-shards", shards.into());
        self
    }

    /// Partition each run's shot-chunk schedule over `procs` shards and
    /// merge the counts (in-process, via `qcor_sim::shard::run_sharded`) —
    /// byte-identical to the single-shard run for a fixed seed. The
    /// process-spawning driver (`QCOR_SHOT_PROCS`) lives above the
    /// runtime, in binaries honoring the `maybe_shard_worker` spawn-self
    /// contract.
    pub fn shot_procs(mut self, procs: usize) -> Self {
        self.params.insert("shot-procs", procs);
        self
    }

    /// Pin this initialization to `backend` verbatim (explicitly override
    /// any process-wide routing policy).
    pub fn route_pinned(mut self) -> Self {
        self.routing = Some(RoutingPolicy::Pinned);
        self
    }

    /// Route this initialization round-robin over `backends` (shared
    /// process-wide cursor: concurrent initializations spread evenly).
    pub fn route_round_robin<I, S>(mut self, backends: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.routing = Some(RoutingPolicy::RoundRobin(backends.into_iter().map(Into::into).collect()));
        self
    }

    /// Route this initialization to any cloneable backend advertising
    /// `capability` (e.g. noisy-vs-ideal selection).
    pub fn route_capability(mut self, capability: BackendCapability) -> Self {
        self.routing = Some(RoutingPolicy::Capability(capability));
        self
    }

    /// The effective routing policy of these options: backend params
    /// (`routing` = `pinned` | `round-robin` | `capability`, with
    /// `routing-backends` as a comma-separated list and
    /// `routing-capability` as a capability name) take precedence over the
    /// [`InitOptions::routing`] field. `Ok(None)` = inherit the
    /// process-wide policy.
    pub fn routing_policy(&self) -> Result<Option<RoutingPolicy>, QcorError> {
        let Some(mode) = self.params.get("routing") else {
            return Ok(self.routing.clone());
        };
        let HetValue::Str(mode) = mode else {
            return Err(QcorError::Routing("`routing` param must be a string".into()));
        };
        match mode.as_str() {
            "pinned" => Ok(Some(RoutingPolicy::Pinned)),
            "round-robin" => {
                let Some(HetValue::Str(list)) = self.params.get("routing-backends") else {
                    return Err(QcorError::Routing(
                        "round-robin routing needs a comma-separated `routing-backends` param".into(),
                    ));
                };
                let backends: Vec<String> =
                    list.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect();
                if backends.is_empty() {
                    return Err(QcorError::Routing("`routing-backends` lists no backend names".into()));
                }
                Ok(Some(RoutingPolicy::RoundRobin(backends)))
            }
            "capability" => {
                let Some(HetValue::Str(cap)) = self.params.get("routing-capability") else {
                    return Err(QcorError::Routing(
                        "capability routing needs a `routing-capability` param".into(),
                    ));
                };
                let capability = BackendCapability::parse(cap).ok_or_else(|| {
                    QcorError::Routing(format!(
                        "unknown capability `{cap}` (expected ideal | noisy | density | remote)"
                    ))
                })?;
                Ok(Some(RoutingPolicy::Capability(capability)))
            }
            other => Err(QcorError::Routing(format!(
                "unknown routing mode `{other}` (expected pinned | round-robin | capability)"
            ))),
        }
    }
}

/// `quantum::initialize()` — obtain an accelerator for the calling thread
/// and register it with the [`QPUManager`].
///
/// Because the built-in backends are registered as cloneable factories,
/// every call constructs a fresh instance: two threads that both
/// initialize get independent simulators (the §V-B.2 fix).
pub fn initialize(opts: InitOptions) -> Result<(), QcorError> {
    let mut params = opts.params.clone();
    if let Some(t) = opts.threads {
        params.insert("threads", t);
    }
    // Route first: the QPUManager decides which service this thread gets
    // (pinned by default; round-robin / capability for mixed workloads).
    let policy = opts.routing_policy()?;
    let backend = QPUManager::instance().route(policy.as_ref(), &opts.backend)?;
    let qpu = registry::get_accelerator(&backend, &params)?;
    let exec = ExecOptions { shots: opts.shots, seed: opts.seed };
    if let Some(tenant) = &opts.tenant {
        crate::exec_service::set_thread_tenant(Some(tenant));
    }
    QPUManager::instance().set_qpu(ThreadContext { qpu, resolved_backend: backend, exec, init: opts });
    Ok(())
}

/// Initialize against the **legacy shared singleton** backend
/// (`qpp-legacy-shared`): every thread ends up driving the *same*
/// accelerator instance, reproducing the pre-fix §V-A.2 behaviour. Used by
/// the race-reproduction experiment; do not use in real programs.
pub fn initialize_legacy_shared(shots: usize, seed: Option<u64>) -> Result<(), QcorError> {
    let opts = InitOptions::default().backend("qpp-legacy-shared").shots(shots);
    let opts = match seed {
        Some(s) => opts.seed(s),
        None => opts,
    };
    initialize(opts)
}

/// The calling thread's registered options, if initialized.
pub fn current_options() -> Option<InitOptions> {
    QPUManager::instance().get_qpu().map(|ctx| ctx.init)
}

/// Execute a concrete circuit against `q` on the calling thread's
/// accelerator with its registered shots/seed.
pub fn execute(q: &QReg, circuit: &Circuit) -> Result<(), QcorError> {
    let ctx = QPUManager::instance().get_qpu().ok_or(QcorError::NotInitialized)?;
    // The registry's live queue-depth gauge covers the execution: this is
    // what load-weighted capability routing steers around.
    let _load = registry::global().track_load(&ctx.resolved_backend);
    q.with_buffer(|buf| ctx.qpu.execute(buf, circuit, &ctx.exec))?;
    Ok(())
}

/// Execute with explicit options (overriding the registered shots/seed).
pub fn execute_with(q: &QReg, circuit: &Circuit, exec: &ExecOptions) -> Result<(), QcorError> {
    let ctx = QPUManager::instance().get_qpu().ok_or(QcorError::NotInitialized)?;
    let _load = registry::global().track_load(&ctx.resolved_backend);
    q.with_buffer(|buf| ctx.qpu.execute(buf, circuit, exec))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::qalloc;
    use qcor_circuit::library;

    #[test]
    fn execute_without_initialize_errors() {
        // Run on a scratch thread so other tests' registrations don't leak in.
        let err = std::thread::spawn(|| {
            let q = qalloc(2);
            execute(&q, &library::bell_kernel())
        })
        .join()
        .unwrap();
        assert_eq!(err, Err(QcorError::NotInitialized));
    }

    #[test]
    fn initialize_then_execute_bell() {
        std::thread::spawn(|| {
            initialize(InitOptions::default().threads(1).shots(256).seed(11)).unwrap();
            let q = qalloc(2);
            execute(&q, &library::bell_kernel()).unwrap();
            assert_eq!(q.total_shots(), 256);
            let counts = q.measurement_counts();
            assert!(counts.keys().all(|k| k == "00" || k == "11"), "{counts:?}");
            QPUManager::instance().clear_current();
        })
        .join()
        .unwrap();
    }

    #[test]
    fn unknown_backend_fails() {
        std::thread::spawn(|| {
            let err = initialize(InitOptions::default().backend("warp-drive"));
            assert_eq!(err, Err(QcorError::UnknownBackend("warp-drive".to_string())));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn per_thread_instances_are_distinct() {
        let mut handles = Vec::new();
        for _ in 0..2 {
            handles.push(std::thread::spawn(|| {
                initialize(InitOptions::default().threads(1)).unwrap();
                let ctx = QPUManager::instance().get_qpu().unwrap();
                let ptr = std::sync::Arc::as_ptr(&ctx.qpu) as *const () as usize;
                QPUManager::instance().clear_current();
                ptr
            }));
        }
        let a = handles.remove(0).join().unwrap();
        let b = handles.remove(0).join().unwrap();
        assert_ne!(a, b, "threads must receive distinct cloneable instances");
    }

    #[test]
    fn legacy_shared_instances_are_the_same() {
        let mut handles = Vec::new();
        for _ in 0..2 {
            handles.push(std::thread::spawn(|| {
                initialize_legacy_shared(16, Some(0)).unwrap();
                let ctx = QPUManager::instance().get_qpu().unwrap();
                let ptr = std::sync::Arc::as_ptr(&ctx.qpu) as *const () as usize;
                QPUManager::instance().clear_current();
                ptr
            }));
        }
        let a = handles.remove(0).join().unwrap();
        let b = handles.remove(0).join().unwrap();
        assert_eq!(a, b, "legacy mode must share the singleton");
    }

    #[test]
    fn routed_initialize_by_capability_selects_noisy_backend() {
        std::thread::spawn(|| {
            initialize(
                InitOptions::default()
                    .threads(1)
                    .shots(16)
                    .seed(1)
                    .route_capability(qcor_xacc::BackendCapability::Noisy),
            )
            .unwrap();
            let ctx = QPUManager::instance().get_qpu().unwrap();
            assert_eq!(ctx.qpu.name(), "qpp-noisy");
            QPUManager::instance().clear_current();
        })
        .join()
        .unwrap();
    }

    #[test]
    fn routing_params_override_field() {
        let opts = InitOptions::default()
            .route_capability(qcor_xacc::BackendCapability::Remote)
            .param("routing", "round-robin")
            .param("routing-backends", "qpp, qpp-density");
        assert_eq!(
            opts.routing_policy().unwrap(),
            Some(crate::RoutingPolicy::RoundRobin(vec!["qpp".into(), "qpp-density".into()]))
        );
    }

    #[test]
    fn bad_routing_params_error() {
        let unknown_mode = InitOptions::default().param("routing", "telepathy");
        assert!(matches!(unknown_mode.routing_policy(), Err(QcorError::Routing(_))));
        let missing_list = InitOptions::default().param("routing", "round-robin");
        assert!(matches!(missing_list.routing_policy(), Err(QcorError::Routing(_))));
        let bad_cap =
            InitOptions::default().param("routing", "capability").param("routing-capability", "warp");
        assert!(matches!(bad_cap.routing_policy(), Err(QcorError::Routing(_))));
        // And the error surfaces through initialize itself.
        std::thread::spawn(|| {
            let err = initialize(InitOptions::default().param("routing", "telepathy"));
            assert!(matches!(err, Err(QcorError::Routing(_))));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn bad_backend_params_error_through_initialize() {
        // Fallible factory construction: qpp's unknown-granularity and
        // unknown-fusion rejections surface as Err through initialize(),
        // exactly like the routing params — no panic inside the factory.
        std::thread::spawn(|| {
            let err = initialize(InitOptions::default().threads(1).param("granularity", "Sequential"));
            assert!(
                matches!(err, Err(QcorError::InvalidParam(ref msg)) if msg.contains("granularity")),
                "{err:?}"
            );
            let err = initialize(InitOptions::default().threads(1).param("fusion", "perhaps"));
            assert!(
                matches!(err, Err(QcorError::InvalidParam(ref msg)) if msg.contains("fusion")),
                "{err:?}"
            );
        })
        .join()
        .unwrap();
    }

    #[test]
    fn gate_fusion_knob_reaches_backend_and_counts_match() {
        std::thread::spawn(|| {
            initialize(InitOptions::default().threads(1).shots(128).seed(21).gate_fusion(true)).unwrap();
            let q_fused = qalloc(3);
            execute(&q_fused, &library::ghz_kernel(3)).unwrap();
            let fused = q_fused.measurement_counts();
            QPUManager::instance().clear_current();

            initialize(InitOptions::default().threads(1).shots(128).seed(21).gate_fusion(false)).unwrap();
            let q_interp = qalloc(3);
            execute(&q_interp, &library::ghz_kernel(3)).unwrap();
            let interp = q_interp.measurement_counts();
            QPUManager::instance().clear_current();

            assert_eq!(fused, interp, "fusion must not change seeded counts");
        })
        .join()
        .unwrap();
    }

    #[test]
    fn compile_cache_knob_reaches_backend_and_counts_match() {
        std::thread::spawn(|| {
            initialize(InitOptions::default().threads(1).shots(128).seed(29).compile_cache(true)).unwrap();
            let q_cached = qalloc(3);
            execute(&q_cached, &library::ghz_kernel(3)).unwrap();
            let cached = q_cached.measurement_counts();
            QPUManager::instance().clear_current();

            initialize(InitOptions::default().threads(1).shots(128).seed(29).compile_cache(false)).unwrap();
            let q_cold = qalloc(3);
            execute(&q_cold, &library::ghz_kernel(3)).unwrap();
            let cold = q_cold.measurement_counts();
            QPUManager::instance().clear_current();

            assert_eq!(cached, cold, "compile cache must not change seeded counts");

            // Unknown tokens surface as InvalidParam through initialize,
            // exactly like fusion.
            let err = initialize(InitOptions::default().threads(1).param("compile-cache", "perhaps"));
            assert!(
                matches!(err, Err(QcorError::InvalidParam(ref msg)) if msg.contains("compile-cache")),
                "{err:?}"
            );
        })
        .join()
        .unwrap();
    }

    #[test]
    fn sharding_knobs_reach_backend_and_counts_match() {
        std::thread::spawn(|| {
            initialize(InitOptions::default().threads(1).shots(128).seed(31)).unwrap();
            let q_plain = qalloc(3);
            execute(&q_plain, &library::ghz_kernel(3)).unwrap();
            let plain = q_plain.measurement_counts();
            QPUManager::instance().clear_current();

            initialize(InitOptions::default().threads(1).shots(128).seed(31).amp_shards("3").shot_procs(2))
                .unwrap();
            let q_sharded = qalloc(3);
            execute(&q_sharded, &library::ghz_kernel(3)).unwrap();
            let sharded = q_sharded.measurement_counts();
            QPUManager::instance().clear_current();

            assert_eq!(plain, sharded, "sharding must not change seeded counts");

            // Unknown tokens surface as InvalidParam through initialize,
            // exactly like fusion.
            let err = initialize(InitOptions::default().threads(1).amp_shards("many"));
            assert!(
                matches!(err, Err(QcorError::InvalidParam(ref msg)) if msg.contains("amp-shards")),
                "{err:?}"
            );
            let err = initialize(InitOptions::default().threads(1).param("shot-procs", "none"));
            assert!(
                matches!(err, Err(QcorError::InvalidParam(ref msg)) if msg.contains("shot-procs")),
                "{err:?}"
            );
        })
        .join()
        .unwrap();
    }

    #[test]
    fn precision_knob_reaches_backend_and_samples_distribution() {
        std::thread::spawn(|| {
            initialize(InitOptions::default().threads(1).shots(256).seed(8).precision("f32")).unwrap();
            let q = qalloc(2);
            execute(&q, &library::bell_kernel()).unwrap();
            let counts = q.measurement_counts();
            assert_eq!(counts.values().sum::<usize>(), 256);
            assert!(counts.keys().all(|k| k == "00" || k == "11"), "{counts:?}");
            QPUManager::instance().clear_current();

            // Unknown tokens surface as InvalidParam through initialize,
            // exactly like fusion.
            let err = initialize(InitOptions::default().threads(1).precision("f16"));
            assert!(
                matches!(err, Err(QcorError::InvalidParam(ref msg)) if msg.contains("precision")),
                "{err:?}"
            );
        })
        .join()
        .unwrap();
    }

    #[test]
    fn noise_mode_knob_reaches_noisy_backend() {
        std::thread::spawn(|| {
            // Noiseless model: every mode must produce clean Bell counts.
            for mode in ["trajectory", "density", "interpreted"] {
                initialize(
                    InitOptions::default()
                        .backend("qpp-noisy")
                        .threads(1)
                        .shots(128)
                        .seed(23)
                        .noise_mode(mode)
                        .param("depolarizing", 0.0)
                        .param("readout-error", 0.0),
                )
                .unwrap();
                let q = qalloc(2);
                execute(&q, &library::bell_kernel()).unwrap();
                let counts = q.measurement_counts();
                assert_eq!(counts.values().sum::<usize>(), 128, "mode {mode}");
                assert!(counts.keys().all(|k| k == "00" || k == "11"), "mode {mode}: {counts:?}");
                QPUManager::instance().clear_current();
            }

            // Unknown tokens surface as InvalidParam through initialize,
            // exactly like fusion.
            let err = initialize(InitOptions::default().backend("qpp-noisy").threads(1).noise_mode("exact"));
            assert!(
                matches!(err, Err(QcorError::InvalidParam(ref msg)) if msg.contains("noise-mode")),
                "{err:?}"
            );
        })
        .join()
        .unwrap();
    }

    #[test]
    fn execute_with_overrides_shots() {
        std::thread::spawn(|| {
            initialize(InitOptions::default().threads(1).shots(1024).seed(1)).unwrap();
            let q = qalloc(2);
            execute_with(&q, &library::bell_kernel(), &ExecOptions::with_shots(8).seeded(2)).unwrap();
            assert_eq!(q.total_shots(), 8);
            QPUManager::instance().clear_current();
        })
        .join()
        .unwrap();
    }
}
