//! User-level threading: `qcor::spawn` and `qcor::async_task`.
//!
//! Paper Listings 4 and 5 launch kernels with raw `std::thread` /
//! `std::async` and require the user to call `quantum::initialize()`
//! manually at the top of each thread (a limitation the paper notes in
//! §V-C, proposing `qcor::thread` / `qcor::async` wrappers as the fix).
//! These are those wrappers. Since the async-queue rework they no longer
//! spawn one OS thread per task: every task is enqueued on the global
//! [`ExecutionService`](crate::ExecutionService) — a bounded kernel queue
//! drained by a fixed-size shared pool — and still gets a *fresh*
//! accelerator instance by replaying the parent thread's initialize
//! options on its executor.
//!
//! [`TaskFuture`] plays the role of `std::future`: `get()` blocks for and
//! returns the task's value; `is_ready()` polls without blocking;
//! `wait()` is the error-aware join that surfaces queue-level outcomes
//! (a task shed by backpressure) instead of panicking.

use crate::exec_service::{ExecutionService, TaskServiceCtx};
use crate::QcorError;
use crossbeam::channel::Receiver;

/// How a queued task ended: ran to completion (value or panic payload),
/// was shed by the queue's backpressure policy (or an expired deadline)
/// before running, or was explicitly cancelled while queued.
pub(crate) enum TaskOutcome<T> {
    Completed(std::thread::Result<T>),
    Shed,
    Cancelled,
}

/// A handle to an asynchronously running task (the `std::future` analogue
/// of paper Listing 5), resolved by the execution service when the task
/// leaves the kernel queue.
///
/// Dropping the future detaches the task (fire-and-forget: it still
/// runs); use [`TaskFuture::cancel`] to abort it while it is queued.
pub struct TaskFuture<T> {
    rx: Receiver<TaskOutcome<T>>,
    /// Backlink to the owning service: cancellation while queued, and the
    /// work-conserving join when waited from inside a task of the same
    /// service.
    ctx: TaskServiceCtx,
}

impl<T> std::fmt::Debug for TaskFuture<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskFuture").field("ready", &self.is_ready()).finish()
    }
}

impl<T> TaskFuture<T> {
    pub(crate) fn with_ctx(rx: Receiver<TaskOutcome<T>>, ctx: TaskServiceCtx) -> Self {
        TaskFuture { rx, ctx }
    }

    /// True when the task has finished and `get` will not block.
    pub fn is_ready(&self) -> bool {
        !self.rx.is_empty()
    }

    /// Abort the task if it is **still queued**: the task never runs and
    /// [`TaskFuture::wait`] resolves as [`QcorError::TaskCancelled`].
    /// Returns `true` exactly when this call removed the task from the
    /// queue. Once the task has been dispatched (or already finished, was
    /// shed, or was cancelled before), `cancel` returns `false` and
    /// instead **requests a cooperative stop**: the task's
    /// `qcor_sim::CancelToken` is set, so checkpointed code — a chunked
    /// shot sweep, or anything polling `qcor_sim::cancel_requested()` —
    /// stops at its next safe point. The future still resolves with
    /// whatever the (possibly truncated) task returns; there is no
    /// preemptive mid-execution abort.
    pub fn cancel(&self) -> bool {
        self.ctx.cancel()
    }

    /// Block until the task completes and return its outcome: `Ok(value)`,
    /// [`QcorError::TaskShed`] if the queue's backpressure policy (or an
    /// expired deadline) shed this task before it ran, or
    /// [`QcorError::TaskCancelled`] after a successful
    /// [`TaskFuture::cancel`]. Re-raises the task's panic, if any.
    ///
    /// Called from inside an executing task of the same service, `wait`
    /// is **work-conserving**: instead of parking while holding an
    /// executor permit, it pops and runs queued tasks of the service until
    /// this future resolves (see the `ExecutionService` module docs) — so
    /// sibling-future joins inside tasks can never exhaust the permit
    /// budget.
    pub fn wait(self) -> Result<T, QcorError> {
        self.ctx.help_drain_while(|| self.rx.is_empty());
        match self.rx.recv().expect("task dropped its result channel without resolving") {
            TaskOutcome::Completed(Ok(value)) => Ok(value),
            TaskOutcome::Completed(Err(payload)) => std::panic::resume_unwind(payload),
            TaskOutcome::Shed => Err(QcorError::TaskShed),
            TaskOutcome::Cancelled => Err(QcorError::TaskCancelled),
        }
    }

    /// Block until the task completes and return its value
    /// (`future.get()`). Re-raises the task's panic; panics if the task
    /// was shed (use [`TaskFuture::wait`] to observe shedding as an error).
    pub fn get(self) -> T {
        match self.wait() {
            Ok(value) => value,
            Err(err) => panic!("task did not complete: {err}"),
        }
    }

    /// Alias for [`TaskFuture::get`], matching `std::thread::join` naming.
    pub fn join(self) -> T {
        self.get()
    }
}

/// Launch `f` as a task on the global execution service with automatic
/// per-task quantum initialization (the proposed `qcor::thread` wrapper).
///
/// If the parent thread has initialized, the task re-initializes with the
/// same options on its executor — and therefore gets its **own
/// accelerator instance**; if not, the task starts uninitialized and `f`
/// may call [`initialize`](crate::initialize) itself.
///
/// Submission blocks while the kernel queue is at its high-water mark
/// (backpressure); use [`ExecutionService::submit`] on a configured
/// service for reject/shed semantics.
///
/// Tasks run on a **fixed-size** executor pool, and joins are
/// **work-conserving**: a task that `wait`s on the future of another task
/// of the same service helps drain the kernel queue on its own executor
/// instead of parking, so in-task sibling joins can never exhaust the
/// executor slots (see the `ExecutionService` module docs).
pub fn spawn<F, T>(f: F) -> TaskFuture<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    ExecutionService::global()
        .submit_blocking(f)
        .expect("blocking submission to the global execution service cannot fail")
}

/// Asynchronously launch `f` (the `qcor::async` analogue of Listing 5).
/// Identical to [`spawn`]; provided under the paper's name for
/// readability at call sites that overlap other work.
pub fn async_task<F, T>(f: F) -> TaskFuture<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    spawn(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::qalloc;
    use crate::qpu_manager::QPUManager;
    use crate::runtime::{execute, InitOptions};
    use qcor_circuit::library;

    #[test]
    fn spawned_task_returns_value() {
        let f = spawn(|| 6 * 7);
        assert_eq!(f.get(), 42);
    }

    #[test]
    fn child_inherits_initialization() {
        std::thread::spawn(|| {
            crate::initialize(InitOptions::default().threads(1).shots(64).seed(1)).unwrap();
            let task = spawn(|| {
                // No manual initialize here: the wrapper did it.
                let q = qalloc(2);
                execute(&q, &library::bell_kernel()).unwrap();
                q.total_shots()
            });
            assert_eq!(task.get(), 64);
            QPUManager::instance().clear_current();
        })
        .join()
        .unwrap();
    }

    #[test]
    fn uninitialized_parent_spawns_uninitialized_child() {
        std::thread::spawn(|| {
            let task = spawn(|| {
                let q = qalloc(2);
                execute(&q, &library::bell_kernel())
            });
            assert_eq!(task.get(), Err(crate::QcorError::NotInitialized));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn two_parallel_bell_tasks_get_distinct_instances() {
        std::thread::spawn(|| {
            crate::initialize(InitOptions::default().threads(1).shots(32).seed(3)).unwrap();
            let make = || {
                spawn(|| {
                    let ctx = QPUManager::instance().get_qpu().unwrap();
                    let q = qalloc(2);
                    execute(&q, &library::bell_kernel()).unwrap();
                    // Hand the live Arc back so the instances can be compared
                    // while both are still allocated (freed addresses may be
                    // reused between non-overlapping tasks).
                    (ctx.qpu, q.total_shots())
                })
            };
            let (t0, t1) = (make(), make());
            let (q0, s0) = t0.get();
            let (q1, s1) = t1.get();
            let p0 = std::sync::Arc::as_ptr(&q0) as *const () as usize;
            let p1 = std::sync::Arc::as_ptr(&q1) as *const () as usize;
            assert_ne!(p0, p1, "parallel tasks must not share an accelerator");
            assert_eq!((s0, s1), (32, 32));
            QPUManager::instance().clear_current();
        })
        .join()
        .unwrap();
    }

    #[test]
    fn is_ready_becomes_true() {
        let task = spawn(|| 1);
        // Wait for the value to land, then poll.
        let v = {
            while !task.is_ready() {
                std::thread::yield_now();
            }
            task.get()
        };
        assert_eq!(v, 1);
    }

    #[test]
    fn task_panic_propagates_on_get() {
        let task = spawn(|| panic!("deliberate"));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || task.get()));
        assert!(result.is_err());
    }

    #[test]
    fn wait_returns_ok_for_completed_task() {
        assert_eq!(spawn(|| 7).wait(), Ok(7));
    }
}
