//! User-level threading: `qcor::spawn` and `qcor::async_task`.
//!
//! Paper Listings 4 and 5 launch kernels with raw `std::thread` /
//! `std::async` and require the user to call `quantum::initialize()`
//! manually at the top of each thread (a limitation the paper notes in
//! §V-C, proposing `qcor::thread` / `qcor::async` wrappers as the fix).
//! These are those wrappers: they capture the parent thread's initialize
//! options, re-initialize on the child (obtaining a *fresh* accelerator
//! instance from the cloneable factory), run the closure, and tear the
//! registration down.
//!
//! [`TaskFuture`] plays the role of `std::future`: `get()` blocks for and
//! returns the task's value; `is_ready()` polls without blocking.

use crate::qpu_manager::QPUManager;
use crate::runtime::{current_options, initialize};
use crossbeam::channel::{bounded, Receiver};
use std::thread::JoinHandle;

/// A handle to an asynchronously running task (the `std::future` analogue
/// of paper Listing 5).
pub struct TaskFuture<T> {
    rx: Receiver<std::thread::Result<T>>,
    handle: JoinHandle<()>,
}

impl<T> std::fmt::Debug for TaskFuture<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskFuture").field("ready", &self.is_ready()).finish()
    }
}

impl<T> TaskFuture<T> {
    /// True when the task has finished and `get` will not block.
    pub fn is_ready(&self) -> bool {
        !self.rx.is_empty()
    }

    /// Block until the task completes and return its value
    /// (`future.get()`). Re-raises the task's panic, if any.
    pub fn get(self) -> T {
        let result = self.rx.recv().expect("task thread dropped its result channel");
        let _ = self.handle.join();
        match result {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Alias for [`TaskFuture::get`], matching `std::thread::join` naming.
    pub fn join(self) -> T {
        self.get()
    }
}

/// Launch `f` on a new thread with automatic per-thread quantum
/// initialization (the proposed `qcor::thread` wrapper).
///
/// If the parent thread has initialized, the child re-initializes with the
/// same options — and therefore gets its **own accelerator instance**; if
/// not, the child starts uninitialized and `f` may call
/// [`initialize`](crate::initialize) itself.
pub fn spawn<F, T>(f: F) -> TaskFuture<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let inherited = current_options();
    let (tx, rx) = bounded(1);
    let handle = std::thread::Builder::new()
        .name("qcor-task".to_string())
        .spawn(move || {
            if let Some(opts) = inherited {
                // Fresh instance per thread: the QPUManager registration
                // that the paper's manual quantum::initialize() performed.
                initialize(opts).expect("re-initializing inherited backend cannot fail");
            }
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            QPUManager::instance().clear_current();
            let _ = tx.send(result);
        })
        .expect("failed to spawn qcor task thread");
    TaskFuture { rx, handle }
}

/// Asynchronously launch `f` (the `qcor::async` analogue of Listing 5).
/// Identical to [`spawn`]; provided under the paper's name for
/// readability at call sites that overlap other work.
pub fn async_task<F, T>(f: F) -> TaskFuture<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    spawn(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::qalloc;
    use crate::runtime::{execute, InitOptions};
    use qcor_circuit::library;

    #[test]
    fn spawned_task_returns_value() {
        let f = spawn(|| 6 * 7);
        assert_eq!(f.get(), 42);
    }

    #[test]
    fn child_inherits_initialization() {
        std::thread::spawn(|| {
            crate::initialize(InitOptions::default().threads(1).shots(64).seed(1)).unwrap();
            let task = spawn(|| {
                // No manual initialize here: the wrapper did it.
                let q = qalloc(2);
                execute(&q, &library::bell_kernel()).unwrap();
                q.total_shots()
            });
            assert_eq!(task.get(), 64);
            QPUManager::instance().clear_current();
        })
        .join()
        .unwrap();
    }

    #[test]
    fn uninitialized_parent_spawns_uninitialized_child() {
        std::thread::spawn(|| {
            let task = spawn(|| {
                let q = qalloc(2);
                execute(&q, &library::bell_kernel())
            });
            assert_eq!(task.get(), Err(crate::QcorError::NotInitialized));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn two_parallel_bell_tasks_get_distinct_instances() {
        std::thread::spawn(|| {
            crate::initialize(InitOptions::default().threads(1).shots(32).seed(3)).unwrap();
            let make = || {
                spawn(|| {
                    let ctx = QPUManager::instance().get_qpu().unwrap();
                    let q = qalloc(2);
                    execute(&q, &library::bell_kernel()).unwrap();
                    // Hand the live Arc back so the instances can be compared
                    // while both are still allocated (freed addresses may be
                    // reused between non-overlapping tasks).
                    (ctx.qpu, q.total_shots())
                })
            };
            let (t0, t1) = (make(), make());
            let (q0, s0) = t0.get();
            let (q1, s1) = t1.get();
            let p0 = std::sync::Arc::as_ptr(&q0) as *const () as usize;
            let p1 = std::sync::Arc::as_ptr(&q1) as *const () as usize;
            assert_ne!(p0, p1, "parallel tasks must not share an accelerator");
            assert_eq!((s0, s1), (32, 32));
            QPUManager::instance().clear_current();
        })
        .join()
        .unwrap();
    }

    #[test]
    fn is_ready_becomes_true() {
        let task = spawn(|| 1);
        // Wait for the value to land, then poll.
        let v = {
            while !task.is_ready() {
                std::thread::yield_now();
            }
            task.get()
        };
        assert_eq!(v, 1);
    }

    #[test]
    fn task_panic_propagates_on_get() {
        let task = spawn(|| panic!("deliberate"));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || task.get()));
        assert!(result.is_err());
    }
}
