//! `qalloc` and the global buffer table (paper Listing 6).
//!
//! The original implementation kept a global
//! `map<string, shared_ptr<AcceleratorBuffer>> allocated_buffers` and
//! inserted into it from `qalloc()` without synchronization; the paper's
//! fix wraps the insertion in a `std::lock_guard`. Here the same table is a
//! `Mutex<HashMap<...>>` — the lock is the point, not an accident of Rust's
//! safety rules.

use crate::QcorError;
use parking_lot::Mutex;
use qcor_xacc::AcceleratorBuffer;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The global allocated-buffers table of Listing 6.
static ALLOCATED_BUFFERS: Mutex<Option<HashMap<String, QReg>>> = Mutex::new(None);

/// Monotonic suffix making generated buffer names unique even across
/// concurrent allocations.
static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// A handle to an allocated qubit register — the `qreg` of QCOR programs.
///
/// Cloning a `QReg` aliases the same underlying buffer (like the
/// `shared_ptr<AcceleratorBuffer>` it reproduces); all access is
/// mutex-guarded and therefore safe from any thread.
#[derive(Clone)]
pub struct QReg {
    buffer: Arc<Mutex<AcceleratorBuffer>>,
    size: usize,
}

impl std::fmt::Debug for QReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let buf = self.buffer.lock();
        f.debug_struct("QReg").field("name", &buf.name()).field("size", &self.size).finish()
    }
}

impl QReg {
    /// Register size in qubits (`q.size()` in XASM).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Buffer name.
    pub fn name(&self) -> String {
        self.buffer.lock().name().to_string()
    }

    /// Run `f` with exclusive access to the underlying buffer.
    pub fn with_buffer<R>(&self, f: impl FnOnce(&mut AcceleratorBuffer) -> R) -> R {
        f(&mut self.buffer.lock())
    }

    /// Snapshot of the measurement counts.
    pub fn measurement_counts(&self) -> std::collections::BTreeMap<String, usize> {
        self.buffer.lock().measurements().clone()
    }

    /// Total recorded shots.
    pub fn total_shots(&self) -> usize {
        self.buffer.lock().total_shots()
    }

    /// Observed probability of a bitstring.
    pub fn probability(&self, bits: &str) -> f64 {
        self.buffer.lock().probability(bits)
    }

    /// ⟨Z...Z⟩ over the measured bits.
    pub fn exp_val_z(&self) -> f64 {
        self.buffer.lock().exp_val_z()
    }

    /// Print the buffer (the `q.print()` of Listing 1).
    pub fn print(&self) {
        self.buffer.lock().print();
    }

    /// Render the Listing-2 JSON document.
    pub fn to_json(&self) -> String {
        self.buffer.lock().to_json()
    }

    /// Discard recorded measurements (e.g. between objective evaluations).
    pub fn clear_measurements(&self) {
        self.buffer.lock().clear_measurements();
    }
}

/// Allocate an `n`-qubit register and register it in the global buffer
/// table — thread-safe, per paper Listing 6.
pub fn qalloc(n: usize) -> QReg {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    // Random XACC-style prefix plus a unique counter.
    let base = AcceleratorBuffer::new(n);
    let name = format!("{}_{id}", base.name());
    qalloc_named(name, n)
}

/// Allocate with an explicit buffer name (useful in tests).
pub fn qalloc_named(name: impl Into<String>, n: usize) -> QReg {
    let name = name.into();
    let qreg = QReg { buffer: Arc::new(Mutex::new(AcceleratorBuffer::with_name(name.clone(), n))), size: n };
    // The Listing-6 critical section.
    let mut table = ALLOCATED_BUFFERS.lock();
    table.get_or_insert_with(HashMap::new).insert(name, qreg.clone());
    qreg
}

/// Number of buffers currently registered in the global table.
pub fn allocated_buffer_count() -> usize {
    ALLOCATED_BUFFERS.lock().as_ref().map(HashMap::len).unwrap_or(0)
}

/// Empty the global table (tests and long-running processes).
pub fn clear_allocated_buffers() {
    if let Some(table) = ALLOCATED_BUFFERS.lock().as_mut() {
        table.clear();
    }
}

/// Look up a registered buffer by name.
pub fn find_buffer(name: &str) -> Result<QReg, QcorError> {
    ALLOCATED_BUFFERS
        .lock()
        .as_ref()
        .and_then(|t| t.get(name).cloned())
        .ok_or_else(|| QcorError::Kernel(format!("no allocated buffer named `{name}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qalloc_registers_buffers() {
        clear_allocated_buffers();
        let before = allocated_buffer_count();
        let q = qalloc(2);
        assert_eq!(q.size(), 2);
        assert_eq!(allocated_buffer_count(), before + 1);
        assert!(find_buffer(&q.name()).is_ok());
    }

    #[test]
    fn concurrent_qalloc_is_safe_and_lossless() {
        clear_allocated_buffers();
        let threads = 8;
        let per_thread = 64;
        let mut handles = Vec::new();
        for _ in 0..threads {
            handles.push(std::thread::spawn(move || {
                for _ in 0..per_thread {
                    let q = qalloc(2);
                    assert_eq!(q.size(), 2);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(allocated_buffer_count(), threads * per_thread);
        clear_allocated_buffers();
    }

    #[test]
    fn clones_alias_the_same_buffer() {
        let q = qalloc_named("alias_test", 2);
        let q2 = q.clone();
        q.with_buffer(|b| b.add_count("00", 3));
        assert_eq!(q2.total_shots(), 3);
    }

    #[test]
    fn unknown_buffer_lookup_fails() {
        assert!(find_buffer("no_such_buffer").is_err());
    }
}
