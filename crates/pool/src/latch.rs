//! Counting latches used to implement fork/join completion.
//!
//! A [`CountLatch`] is set to the number of participants of a parallel
//! construct; each participant counts it down once, and the thread that
//! issued the construct blocks until the count reaches zero. This is the
//! same completion mechanism an OpenMP runtime uses at the implicit barrier
//! that ends a parallel region.
//!
//! # Lost-wakeup audit (the condvar discipline)
//!
//! Both latches follow the only condvar protocol that cannot lose a wakeup:
//!
//! 1. **Waiters re-check the predicate under the lock.** `wait` takes the
//!    mutex and loops `while count != 0 { cond.wait(..) }` — the initial
//!    lock-free fast-path check is an optimization only, never the decision
//!    to sleep. A spurious wakeup or a stale fast-path read therefore can't
//!    strand a waiter.
//! 2. **The final decrementer notifies while holding the lock.** Taking the
//!    mutex between the atomic decrement and `notify_all` serializes the
//!    notification against any waiter that is between its predicate check
//!    and its `cond.wait` — the decrementer either sees the waiter already
//!    parked (notify wakes it) or the waiter's in-lock re-check sees the
//!    zero count (it never parks).
//!
//! The counters themselves use `AcqRel`/`Acquire` orderings so a waiter
//! that observes zero also observes every write the participants made
//! before counting down. The `latch_wakeup_race_*` tests below hammer the
//! narrow window between the fast-path check and `cond.wait` (set
//! `QCOR_STRESS=1` for the multi-thousand-iteration version in
//! `tests/tests/pool_stress.rs`, which drives the full fork/join stack).

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A latch initialized with a count; [`CountLatch::count_down`] decrements it
/// and [`CountLatch::wait`] blocks until it reaches zero.
///
/// The fast path (`count_down` when other participants remain) is a single
/// atomic `fetch_sub`; the mutex/condvar pair is only touched by the last
/// decrementer and by waiters.
#[derive(Debug)]
pub struct CountLatch {
    remaining: AtomicUsize,
    lock: Mutex<()>,
    cond: Condvar,
}

impl CountLatch {
    /// Create a latch that requires `count` decrements before waiters wake.
    pub fn new(count: usize) -> Self {
        Self { remaining: AtomicUsize::new(count), lock: Mutex::new(()), cond: Condvar::new() }
    }

    /// Number of outstanding decrements.
    pub fn remaining(&self) -> usize {
        self.remaining.load(Ordering::Acquire)
    }

    /// Record one participant's completion. Panics if called more times than
    /// the initial count.
    pub fn count_down(&self) {
        let prev = self.remaining.fetch_sub(1, Ordering::AcqRel);
        assert!(prev > 0, "CountLatch::count_down called more times than its count");
        if prev == 1 {
            // Last participant: wake every waiter. Taking the lock before
            // notifying avoids the lost-wakeup race with `wait`'s re-check.
            let _guard = self.lock.lock();
            self.cond.notify_all();
        }
    }

    /// Block until the count reaches zero. Returns immediately if it already
    /// has.
    pub fn wait(&self) {
        if self.remaining.load(Ordering::Acquire) == 0 {
            return;
        }
        let mut guard = self.lock.lock();
        while self.remaining.load(Ordering::Acquire) != 0 {
            self.cond.wait(&mut guard);
        }
    }
}

/// A dynamically sized latch: participants are added with
/// [`WaitGroup::add`] and removed with [`WaitGroup::done`], and
/// [`WaitGroup::wait`] blocks until the count is zero.
///
/// Unlike [`CountLatch`] the total is not fixed up front, which suits
/// [`crate::Scope`] where tasks may spawn further tasks.
#[derive(Debug, Default)]
pub struct WaitGroup {
    count: AtomicUsize,
    lock: Mutex<()>,
    cond: Condvar,
}

impl WaitGroup {
    /// Create an empty wait group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `n` additional participants.
    pub fn add(&self, n: usize) {
        self.count.fetch_add(n, Ordering::AcqRel);
    }

    /// Current participant count.
    pub fn count(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }

    /// Record one participant's completion.
    pub fn done(&self) {
        let prev = self.count.fetch_sub(1, Ordering::AcqRel);
        assert!(prev > 0, "WaitGroup::done called without a matching add");
        if prev == 1 {
            let _guard = self.lock.lock();
            self.cond.notify_all();
        }
    }

    /// Block until the participant count reaches zero.
    pub fn wait(&self) {
        if self.count.load(Ordering::Acquire) == 0 {
            return;
        }
        let mut guard = self.lock.lock();
        while self.count.load(Ordering::Acquire) != 0 {
            self.cond.wait(&mut guard);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn latch_zero_count_does_not_block() {
        let latch = CountLatch::new(0);
        latch.wait();
    }

    #[test]
    fn latch_counts_down_across_threads() {
        let latch = Arc::new(CountLatch::new(8));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let l = Arc::clone(&latch);
            handles.push(thread::spawn(move || l.count_down()));
        }
        latch.wait();
        assert_eq!(latch.remaining(), 0);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "count_down called more times")]
    fn latch_overflow_panics() {
        let latch = CountLatch::new(1);
        latch.count_down();
        latch.count_down();
    }

    #[test]
    fn waitgroup_add_done_wait() {
        let wg = Arc::new(WaitGroup::new());
        wg.add(4);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let w = Arc::clone(&wg);
            handles.push(thread::spawn(move || w.done()));
        }
        wg.wait();
        assert_eq!(wg.count(), 0);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn waitgroup_wait_on_empty_returns() {
        WaitGroup::new().wait();
    }

    /// How many wait/notify race iterations the audit tests run: a quick
    /// default so `cargo test` stays fast, thousands under `QCOR_STRESS=1`
    /// to actually chase the lost-wakeup window on a loaded machine.
    fn race_iterations() -> usize {
        if std::env::var("QCOR_STRESS").map(|v| v == "1").unwrap_or(false) {
            20_000
        } else {
            500
        }
    }

    #[test]
    fn latch_wakeup_race_single_participant() {
        // Tightest possible window: the waiter races a lone decrementer.
        // A lost wakeup hangs the test (caught by the harness timeout).
        for _ in 0..race_iterations() {
            let latch = Arc::new(CountLatch::new(1));
            let l = Arc::clone(&latch);
            let t = thread::spawn(move || l.count_down());
            latch.wait();
            assert_eq!(latch.remaining(), 0);
            t.join().unwrap();
        }
    }

    #[test]
    fn waitgroup_wakeup_race_add_done() {
        for _ in 0..race_iterations() {
            let wg = Arc::new(WaitGroup::new());
            wg.add(2);
            let (a, b) = (Arc::clone(&wg), Arc::clone(&wg));
            let t1 = thread::spawn(move || a.done());
            let t2 = thread::spawn(move || b.done());
            wg.wait();
            assert_eq!(wg.count(), 0);
            t1.join().unwrap();
            t2.join().unwrap();
        }
    }

    #[test]
    fn latch_many_waiters_all_wake() {
        let latch = Arc::new(CountLatch::new(1));
        let mut waiters = Vec::new();
        for _ in 0..4 {
            let l = Arc::clone(&latch);
            waiters.push(thread::spawn(move || l.wait()));
        }
        thread::sleep(std::time::Duration::from_millis(10));
        latch.count_down();
        for w in waiters {
            w.join().unwrap();
        }
    }
}
