//! # qcor-pool — work-sharing thread pool substrate
//!
//! The paper's evaluation runs quantum kernels on the Quantum++ simulator,
//! whose inner loops are parallelized with OpenMP and whose thread count is
//! controlled by `OMP_NUM_THREADS`. This crate is the Rust analogue of that
//! substrate: a small, from-scratch work-sharing runtime providing
//!
//! * [`ThreadPool`] — a team of persistent worker threads plus the calling
//!   thread (the "master", as in an OpenMP parallel region),
//! * [`ThreadPool::parallel_for`] — a work-shared loop over an index range
//!   with static or dynamic chunk scheduling,
//! * [`ThreadPool::parallel_reduce`] — a work-shared map/reduce,
//! * [`ThreadPool::scope`] — fork/join task parallelism with borrowed data,
//! * [`num_threads_from_env`] — the `OMP_NUM_THREADS` analogue
//!   (`QCOR_NUM_THREADS`).
//!
//! The design goal mirrors OpenMP semantics that matter for the paper's
//! experiments:
//!
//! * a pool created with `num_threads = n` uses exactly `n` CPU workers for a
//!   work-shared loop (`n - 1` background threads plus the caller), so that
//!   "one kernel with N threads" and "two kernels with N/2 threads each"
//!   partition the machine the same way the paper's QCOR + OpenMP setup does;
//! * nested parallelism is disabled by default (like `OMP_NESTED=false`): a
//!   `parallel_for` issued from inside a worker of the *same* pool runs
//!   inline sequentially instead of deadlocking or oversubscribing.
//!
//! Everything is implemented with `crossbeam` channels, `parking_lot`
//! synchronization and a handful of atomics; there is no dependency on rayon
//! or OpenMP.

mod latch;
mod pool;
mod scope;

pub use latch::{CountLatch, WaitGroup};
pub use pool::{
    batch_steal_count, current_worker_pool_id, reset_batch_steal_count, PoolBuilder, Schedule, ThreadPool,
};
pub use scope::Scope;

use std::num::NonZeroUsize;

/// Environment variable controlling the default worker count, analogous to
/// `OMP_NUM_THREADS` in the paper's setup.
pub const NUM_THREADS_ENV: &str = "QCOR_NUM_THREADS";

/// Number of logical CPUs visible to the process (at least 1).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Resolve the default thread count: `QCOR_NUM_THREADS` if set and valid,
/// otherwise the number of logical CPUs.
///
/// This mirrors how the paper's experiments set `OMP_NUM_THREADS` to choose
/// the per-kernel simulator thread count.
pub fn num_threads_from_env() -> usize {
    match std::env::var(NUM_THREADS_ENV) {
        Ok(v) => v.trim().parse::<usize>().ok().filter(|&n| n > 0).unwrap_or_else(available_parallelism),
        Err(_) => available_parallelism(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn available_parallelism_is_positive() {
        assert!(available_parallelism() >= 1);
    }

    #[test]
    fn env_fallback_is_positive() {
        assert!(num_threads_from_env() >= 1);
    }
}
