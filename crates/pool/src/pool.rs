//! The work-sharing thread pool.
//!
//! A [`ThreadPool`] owns `num_threads - 1` persistent background workers;
//! the thread that issues a parallel construct acts as the remaining team
//! member, exactly like the master thread of an OpenMP parallel region. Work
//! items are distributed over the team either statically (one contiguous
//! chunk per team member) or dynamically (members repeatedly claim
//! `grain`-sized chunks from an atomic counter).

use crate::latch::CountLatch;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::any::Any;
use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Chunk-scheduling policy for [`ThreadPool::parallel_for`].
///
/// `Static` mirrors OpenMP's `schedule(static)`: the iteration range is split
/// into one contiguous chunk per team member. `Dynamic(grain)` mirrors
/// `schedule(dynamic, grain)`: members repeatedly claim the next `grain`
/// iterations until the range is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// One contiguous chunk per team member.
    Static,
    /// Members claim chunks of the given size (clamped to at least 1).
    Dynamic(usize),
    /// Dynamic scheduling with an automatically chosen grain
    /// (`len / (4 * team)` clamped to at least 1).
    Auto,
}

thread_local! {
    /// Pool id of the pool this thread works for (0 = not a pool worker).
    static WORKER_OF: Cell<usize> = const { Cell::new(0) };
}

static NEXT_POOL_ID: AtomicUsize = AtomicUsize::new(1);

/// Id of the pool the current thread is a background worker of, or 0 when
/// the thread is not a pool worker (callers' threads, dispatcher threads
/// and team-of-one inline execution all report 0).
///
/// This is the current-worker check external executors build on: the
/// runtime's execution service uses it (together with [`ThreadPool::id`])
/// to assert that its work-conserving join only ever runs queued tasks on
/// threads that already hold one of the service's executor slots.
pub fn current_worker_pool_id() -> usize {
    WORKER_OF.with(|w| w.get())
}

/// Type-erased reference to an in-flight parallel construct.
///
/// The pointee is a stack-allocated job descriptor in the frame of the
/// thread that issued the construct; that thread blocks on the job's latch
/// before its frame unwinds, so the pointer is valid for as long as any
/// worker can observe it.
struct JobRef {
    ptr: *const (),
    run: unsafe fn(*const ()),
}

// SAFETY: the pointee is Sync (shared job state made of atomics, a latch and
// a `Fn + Sync` closure) and outlives every access — see `JobRef` docs.
unsafe impl Send for JobRef {}

enum Message {
    Job(JobRef),
    Task(Box<dyn FnOnce() + Send>),
    Shutdown,
}

/// Shared state of one `parallel_for` invocation.
struct ForJob<'f> {
    func: &'f (dyn Fn(Range<usize>) + Sync),
    start: usize,
    end: usize,
    grain: usize,
    schedule: Schedule,
    team: usize,
    /// Next iteration index (dynamic) or next participant slot (static).
    cursor: AtomicUsize,
    latch: CountLatch,
    panicked: AtomicBool,
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
}

impl<'f> ForJob<'f> {
    /// Claim and run chunks until the range is exhausted.
    fn work(&self) {
        loop {
            let chunk = match self.schedule {
                Schedule::Static => {
                    let slot = self.cursor.fetch_add(1, Ordering::Relaxed);
                    if slot >= self.team {
                        break;
                    }
                    let len = self.end - self.start;
                    let lo = self.start + slot * len / self.team;
                    let hi = self.start + (slot + 1) * len / self.team;
                    lo..hi
                }
                Schedule::Dynamic(_) | Schedule::Auto => {
                    let lo = self.cursor.fetch_add(self.grain, Ordering::Relaxed);
                    if lo >= self.end {
                        break;
                    }
                    lo..(lo + self.grain).min(self.end)
                }
            };
            if chunk.is_empty() {
                continue;
            }
            let result = catch_unwind(AssertUnwindSafe(|| (self.func)(chunk)));
            if let Err(payload) = result {
                self.panicked.store(true, Ordering::Release);
                let mut slot = self.panic_payload.lock();
                if slot.is_none() {
                    *slot = Some(payload);
                }
                break;
            }
            if self.panicked.load(Ordering::Acquire) {
                break;
            }
        }
    }

    unsafe fn run_erased(ptr: *const ()) {
        // SAFETY: `ptr` was produced from a `&ForJob` that is kept alive by
        // the issuing thread until the latch opens (see `JobRef`).
        let job = unsafe { &*(ptr as *const ForJob<'static>) };
        job.work();
        job.latch.count_down();
    }
}

struct PoolInner {
    id: usize,
    name: String,
    /// Total team size, including the thread issuing parallel constructs.
    num_threads: usize,
    sender: Sender<Message>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// Builder for [`ThreadPool`] with optional name and thread count.
#[derive(Debug, Default, Clone)]
pub struct PoolBuilder {
    num_threads: Option<usize>,
    name: Option<String>,
}

impl PoolBuilder {
    /// Start building a pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total team size including the calling thread. `1` means all parallel
    /// constructs run inline sequentially. Defaults to
    /// [`crate::num_threads_from_env`].
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n.max(1));
        self
    }

    /// Base name for the worker threads (visible in debuggers/profilers).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Spawn the workers and return the pool.
    pub fn build(self) -> ThreadPool {
        let num_threads = self.num_threads.unwrap_or_else(crate::num_threads_from_env).max(1);
        let name = self.name.unwrap_or_else(|| "qcor-pool".to_string());
        ThreadPool::with_config(num_threads, name)
    }
}

/// A fixed-size team of threads executing work-shared loops and scoped
/// tasks. See the [crate docs](crate) for the OpenMP analogy.
pub struct ThreadPool {
    inner: Arc<PoolInner>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("name", &self.inner.name)
            .field("num_threads", &self.inner.num_threads)
            .finish()
    }
}

impl ThreadPool {
    /// Create a pool with a total team size of `num_threads` (including the
    /// calling thread; `num_threads - 1` background workers are spawned).
    pub fn new(num_threads: usize) -> Self {
        Self::with_config(num_threads, "qcor-pool".to_string())
    }

    fn with_config(num_threads: usize, name: String) -> Self {
        let num_threads = num_threads.max(1);
        let (sender, receiver) = unbounded::<Message>();
        let id = NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed);
        let inner = Arc::new(PoolInner {
            id,
            name: name.clone(),
            num_threads,
            sender,
            workers: Mutex::new(Vec::new()),
        });
        let mut workers = Vec::with_capacity(num_threads.saturating_sub(1));
        for w in 0..num_threads.saturating_sub(1) {
            let rx: Receiver<Message> = receiver.clone();
            let pool_id = id;
            let handle = std::thread::Builder::new()
                .name(format!("{name}-{w}"))
                .spawn(move || worker_loop(pool_id, rx))
                .expect("failed to spawn pool worker");
            workers.push(handle);
        }
        *inner.workers.lock() = workers;
        ThreadPool { inner }
    }

    /// The process-wide shared team-of-one pool: every parallel construct
    /// runs inline on the calling thread. Use this instead of
    /// `Arc::new(ThreadPool::new(1))` on hot paths — a team of one owns no
    /// workers and no mutable state, so one cached instance serves every
    /// caller without the per-construction channel/Arc allocations.
    pub fn sequential() -> Arc<ThreadPool> {
        static SEQUENTIAL: std::sync::OnceLock<Arc<ThreadPool>> = std::sync::OnceLock::new();
        Arc::clone(SEQUENTIAL.get_or_init(|| Arc::new(ThreadPool::with_config(1, "qcor-seq".to_string()))))
    }

    /// Total team size, including the calling thread.
    pub fn num_threads(&self) -> usize {
        self.inner.num_threads
    }

    /// This pool's process-unique id (nonzero); compare against
    /// [`current_worker_pool_id`] to check whether an arbitrary thread is
    /// one of this pool's background workers.
    pub fn id(&self) -> usize {
        self.inner.id
    }

    /// Name given to the worker threads.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// True when invoked from one of this pool's background workers.
    pub fn on_worker(&self) -> bool {
        WORKER_OF.with(|w| w.get()) == self.inner.id
    }

    /// Work-shared loop over `range` with [`Schedule::Auto`]; see
    /// [`ThreadPool::parallel_for_with`].
    pub fn parallel_for<F>(&self, range: Range<usize>, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        self.parallel_for_with(range, Schedule::Auto, f)
    }

    /// Execute `f` over disjoint sub-ranges of `range`, work-shared across
    /// the team. Blocks until every iteration has run (the implicit barrier
    /// at the end of an OpenMP parallel-for).
    ///
    /// If the team size is 1, the range is empty, or the caller is already a
    /// worker of this pool (nested parallelism), `f(range)` runs inline on
    /// the calling thread.
    ///
    /// Panics in `f` are captured and re-raised on the calling thread after
    /// the construct completes.
    pub fn parallel_for_with<F>(&self, range: Range<usize>, schedule: Schedule, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        if range.is_empty() {
            return;
        }
        let len = range.end - range.start;
        // Never field more team members than iterations.
        let team = self.inner.num_threads.min(len);
        if team <= 1 || self.on_worker() {
            f(range);
            return;
        }
        let grain = match schedule {
            Schedule::Dynamic(g) => g.max(1),
            Schedule::Auto => (len / (4 * team)).max(1),
            Schedule::Static => 1, // unused
        };
        let job = ForJob {
            func: &f,
            start: range.start,
            end: range.end,
            grain,
            schedule,
            team,
            cursor: AtomicUsize::new(match schedule {
                Schedule::Static => 0,
                _ => range.start,
            }),
            latch: CountLatch::new(team - 1),
            panicked: AtomicBool::new(false),
            panic_payload: Mutex::new(None),
        };
        // SAFETY (lifetime erasure): `job` lives on this frame and we block
        // on `job.latch` below before returning, so every worker that
        // receives this JobRef finishes touching `job` first.
        let ptr = &job as *const ForJob<'_> as *const ();
        for _ in 0..team - 1 {
            self.inner
                .sender
                .send(Message::Job(JobRef { ptr, run: ForJob::run_erased }))
                .expect("pool workers disconnected");
        }
        // The calling thread is a full team member.
        job.work();
        job.latch.wait();
        if job.panicked.load(Ordering::Acquire) {
            let payload =
                job.panic_payload.lock().take().unwrap_or_else(|| Box::new("parallel_for worker panicked"));
            resume_unwind(payload);
        }
    }

    /// Work-shared map/reduce: `map` is applied to disjoint chunks of
    /// `range` and the partial results are folded with `reduce`. Returns
    /// `identity` for an empty range.
    ///
    /// `reduce` must be associative; chunk order is unspecified.
    pub fn parallel_reduce<T, M, R>(
        &self,
        range: Range<usize>,
        schedule: Schedule,
        identity: T,
        map: M,
        reduce: R,
    ) -> T
    where
        T: Send,
        M: Fn(Range<usize>) -> T + Sync,
        R: Fn(T, T) -> T + Sync + Send,
    {
        if range.is_empty() {
            return identity;
        }
        let partials: Mutex<Vec<T>> = Mutex::new(Vec::new());
        self.parallel_for_with(range, schedule, |chunk| {
            let part = map(chunk);
            partials.lock().push(part);
        });
        partials.into_inner().into_iter().fold(identity, &reduce)
    }

    /// Deterministic work-shared map/reduce: `range` is partitioned into
    /// fixed chunks of `grain` iterations (the final chunk may be shorter)
    /// and the partial results are folded **in chunk order**, regardless of
    /// which team member computed which chunk or in what order chunks
    /// completed.
    ///
    /// Because the partition is a pure function of `(range, grain)` — never
    /// of the team size — and the fold order is fixed, a non-associative
    /// `reduce` (floating-point addition being the motivating case) returns
    /// **bit-identical results on any pool size, including a team of one**.
    /// This is what lets the simulator's inner-parallel measurement sums
    /// participate in the byte-identical determinism contract; the
    /// unordered [`ThreadPool::parallel_reduce`] remains the cheaper choice
    /// for genuinely associative folds.
    pub fn parallel_reduce_ordered<T, M, R>(
        &self,
        range: Range<usize>,
        grain: usize,
        identity: T,
        map: M,
        reduce: R,
    ) -> T
    where
        T: Send,
        M: Fn(Range<usize>) -> T + Sync,
        R: Fn(T, T) -> T,
    {
        if range.is_empty() {
            return identity;
        }
        let grain = grain.max(1);
        let len = range.end - range.start;
        let num_chunks = len.div_ceil(grain);
        let chunk_range = |c: usize| {
            let lo = range.start + c * grain;
            lo..(lo + grain).min(range.end)
        };
        if num_chunks == 1 || self.inner.num_threads <= 1 || self.on_worker() {
            // Inline path: evaluate the *same* partition chunk by chunk so
            // a team of one folds in exactly the same order as a team of N.
            return (0..num_chunks).map(chunk_range).map(&map).fold(identity, reduce);
        }
        let partials: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(num_chunks));
        self.parallel_for_with(0..num_chunks, Schedule::Dynamic(1), |chunks| {
            for c in chunks {
                let part = map(chunk_range(c));
                partials.lock().push((c, part));
            }
        });
        let mut partials = partials.into_inner();
        partials.sort_unstable_by_key(|&(c, _)| c);
        partials.into_iter().map(|(_, part)| part).fold(identity, reduce)
    }

    /// Fork/join task region: tasks spawned on the [`Scope`](crate::Scope) may borrow from
    /// the enclosing stack frame; `scope` blocks until all of them finish.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&crate::Scope<'env>) -> R,
    {
        crate::scope::run_scope(self, f)
    }

    /// Run a batch of independent jobs to completion and return their
    /// results in submission order.
    ///
    /// This is the coarse-grained companion to [`ThreadPool::parallel_for`]:
    /// each job is one pre-chunked work item (e.g. a block of simulator
    /// shots). Jobs are claimed from a shared cursor by
    /// `min(team, jobs)` participants — the calling thread is a full team
    /// member and keeps claiming jobs alongside the background workers
    /// until the batch is drained, so only `min(team, jobs) - 1` dispatch
    /// messages are paid regardless of the batch length.
    ///
    /// Inline small-team path: a batch of one job, a team of one, or a call
    /// from inside one of this pool's own workers (nested batching) runs
    /// every job directly on the calling thread, paying zero dispatch cost.
    ///
    /// Panics in a job propagate to the caller after the whole batch has
    /// drained (the [`ThreadPool::scope`] contract).
    pub fn submit_batch<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        if jobs.is_empty() {
            return Vec::new();
        }
        if jobs.len() == 1 || !self.has_workers() || self.on_worker() {
            return jobs.into_iter().map(|job| job()).collect();
        }
        let n = jobs.len();
        let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|job| Mutex::new(Some(job))).collect();
        let cursor = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
        let claim_and_run = || loop {
            let index = cursor.fetch_add(1, Ordering::Relaxed);
            if index >= n {
                break;
            }
            let job = jobs[index].lock().take().expect("job claimed twice");
            let output = job();
            results.lock().push((index, output));
        };
        self.scope(|s| {
            for _ in 0..(self.inner.num_threads - 1).min(n - 1) {
                s.spawn(claim_and_run);
            }
            claim_and_run();
        });
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        for (index, output) in results.into_inner() {
            slots[index] = Some(output);
        }
        slots.into_iter().map(|slot| slot.expect("batch job did not run")).collect()
    }

    /// Run `f` on one of the pool's background workers as a detached
    /// fire-and-forget task: the call returns immediately and nothing is
    /// joined. This is the building block for external work queues (the
    /// runtime's async execution service) that track completion themselves.
    ///
    /// If the pool has no workers (team of one) or the caller is already a
    /// worker of this pool, `f` runs inline on the calling thread to
    /// guarantee forward progress, exactly like [`crate::Scope::spawn`].
    pub fn spawn_detached<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        if !self.has_workers() || self.on_worker() {
            f();
            return;
        }
        self.send_task(Box::new(f));
    }

    pub(crate) fn send_task(&self, task: Box<dyn FnOnce() + Send>) {
        self.inner.sender.send(Message::Task(task)).expect("pool workers disconnected");
    }

    pub(crate) fn has_workers(&self) -> bool {
        self.inner.num_threads > 1
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        let workers = std::mem::take(&mut *self.inner.workers.lock());
        for _ in &workers {
            // Wake each worker with a shutdown message. Send can only fail
            // if every receiver is gone, in which case joining is enough.
            let _ = self.inner.sender.send(Message::Shutdown);
        }
        for handle in workers {
            let _ = handle.join();
        }
    }
}

fn worker_loop(pool_id: usize, rx: Receiver<Message>) {
    WORKER_OF.with(|w| w.set(pool_id));
    while let Ok(msg) = rx.recv() {
        match msg {
            Message::Job(job) => {
                // SAFETY: see `JobRef` — the job descriptor outlives this call.
                unsafe { (job.run)(job.ptr) };
            }
            Message::Task(task) => task(),
            Message::Shutdown => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn seq_sum(n: u64) -> u64 {
        (0..n).map(|i| i * i).sum()
    }

    #[test]
    fn parallel_for_covers_every_index_once() {
        let pool = ThreadPool::new(4);
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(0..n, |chunk| {
            for i in chunk {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_static_covers_every_index_once() {
        let pool = ThreadPool::new(3);
        let n = 1_001; // deliberately not divisible by the team size
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for_with(0..n, Schedule::Static, |chunk| {
            for i in chunk {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_reduce_matches_sequential() {
        let pool = ThreadPool::new(8);
        let n = 100_000u64;
        let total = pool.parallel_reduce(
            0..n as usize,
            Schedule::Auto,
            0u64,
            |chunk| chunk.map(|i| (i as u64) * (i as u64)).sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(total, seq_sum(n));
    }

    /// Sum values engineered so that fold order changes the f64 result:
    /// alternating huge and tiny magnitudes lose different low bits
    /// depending on association.
    fn order_sensitive_value(i: usize) -> f64 {
        if i.is_multiple_of(2) {
            1e16 + i as f64
        } else {
            1.0 / (i as f64)
        }
    }

    #[test]
    fn ordered_reduce_is_bit_identical_across_pool_sizes() {
        let n = 50_000;
        let grain = 1024;
        let sum_on = |threads: usize| {
            let pool = ThreadPool::new(threads);
            pool.parallel_reduce_ordered(
                0..n,
                grain,
                0.0f64,
                |chunk| chunk.map(order_sensitive_value).sum::<f64>(),
                |a, b| a + b,
            )
        };
        let baseline = sum_on(1);
        for threads in [2, 3, 4, 8] {
            let sum = sum_on(threads);
            assert_eq!(baseline.to_bits(), sum.to_bits(), "threads={threads}");
        }
        // And re-running on the same pool size is identical too.
        assert_eq!(sum_on(4).to_bits(), sum_on(4).to_bits());
    }

    #[test]
    fn ordered_reduce_matches_manual_chunked_fold() {
        let pool = ThreadPool::new(4);
        let n = 10_000;
        let grain = 333;
        let expect = (0..n)
            .step_by(grain)
            .map(|lo| (lo..(lo + grain).min(n)).map(order_sensitive_value).sum::<f64>())
            .fold(0.0f64, |a, b| a + b);
        let got = pool.parallel_reduce_ordered(
            0..n,
            grain,
            0.0f64,
            |chunk| chunk.map(order_sensitive_value).sum::<f64>(),
            |a, b| a + b,
        );
        assert_eq!(expect.to_bits(), got.to_bits());
    }

    #[test]
    fn ordered_reduce_empty_range_returns_identity() {
        let pool = ThreadPool::new(4);
        let got = pool.parallel_reduce_ordered(7..7, 16, -1.0f64, |_| panic!("no chunks"), |a, b| a + b);
        assert_eq!(got, -1.0);
    }

    #[test]
    fn ordered_reduce_nested_on_worker_runs_inline() {
        let pool = std::sync::Arc::new(ThreadPool::new(3));
        let inner = std::sync::Arc::clone(&pool);
        let outer = pool.parallel_reduce_ordered(
            0..4,
            1,
            0u64,
            |chunk| {
                chunk
                    .map(|_| {
                        inner.parallel_reduce_ordered(
                            0..100,
                            7,
                            0u64,
                            |c| c.map(|i| i as u64).sum::<u64>(),
                            |a, b| a + b,
                        )
                    })
                    .sum::<u64>()
            },
            |a, b| a + b,
        );
        assert_eq!(outer, 4 * (0..100u64).sum::<u64>());
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let tid = std::thread::current().id();
        pool.parallel_for(0..1, |_| {
            assert_eq!(std::thread::current().id(), tid);
        });
    }

    #[test]
    fn empty_range_is_noop() {
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.parallel_for(5..5, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn team_capped_by_range_length() {
        let pool = ThreadPool::new(16);
        // A 2-iteration loop must still cover both indices exactly once.
        let hits: Vec<AtomicUsize> = (0..2).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(0..2, |chunk| {
            for i in chunk {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_parallel_for_runs_inline() {
        let pool = std::sync::Arc::new(ThreadPool::new(4));
        let p2 = std::sync::Arc::clone(&pool);
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            s.spawn(|| {
                // Inside a worker of the same pool: must not deadlock.
                p2.parallel_for(0..100, |chunk| {
                    for i in chunk {
                        total.fetch_add(i as u64, Ordering::Relaxed);
                    }
                });
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), (0..100u64).sum());
    }

    #[test]
    fn panics_propagate_to_caller() {
        let pool = ThreadPool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(0..1000, |chunk| {
                if chunk.contains(&500) {
                    panic!("boom at 500");
                }
            });
        }));
        assert!(result.is_err());
        // The pool must remain usable after a panic.
        let counter = AtomicUsize::new(0);
        pool.parallel_for(0..100, |chunk| {
            counter.fetch_add(chunk.len(), Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn concurrent_parallel_fors_from_many_threads() {
        let pool = std::sync::Arc::new(ThreadPool::new(4));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let p = std::sync::Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                let acc = AtomicU64::new(0);
                p.parallel_for(0..5_000, |chunk| {
                    for i in chunk {
                        acc.fetch_add(i as u64 + t, Ordering::Relaxed);
                    }
                });
                acc.load(Ordering::Relaxed)
            }));
        }
        for (t, h) in handles.into_iter().enumerate() {
            let expect: u64 = (0..5_000u64).map(|i| i + t as u64).sum();
            assert_eq!(h.join().unwrap(), expect);
        }
    }

    #[test]
    fn dynamic_grain_one_works() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for_with(0..257, Schedule::Dynamic(1), |chunk| {
            for i in chunk {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn sequential_pool_is_shared_and_inline() {
        let a = ThreadPool::sequential();
        let b = ThreadPool::sequential();
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        assert_eq!(a.num_threads(), 1);
        let tid = std::thread::current().id();
        a.parallel_for(0..4, |_| assert_eq!(std::thread::current().id(), tid));
    }

    #[test]
    fn worker_pool_id_identifies_workers() {
        let pool = ThreadPool::new(3);
        assert!(pool.id() != 0);
        // The calling thread is the master, not a background worker.
        assert_eq!(crate::current_worker_pool_id(), 0);
        let (ids, expected) = (Arc::new(Mutex::new(Vec::new())), pool.id());
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let (ids, done) = (Arc::clone(&ids), Arc::clone(&done));
            pool.spawn_detached(move || {
                ids.lock().push(crate::current_worker_pool_id());
                done.fetch_add(1, Ordering::Release);
            });
        }
        while done.load(Ordering::Acquire) < 4 {
            std::thread::yield_now();
        }
        assert!(ids.lock().iter().all(|&id| id == expected), "workers must report their pool's id");
        // A different pool's workers report a different id.
        let other = ThreadPool::new(2);
        assert_ne!(other.id(), expected);
    }

    #[test]
    fn builder_configures_pool() {
        let pool = PoolBuilder::new().num_threads(3).name("bench").build();
        assert_eq!(pool.num_threads(), 3);
        assert_eq!(pool.name(), "bench");
    }

    #[test]
    fn drop_joins_workers() {
        for _ in 0..16 {
            let pool = ThreadPool::new(4);
            pool.parallel_for(0..64, |_| {});
            drop(pool);
        }
    }

    #[test]
    fn spawn_detached_runs_on_worker_and_completes() {
        let pool = ThreadPool::new(3);
        let done = Arc::new(AtomicUsize::new(0));
        let caller = std::thread::current().id();
        let off_caller = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let done = Arc::clone(&done);
            let off_caller = Arc::clone(&off_caller);
            pool.spawn_detached(move || {
                if std::thread::current().id() != caller {
                    off_caller.fetch_add(1, Ordering::Relaxed);
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        while done.load(Ordering::Relaxed) < 16 {
            std::thread::yield_now();
        }
        // With workers available, detached tasks never run on the caller.
        assert_eq!(off_caller.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn spawn_detached_team_of_one_runs_inline() {
        let pool = ThreadPool::new(1);
        let tid = std::thread::current().id();
        let ran = Arc::new(AtomicBool::new(false));
        let ran2 = Arc::clone(&ran);
        pool.spawn_detached(move || {
            assert_eq!(std::thread::current().id(), tid);
            ran2.store(true, Ordering::Release);
        });
        assert!(ran.load(Ordering::Acquire), "inline path must run before returning");
    }

    #[test]
    fn submit_batch_returns_results_in_submission_order() {
        let pool = ThreadPool::new(4);
        let jobs: Vec<_> = (0..37).map(|i| move || i * i).collect();
        assert_eq!(pool.submit_batch(jobs), (0..37).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn submit_batch_empty_and_single_job() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.submit_batch(Vec::<fn() -> i32>::new()), Vec::<i32>::new());
        let tid = std::thread::current().id();
        // A single job must run inline on the caller, paying no dispatch.
        let out = pool.submit_batch(vec![move || std::thread::current().id() == tid]);
        assert_eq!(out, vec![true]);
    }

    #[test]
    fn submit_batch_single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let tid = std::thread::current().id();
        let jobs: Vec<_> = (0..8).map(|_| move || std::thread::current().id() == tid).collect();
        assert!(pool.submit_batch(jobs).into_iter().all(|inline| inline));
    }

    #[test]
    fn submit_batch_jobs_may_borrow_stack_data() {
        let pool = ThreadPool::new(4);
        let data = [10u64, 20, 30, 40, 50];
        let jobs: Vec<_> = data.chunks(2).map(|chunk| move || chunk.iter().sum::<u64>()).collect();
        assert_eq!(pool.submit_batch(jobs).into_iter().sum::<u64>(), 150);
    }

    #[test]
    fn nested_submit_batch_runs_inline() {
        let pool = std::sync::Arc::new(ThreadPool::new(3));
        let inner = std::sync::Arc::clone(&pool);
        let jobs: Vec<_> = (0..4)
            .map(|i| {
                let inner = std::sync::Arc::clone(&inner);
                move || inner.submit_batch((0..4).map(|j| move || i * 10 + j).collect()).len()
            })
            .collect();
        assert_eq!(pool.submit_batch(jobs), vec![4, 4, 4, 4]);
    }

    #[test]
    fn submit_batch_caller_keeps_claiming_jobs() {
        // Team of 2 (one background worker). Job 1 blocks until job 2 has
        // run; if the caller only ever executed the first job, the lone
        // worker would run job 1 and job 2 in order and deadlock. The
        // caller claiming jobs beyond its first is what makes this finish.
        let pool = ThreadPool::new(2);
        let flag = AtomicBool::new(false);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![
            Box::new(|| 0),
            Box::new(|| {
                while !flag.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                1
            }),
            Box::new(|| {
                flag.store(true, Ordering::Release);
                2
            }),
        ];
        let out = pool.submit_batch(jobs.into_iter().map(|job| move || job()).collect::<Vec<_>>());
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn submit_batch_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
                .map(|i| {
                    Box::new(move || if i == 5 { panic!("job 5 failed") } else { i })
                        as Box<dyn FnOnce() -> usize + Send>
                })
                .collect();
            pool.submit_batch(jobs.into_iter().map(|job| move || job()).collect::<Vec<_>>());
        }));
        assert!(result.is_err());
        assert_eq!(pool.submit_batch(vec![|| 1, || 2]), vec![1, 2]);
    }
}
