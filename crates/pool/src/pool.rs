//! The work-sharing thread pool.
//!
//! A [`ThreadPool`] owns `num_threads - 1` persistent background workers;
//! the thread that issues a parallel construct acts as the remaining team
//! member, exactly like the master thread of an OpenMP parallel region. Work
//! items are distributed over the team either statically (one contiguous
//! chunk per team member) or dynamically (members repeatedly claim
//! `grain`-sized chunks from an atomic counter).

use crate::latch::CountLatch;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::any::Any;
use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Process-global count of batch jobs executed by work-stealing (idle
/// workers claiming from the tail of an in-flight [`ThreadPool::submit_batch`]).
static BATCH_STEALS: AtomicU64 = AtomicU64::new(0);

/// Total number of `submit_batch` jobs that idle workers stole from the
/// tail of an in-flight batch, process-global across all pools. Stable
/// monotone counter for stats surfacing; pair with
/// [`reset_batch_steal_count`] to measure a region.
pub fn batch_steal_count() -> u64 {
    BATCH_STEALS.load(Ordering::Relaxed)
}

/// Reset [`batch_steal_count`] to zero (bench/test bookkeeping).
pub fn reset_batch_steal_count() {
    BATCH_STEALS.store(0, Ordering::Relaxed)
}

/// Chunk-scheduling policy for [`ThreadPool::parallel_for`].
///
/// `Static` mirrors OpenMP's `schedule(static)`: the iteration range is split
/// into one contiguous chunk per team member. `Dynamic(grain)` mirrors
/// `schedule(dynamic, grain)`: members repeatedly claim the next `grain`
/// iterations until the range is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// One contiguous chunk per team member.
    Static,
    /// Members claim chunks of the given size (clamped to at least 1).
    Dynamic(usize),
    /// Dynamic scheduling with an automatically chosen grain
    /// (`len / (4 * team)` clamped to at least 1).
    Auto,
}

thread_local! {
    /// Pool id of the pool this thread works for (0 = not a pool worker).
    static WORKER_OF: Cell<usize> = const { Cell::new(0) };
}

static NEXT_POOL_ID: AtomicUsize = AtomicUsize::new(1);

/// Id of the pool the current thread is a background worker of, or 0 when
/// the thread is not a pool worker (callers' threads, dispatcher threads
/// and team-of-one inline execution all report 0).
///
/// This is the current-worker check external executors build on: the
/// runtime's execution service uses it (together with [`ThreadPool::id`])
/// to assert that its work-conserving join only ever runs queued tasks on
/// threads that already hold one of the service's executor slots.
pub fn current_worker_pool_id() -> usize {
    WORKER_OF.with(|w| w.get())
}

/// Type-erased reference to an in-flight parallel construct.
///
/// The pointee is a stack-allocated job descriptor in the frame of the
/// thread that issued the construct; that thread blocks on the job's latch
/// before its frame unwinds, so the pointer is valid for as long as any
/// worker can observe it.
struct JobRef {
    ptr: *const (),
    run: unsafe fn(*const ()),
}

// SAFETY: the pointee is Sync (shared job state made of atomics, a latch and
// a `Fn + Sync` closure) and outlives every access — see `JobRef` docs.
unsafe impl Send for JobRef {}

enum Message {
    Job(JobRef),
    Task(Box<dyn FnOnce() + Send>),
    Shutdown,
}

/// Shared state of one `parallel_for` invocation.
struct ForJob<'f> {
    func: &'f (dyn Fn(Range<usize>) + Sync),
    start: usize,
    end: usize,
    grain: usize,
    schedule: Schedule,
    team: usize,
    /// Next iteration index (dynamic) or next participant slot (static).
    cursor: AtomicUsize,
    latch: CountLatch,
    /// Workers currently inside `run_erased`. The issuing thread spins
    /// this to zero after `latch.wait()` returns so a worker's final latch
    /// notify never touches the already-unwound frame.
    active: AtomicUsize,
    panicked: AtomicBool,
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
}

impl<'f> ForJob<'f> {
    /// Claim and run chunks until the range is exhausted.
    fn work(&self) {
        loop {
            let chunk = match self.schedule {
                Schedule::Static => {
                    let slot = self.cursor.fetch_add(1, Ordering::Relaxed);
                    if slot >= self.team {
                        break;
                    }
                    let len = self.end - self.start;
                    let lo = self.start + slot * len / self.team;
                    let hi = self.start + (slot + 1) * len / self.team;
                    lo..hi
                }
                Schedule::Dynamic(_) | Schedule::Auto => {
                    let lo = self.cursor.fetch_add(self.grain, Ordering::Relaxed);
                    if lo >= self.end {
                        break;
                    }
                    lo..(lo + self.grain).min(self.end)
                }
            };
            if chunk.is_empty() {
                continue;
            }
            let result = catch_unwind(AssertUnwindSafe(|| (self.func)(chunk)));
            if let Err(payload) = result {
                self.panicked.store(true, Ordering::Release);
                let mut slot = self.panic_payload.lock();
                if slot.is_none() {
                    *slot = Some(payload);
                }
                break;
            }
            if self.panicked.load(Ordering::Acquire) {
                break;
            }
        }
    }

    unsafe fn run_erased(ptr: *const ()) {
        // SAFETY: `ptr` was produced from a `&ForJob` that is kept alive by
        // the issuing thread until the latch opens and `active` drains to
        // zero (see `JobRef`).
        let job = unsafe { &*(ptr as *const ForJob<'static>) };
        // Register before counting down: the increment happens-before the
        // count-down, so once `latch.wait()` returns on the issuing thread
        // its post-wait spin observes every worker still in here.
        job.active.fetch_add(1, Ordering::AcqRel);
        job.work();
        job.latch.count_down();
        // Last touch of the frame must be this pure atomic decrement —
        // never the latch mutex, which may already be freed once the
        // issuing thread's wait returns.
        job.active.fetch_sub(1, Ordering::Release);
    }
}

/// Shared state of one `submit_batch` invocation.
///
/// Lives on the submitting thread's stack. Three kinds of thread touch it:
/// the submitter (front claims + final waits), participant workers that
/// received a dispatch message (front claims), and idle workers stealing
/// from the tail through the pool's steal registry. The single source of
/// truth for job ownership is each slot's `Mutex<Option<F>>`: whoever
/// `take()`s the closure runs it, so front claimers and tail stealers can
/// race on the same slot without double-running or losing a job.
struct BatchShared<T, F> {
    jobs: Vec<Mutex<Option<F>>>,
    results: Mutex<Vec<(usize, T)>>,
    /// Next index for front claimers (submitter + participants).
    front: AtomicUsize,
    /// Number of tail slots already handed out to stealers.
    steal_tail: AtomicUsize,
    /// Opens once every job has been executed by someone.
    jobs_left: CountLatch,
    /// Opens once every dispatched participant message has returned.
    participants: CountLatch,
    /// Remote threads currently touching this descriptor: stealers inside
    /// `steal_one` plus dispatched participants inside `run_erased`. The
    /// submitter spins this to zero after its waits return, so a remote's
    /// final latch notify never outlives the frame; see the registry
    /// protocol in [`ThreadPool::submit_batch`].
    active_stealers: AtomicUsize,
    panicked: AtomicBool,
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
}

impl<T, F: FnOnce() -> T> BatchShared<T, F> {
    fn run_job(&self, index: usize, job: F) {
        match catch_unwind(AssertUnwindSafe(job)) {
            Ok(output) => self.results.lock().push((index, output)),
            Err(payload) => {
                self.panicked.store(true, Ordering::Release);
                let mut slot = self.panic_payload.lock();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }
        self.jobs_left.count_down();
    }

    /// Claim and run jobs from the front cursor until the batch is drained.
    fn claim_from_front(&self) {
        loop {
            let index = self.front.fetch_add(1, Ordering::Relaxed);
            if index >= self.jobs.len() {
                break;
            }
            // `None` means a tail stealer got here first; the stealer
            // counts that job down on `jobs_left`. Bind before the `if let`
            // so the slot guard drops before the job runs — holding it
            // across `run_job` would block stealers probing this slot.
            let job = self.jobs[index].lock().take();
            if let Some(job) = job {
                self.run_job(index, job);
            }
        }
    }

    /// Steal and run at most one job from the batch tail. Returns whether
    /// a job actually ran.
    fn steal_one(&self) -> bool {
        loop {
            let t = self.steal_tail.fetch_add(1, Ordering::Relaxed);
            if t >= self.jobs.len() {
                return false;
            }
            let index = self.jobs.len() - 1 - t;
            // Bind before the `if let` (see `claim_from_front`): the slot
            // guard must drop before the stolen job runs.
            let job = self.jobs[index].lock().take();
            if let Some(job) = job {
                BATCH_STEALS.fetch_add(1, Ordering::Relaxed);
                self.run_job(index, job);
                return true;
            }
        }
    }

    unsafe fn run_erased(ptr: *const ()) {
        // SAFETY: the submitter keeps the descriptor alive until the
        // participants latch opens AND `active_stealers` drains to zero
        // (see `JobRef` and the registry protocol in `submit_batch`).
        let batch = unsafe { &*(ptr as *const BatchShared<T, F>) };
        // Register before counting down: once `participants` opens the
        // submitter may fast-path out of `wait()`, and only the post-wait
        // spin on `active_stealers` keeps the frame alive through the
        // latch's final lock/notify. The increment happens-before the
        // count-down, so the spin is guaranteed to observe it.
        batch.active_stealers.fetch_add(1, Ordering::AcqRel);
        batch.claim_from_front();
        batch.participants.count_down();
        // Last touch of the frame must be this pure atomic decrement —
        // never the latch mutex, which may already be freed once the
        // submitter's wait returns.
        batch.active_stealers.fetch_sub(1, Ordering::Release);
    }

    unsafe fn steal_erased(ptr: *const ()) -> bool {
        // SAFETY: registry entries are removed — and active stealers waited
        // out — before the descriptor's frame unwinds.
        unsafe { (*(ptr as *const BatchShared<T, F>)).steal_one() }
    }
}

/// Type-erased registry entry for an in-flight batch idle workers may
/// steal from. `active` points at the batch's `active_stealers` counter;
/// it is incremented under the registry lock before `steal` is called so
/// deregistration can wait out in-flight stealers after removing the entry.
#[derive(Clone, Copy)]
struct StealEntry {
    ptr: *const (),
    steal: unsafe fn(*const ()) -> bool,
    active: *const AtomicUsize,
}

// SAFETY: both pointers target a `BatchShared` kept alive by its submitter
// until the entry is deregistered and `active` drains to zero.
unsafe impl Send for StealEntry {}

type StealRegistry = Arc<Mutex<Vec<StealEntry>>>;

/// Try to steal one job from any registered batch, newest first. Returns
/// whether a job ran.
fn try_steal_one(registry: &Mutex<Vec<StealEntry>>) -> bool {
    let mut skip = 0;
    loop {
        let entry = {
            let reg = registry.lock();
            if reg.len() <= skip {
                return false;
            }
            let entry = reg[reg.len() - 1 - skip];
            // SAFETY: counted under the registry lock, so the submitter's
            // deregister-then-wait sees us (see `StealEntry`).
            unsafe { (*entry.active).fetch_add(1, Ordering::AcqRel) };
            entry
        };
        // SAFETY: `active` was bumped under the lock above, keeping the
        // descriptor alive for the duration of this call.
        let stole = unsafe { (entry.steal)(entry.ptr) };
        unsafe { (*entry.active).fetch_sub(1, Ordering::Release) };
        if stole {
            return true;
        }
        skip += 1;
    }
}

struct PoolInner {
    id: usize,
    name: String,
    /// Total team size, including the thread issuing parallel constructs.
    num_threads: usize,
    sender: Sender<Message>,
    /// Kept for nested batch joins: a worker blocked in `submit_batch`
    /// drains this receiver instead of idling its team slot.
    receiver: Receiver<Message>,
    /// In-flight `submit_batch` descriptors idle workers may steal from.
    steals: StealRegistry,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// Builder for [`ThreadPool`] with optional name and thread count.
#[derive(Debug, Default, Clone)]
pub struct PoolBuilder {
    num_threads: Option<usize>,
    name: Option<String>,
}

impl PoolBuilder {
    /// Start building a pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total team size including the calling thread. `1` means all parallel
    /// constructs run inline sequentially. Defaults to
    /// [`crate::num_threads_from_env`].
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n.max(1));
        self
    }

    /// Base name for the worker threads (visible in debuggers/profilers).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Spawn the workers and return the pool.
    pub fn build(self) -> ThreadPool {
        let num_threads = self.num_threads.unwrap_or_else(crate::num_threads_from_env).max(1);
        let name = self.name.unwrap_or_else(|| "qcor-pool".to_string());
        ThreadPool::with_config(num_threads, name)
    }
}

/// A fixed-size team of threads executing work-shared loops and scoped
/// tasks. See the [crate docs](crate) for the OpenMP analogy.
pub struct ThreadPool {
    inner: Arc<PoolInner>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("name", &self.inner.name)
            .field("num_threads", &self.inner.num_threads)
            .finish()
    }
}

impl ThreadPool {
    /// Create a pool with a total team size of `num_threads` (including the
    /// calling thread; `num_threads - 1` background workers are spawned).
    pub fn new(num_threads: usize) -> Self {
        Self::with_config(num_threads, "qcor-pool".to_string())
    }

    fn with_config(num_threads: usize, name: String) -> Self {
        let num_threads = num_threads.max(1);
        let (sender, receiver) = unbounded::<Message>();
        let id = NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed);
        let steals: StealRegistry = Arc::new(Mutex::new(Vec::new()));
        let inner = Arc::new(PoolInner {
            id,
            name: name.clone(),
            num_threads,
            sender,
            receiver: receiver.clone(),
            steals: Arc::clone(&steals),
            workers: Mutex::new(Vec::new()),
        });
        let mut workers = Vec::with_capacity(num_threads.saturating_sub(1));
        for w in 0..num_threads.saturating_sub(1) {
            let rx: Receiver<Message> = receiver.clone();
            let registry = Arc::clone(&steals);
            let pool_id = id;
            let handle = std::thread::Builder::new()
                .name(format!("{name}-{w}"))
                .spawn(move || worker_loop(pool_id, rx, registry))
                .expect("failed to spawn pool worker");
            workers.push(handle);
        }
        *inner.workers.lock() = workers;
        ThreadPool { inner }
    }

    /// The process-wide shared team-of-one pool: every parallel construct
    /// runs inline on the calling thread. Use this instead of
    /// `Arc::new(ThreadPool::new(1))` on hot paths — a team of one owns no
    /// workers and no mutable state, so one cached instance serves every
    /// caller without the per-construction channel/Arc allocations.
    pub fn sequential() -> Arc<ThreadPool> {
        static SEQUENTIAL: std::sync::OnceLock<Arc<ThreadPool>> = std::sync::OnceLock::new();
        Arc::clone(SEQUENTIAL.get_or_init(|| Arc::new(ThreadPool::with_config(1, "qcor-seq".to_string()))))
    }

    /// Total team size, including the calling thread.
    pub fn num_threads(&self) -> usize {
        self.inner.num_threads
    }

    /// This pool's process-unique id (nonzero); compare against
    /// [`current_worker_pool_id`] to check whether an arbitrary thread is
    /// one of this pool's background workers.
    pub fn id(&self) -> usize {
        self.inner.id
    }

    /// Name given to the worker threads.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// True when invoked from one of this pool's background workers.
    pub fn on_worker(&self) -> bool {
        WORKER_OF.with(|w| w.get()) == self.inner.id
    }

    /// Work-shared loop over `range` with [`Schedule::Auto`]; see
    /// [`ThreadPool::parallel_for_with`].
    pub fn parallel_for<F>(&self, range: Range<usize>, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        self.parallel_for_with(range, Schedule::Auto, f)
    }

    /// Execute `f` over disjoint sub-ranges of `range`, work-shared across
    /// the team. Blocks until every iteration has run (the implicit barrier
    /// at the end of an OpenMP parallel-for).
    ///
    /// If the team size is 1, the range is empty, or the caller is already a
    /// worker of this pool (nested parallelism), `f(range)` runs inline on
    /// the calling thread.
    ///
    /// Panics in `f` are captured and re-raised on the calling thread after
    /// the construct completes.
    pub fn parallel_for_with<F>(&self, range: Range<usize>, schedule: Schedule, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        if range.is_empty() {
            return;
        }
        let len = range.end - range.start;
        // Never field more team members than iterations.
        let team = self.inner.num_threads.min(len);
        if team <= 1 || self.on_worker() {
            f(range);
            return;
        }
        let grain = match schedule {
            Schedule::Dynamic(g) => g.max(1),
            Schedule::Auto => (len / (4 * team)).max(1),
            Schedule::Static => 1, // unused
        };
        let job = ForJob {
            func: &f,
            start: range.start,
            end: range.end,
            grain,
            schedule,
            team,
            cursor: AtomicUsize::new(match schedule {
                Schedule::Static => 0,
                _ => range.start,
            }),
            latch: CountLatch::new(team - 1),
            active: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            panic_payload: Mutex::new(None),
        };
        // SAFETY (lifetime erasure): `job` lives on this frame and we block
        // on `job.latch` below before returning, so every worker that
        // receives this JobRef finishes touching `job` first.
        let ptr = &job as *const ForJob<'_> as *const ();
        for _ in 0..team - 1 {
            self.inner
                .sender
                .send(Message::Job(JobRef { ptr, run: ForJob::run_erased }))
                .expect("pool workers disconnected");
        }
        // The calling thread is a full team member.
        job.work();
        job.latch.wait();
        // A worker's final count-down may still be inside the latch mutex;
        // its terminal `active` decrement is the signal that it is done
        // touching `job`, so spin that out before the frame unwinds.
        while job.active.load(Ordering::Acquire) != 0 {
            std::thread::yield_now();
        }
        if job.panicked.load(Ordering::Acquire) {
            let payload =
                job.panic_payload.lock().take().unwrap_or_else(|| Box::new("parallel_for worker panicked"));
            resume_unwind(payload);
        }
    }

    /// Work-shared map/reduce: `map` is applied to disjoint chunks of
    /// `range` and the partial results are folded with `reduce`. Returns
    /// `identity` for an empty range.
    ///
    /// `reduce` must be associative; chunk order is unspecified.
    pub fn parallel_reduce<T, M, R>(
        &self,
        range: Range<usize>,
        schedule: Schedule,
        identity: T,
        map: M,
        reduce: R,
    ) -> T
    where
        T: Send,
        M: Fn(Range<usize>) -> T + Sync,
        R: Fn(T, T) -> T + Sync + Send,
    {
        if range.is_empty() {
            return identity;
        }
        let partials: Mutex<Vec<T>> = Mutex::new(Vec::new());
        self.parallel_for_with(range, schedule, |chunk| {
            let part = map(chunk);
            partials.lock().push(part);
        });
        partials.into_inner().into_iter().fold(identity, &reduce)
    }

    /// Deterministic work-shared map/reduce: `range` is partitioned into
    /// fixed chunks of `grain` iterations (the final chunk may be shorter)
    /// and the partial results are folded **in chunk order**, regardless of
    /// which team member computed which chunk or in what order chunks
    /// completed.
    ///
    /// Because the partition is a pure function of `(range, grain)` — never
    /// of the team size — and the fold order is fixed, a non-associative
    /// `reduce` (floating-point addition being the motivating case) returns
    /// **bit-identical results on any pool size, including a team of one**.
    /// This is what lets the simulator's inner-parallel measurement sums
    /// participate in the byte-identical determinism contract; the
    /// unordered [`ThreadPool::parallel_reduce`] remains the cheaper choice
    /// for genuinely associative folds.
    pub fn parallel_reduce_ordered<T, M, R>(
        &self,
        range: Range<usize>,
        grain: usize,
        identity: T,
        map: M,
        reduce: R,
    ) -> T
    where
        T: Send,
        M: Fn(Range<usize>) -> T + Sync,
        R: Fn(T, T) -> T,
    {
        if range.is_empty() {
            return identity;
        }
        let grain = grain.max(1);
        let len = range.end - range.start;
        let num_chunks = len.div_ceil(grain);
        let chunk_range = |c: usize| {
            let lo = range.start + c * grain;
            lo..(lo + grain).min(range.end)
        };
        if num_chunks == 1 || self.inner.num_threads <= 1 || self.on_worker() {
            // Inline path: evaluate the *same* partition chunk by chunk so
            // a team of one folds in exactly the same order as a team of N.
            return (0..num_chunks).map(chunk_range).map(&map).fold(identity, reduce);
        }
        let partials: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(num_chunks));
        self.parallel_for_with(0..num_chunks, Schedule::Dynamic(1), |chunks| {
            for c in chunks {
                let part = map(chunk_range(c));
                partials.lock().push((c, part));
            }
        });
        let mut partials = partials.into_inner();
        partials.sort_unstable_by_key(|&(c, _)| c);
        partials.into_iter().map(|(_, part)| part).fold(identity, reduce)
    }

    /// Fork/join task region: tasks spawned on the [`Scope`](crate::Scope) may borrow from
    /// the enclosing stack frame; `scope` blocks until all of them finish.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&crate::Scope<'env>) -> R,
    {
        crate::scope::run_scope(self, f)
    }

    /// Run a batch of independent jobs to completion and return their
    /// results in submission order.
    ///
    /// This is the coarse-grained companion to [`ThreadPool::parallel_for`]:
    /// each job is one pre-chunked work item (e.g. a block of simulator
    /// shots). Jobs are claimed from a shared cursor by
    /// `min(team, jobs)` participants — the calling thread is a full team
    /// member and keeps claiming jobs alongside the background workers
    /// until the batch is drained, so only `min(team, jobs) - 1` dispatch
    /// messages are paid regardless of the batch length.
    ///
    /// Inline small-team path: a batch of one job or a team of one runs
    /// every job directly on the calling thread, paying zero dispatch cost.
    ///
    /// Idle workers may additionally *steal* unclaimed jobs from the tail
    /// of the batch (newest-registered batch first) before pulling the next
    /// queued message, so a backlog of slow detached tasks cannot starve an
    /// in-flight batch whose submitter is blocked on completion. Stolen
    /// jobs count toward the process-global [`batch_steal_count`].
    ///
    /// Calls from inside one of this pool's own workers (nested batching)
    /// fan out like top-level calls and use whatever team capacity is left;
    /// while waiting, the nested caller keeps the pool work-conserving by
    /// draining and executing queued messages instead of idling its slot,
    /// which is what makes nested fan-out deadlock-free.
    ///
    /// Panics in a job propagate to the caller after the whole batch has
    /// drained (the [`ThreadPool::scope`] contract).
    pub fn submit_batch<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        if jobs.is_empty() {
            return Vec::new();
        }
        if jobs.len() == 1 || !self.has_workers() {
            return jobs.into_iter().map(|job| job()).collect();
        }
        let n = jobs.len();
        let nested = self.on_worker();
        let messages = (self.inner.num_threads - 1).min(n - 1);
        let batch = BatchShared {
            jobs: jobs.into_iter().map(|job| Mutex::new(Some(job))).collect::<Vec<_>>(),
            results: Mutex::new(Vec::with_capacity(n)),
            front: AtomicUsize::new(0),
            steal_tail: AtomicUsize::new(0),
            jobs_left: CountLatch::new(n),
            participants: CountLatch::new(messages),
            active_stealers: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            panic_payload: Mutex::new(None),
        };
        // SAFETY (lifetime erasure): `batch` lives on this frame; before
        // returning we wait for the jobs latch, the participants latch and
        // every registered stealer, so no other thread outlives its access.
        let ptr = &batch as *const BatchShared<T, F> as *const ();
        self.inner.steals.lock().push(StealEntry {
            ptr,
            steal: BatchShared::<T, F>::steal_erased,
            active: &batch.active_stealers as *const AtomicUsize,
        });
        for _ in 0..messages {
            self.inner
                .sender
                .send(Message::Job(JobRef { ptr, run: BatchShared::<T, F>::run_erased }))
                .expect("pool workers disconnected");
        }
        // The calling thread is a full team member.
        batch.claim_from_front();
        if nested {
            self.drain_while_waiting(&batch.jobs_left, &batch.participants);
        } else {
            batch.jobs_left.wait();
            batch.participants.wait();
        }
        // Deregister, then wait out stealers that entered before removal:
        // stealers only register under the same lock, so after removal the
        // active count can only drain.
        {
            let mut registry = self.inner.steals.lock();
            if let Some(pos) = registry.iter().position(|entry| entry.ptr == ptr) {
                registry.remove(pos);
            }
        }
        while batch.active_stealers.load(Ordering::Acquire) != 0 {
            std::thread::yield_now();
        }
        if batch.panicked.load(Ordering::Acquire) {
            let payload = batch.panic_payload.lock().take().unwrap_or_else(|| Box::new("batch job panicked"));
            resume_unwind(payload);
        }
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        for (index, output) in batch.results.into_inner() {
            slots[index] = Some(output);
        }
        slots.into_iter().map(|slot| slot.expect("batch job did not run")).collect()
    }

    /// Work-conserving join for nested batches: the caller is one of this
    /// pool's own workers, so instead of blocking (which would idle a team
    /// slot and can deadlock once every worker nests) it keeps executing
    /// queued pool messages until both latches open.
    fn drain_while_waiting(&self, jobs_left: &CountLatch, participants: &CountLatch) {
        let mut idle_spins = 0u32;
        while jobs_left.remaining() > 0 || participants.remaining() > 0 {
            match self.inner.receiver.try_recv() {
                Ok(Message::Job(job)) => {
                    idle_spins = 0;
                    // SAFETY: see `JobRef` — descriptors outlive their
                    // messages. The catch keeps a defect in a foreign job
                    // from unwinding through this frame while workers still
                    // reference our own batch descriptor.
                    let _ = catch_unwind(AssertUnwindSafe(|| unsafe { (job.run)(job.ptr) }));
                }
                Ok(Message::Task(task)) => {
                    idle_spins = 0;
                    let _ = catch_unwind(AssertUnwindSafe(task));
                }
                Ok(Message::Shutdown) => {
                    // Not ours to consume: hand it back for a real worker.
                    let _ = self.inner.sender.send(Message::Shutdown);
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
                Err(_) => {
                    idle_spins += 1;
                    if idle_spins > 64 {
                        std::thread::sleep(std::time::Duration::from_micros(50));
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    /// Run `f` on one of the pool's background workers as a detached
    /// fire-and-forget task: the call returns immediately and nothing is
    /// joined. This is the building block for external work queues (the
    /// runtime's async execution service) that track completion themselves.
    ///
    /// If the pool has no workers (team of one) or the caller is already a
    /// worker of this pool, `f` runs inline on the calling thread to
    /// guarantee forward progress, exactly like [`crate::Scope::spawn`].
    pub fn spawn_detached<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        if !self.has_workers() || self.on_worker() {
            f();
            return;
        }
        self.send_task(Box::new(f));
    }

    pub(crate) fn send_task(&self, task: Box<dyn FnOnce() + Send>) {
        self.inner.sender.send(Message::Task(task)).expect("pool workers disconnected");
    }

    pub(crate) fn has_workers(&self) -> bool {
        self.inner.num_threads > 1
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        let workers = std::mem::take(&mut *self.inner.workers.lock());
        for _ in &workers {
            // Wake each worker with a shutdown message. Send can only fail
            // if every receiver is gone, in which case joining is enough.
            let _ = self.inner.sender.send(Message::Shutdown);
        }
        for handle in workers {
            let _ = handle.join();
        }
    }
}

fn worker_loop(pool_id: usize, rx: Receiver<Message>, registry: StealRegistry) {
    WORKER_OF.with(|w| w.set(pool_id));
    loop {
        // Prefer in-flight batches over queued messages: their submitters
        // are blocked on completion, while a backlog of detached tasks is
        // fire-and-forget — stealing from the batch tail first resolves the
        // priority inversion between the two.
        if try_steal_one(&registry) {
            continue;
        }
        let msg = match rx.try_recv() {
            Ok(msg) => msg,
            Err(crossbeam::channel::TryRecvError::Empty) => match rx.recv() {
                Ok(msg) => msg,
                Err(_) => break,
            },
            Err(crossbeam::channel::TryRecvError::Disconnected) => break,
        };
        match msg {
            Message::Job(job) => {
                // SAFETY: see `JobRef` — the job descriptor outlives this call.
                unsafe { (job.run)(job.ptr) };
            }
            Message::Task(task) => task(),
            Message::Shutdown => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn seq_sum(n: u64) -> u64 {
        (0..n).map(|i| i * i).sum()
    }

    #[test]
    fn parallel_for_covers_every_index_once() {
        let pool = ThreadPool::new(4);
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(0..n, |chunk| {
            for i in chunk {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_static_covers_every_index_once() {
        let pool = ThreadPool::new(3);
        let n = 1_001; // deliberately not divisible by the team size
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for_with(0..n, Schedule::Static, |chunk| {
            for i in chunk {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_reduce_matches_sequential() {
        let pool = ThreadPool::new(8);
        let n = 100_000u64;
        let total = pool.parallel_reduce(
            0..n as usize,
            Schedule::Auto,
            0u64,
            |chunk| chunk.map(|i| (i as u64) * (i as u64)).sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(total, seq_sum(n));
    }

    /// Sum values engineered so that fold order changes the f64 result:
    /// alternating huge and tiny magnitudes lose different low bits
    /// depending on association.
    fn order_sensitive_value(i: usize) -> f64 {
        if i.is_multiple_of(2) {
            1e16 + i as f64
        } else {
            1.0 / (i as f64)
        }
    }

    #[test]
    fn ordered_reduce_is_bit_identical_across_pool_sizes() {
        let n = 50_000;
        let grain = 1024;
        let sum_on = |threads: usize| {
            let pool = ThreadPool::new(threads);
            pool.parallel_reduce_ordered(
                0..n,
                grain,
                0.0f64,
                |chunk| chunk.map(order_sensitive_value).sum::<f64>(),
                |a, b| a + b,
            )
        };
        let baseline = sum_on(1);
        for threads in [2, 3, 4, 8] {
            let sum = sum_on(threads);
            assert_eq!(baseline.to_bits(), sum.to_bits(), "threads={threads}");
        }
        // And re-running on the same pool size is identical too.
        assert_eq!(sum_on(4).to_bits(), sum_on(4).to_bits());
    }

    #[test]
    fn ordered_reduce_matches_manual_chunked_fold() {
        let pool = ThreadPool::new(4);
        let n = 10_000;
        let grain = 333;
        let expect = (0..n)
            .step_by(grain)
            .map(|lo| (lo..(lo + grain).min(n)).map(order_sensitive_value).sum::<f64>())
            .fold(0.0f64, |a, b| a + b);
        let got = pool.parallel_reduce_ordered(
            0..n,
            grain,
            0.0f64,
            |chunk| chunk.map(order_sensitive_value).sum::<f64>(),
            |a, b| a + b,
        );
        assert_eq!(expect.to_bits(), got.to_bits());
    }

    #[test]
    fn ordered_reduce_empty_range_returns_identity() {
        let pool = ThreadPool::new(4);
        let got = pool.parallel_reduce_ordered(7..7, 16, -1.0f64, |_| panic!("no chunks"), |a, b| a + b);
        assert_eq!(got, -1.0);
    }

    #[test]
    fn ordered_reduce_nested_on_worker_runs_inline() {
        let pool = std::sync::Arc::new(ThreadPool::new(3));
        let inner = std::sync::Arc::clone(&pool);
        let outer = pool.parallel_reduce_ordered(
            0..4,
            1,
            0u64,
            |chunk| {
                chunk
                    .map(|_| {
                        inner.parallel_reduce_ordered(
                            0..100,
                            7,
                            0u64,
                            |c| c.map(|i| i as u64).sum::<u64>(),
                            |a, b| a + b,
                        )
                    })
                    .sum::<u64>()
            },
            |a, b| a + b,
        );
        assert_eq!(outer, 4 * (0..100u64).sum::<u64>());
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let tid = std::thread::current().id();
        pool.parallel_for(0..1, |_| {
            assert_eq!(std::thread::current().id(), tid);
        });
    }

    #[test]
    fn empty_range_is_noop() {
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.parallel_for(5..5, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn team_capped_by_range_length() {
        let pool = ThreadPool::new(16);
        // A 2-iteration loop must still cover both indices exactly once.
        let hits: Vec<AtomicUsize> = (0..2).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(0..2, |chunk| {
            for i in chunk {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_parallel_for_runs_inline() {
        let pool = std::sync::Arc::new(ThreadPool::new(4));
        let p2 = std::sync::Arc::clone(&pool);
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            s.spawn(|| {
                // Inside a worker of the same pool: must not deadlock.
                p2.parallel_for(0..100, |chunk| {
                    for i in chunk {
                        total.fetch_add(i as u64, Ordering::Relaxed);
                    }
                });
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), (0..100u64).sum());
    }

    #[test]
    fn panics_propagate_to_caller() {
        let pool = ThreadPool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(0..1000, |chunk| {
                if chunk.contains(&500) {
                    panic!("boom at 500");
                }
            });
        }));
        assert!(result.is_err());
        // The pool must remain usable after a panic.
        let counter = AtomicUsize::new(0);
        pool.parallel_for(0..100, |chunk| {
            counter.fetch_add(chunk.len(), Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn concurrent_parallel_fors_from_many_threads() {
        let pool = std::sync::Arc::new(ThreadPool::new(4));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let p = std::sync::Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                let acc = AtomicU64::new(0);
                p.parallel_for(0..5_000, |chunk| {
                    for i in chunk {
                        acc.fetch_add(i as u64 + t, Ordering::Relaxed);
                    }
                });
                acc.load(Ordering::Relaxed)
            }));
        }
        for (t, h) in handles.into_iter().enumerate() {
            let expect: u64 = (0..5_000u64).map(|i| i + t as u64).sum();
            assert_eq!(h.join().unwrap(), expect);
        }
    }

    #[test]
    fn dynamic_grain_one_works() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for_with(0..257, Schedule::Dynamic(1), |chunk| {
            for i in chunk {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn sequential_pool_is_shared_and_inline() {
        let a = ThreadPool::sequential();
        let b = ThreadPool::sequential();
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        assert_eq!(a.num_threads(), 1);
        let tid = std::thread::current().id();
        a.parallel_for(0..4, |_| assert_eq!(std::thread::current().id(), tid));
    }

    #[test]
    fn worker_pool_id_identifies_workers() {
        let pool = ThreadPool::new(3);
        assert!(pool.id() != 0);
        // The calling thread is the master, not a background worker.
        assert_eq!(crate::current_worker_pool_id(), 0);
        let (ids, expected) = (Arc::new(Mutex::new(Vec::new())), pool.id());
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let (ids, done) = (Arc::clone(&ids), Arc::clone(&done));
            pool.spawn_detached(move || {
                ids.lock().push(crate::current_worker_pool_id());
                done.fetch_add(1, Ordering::Release);
            });
        }
        while done.load(Ordering::Acquire) < 4 {
            std::thread::yield_now();
        }
        assert!(ids.lock().iter().all(|&id| id == expected), "workers must report their pool's id");
        // A different pool's workers report a different id.
        let other = ThreadPool::new(2);
        assert_ne!(other.id(), expected);
    }

    #[test]
    fn builder_configures_pool() {
        let pool = PoolBuilder::new().num_threads(3).name("bench").build();
        assert_eq!(pool.num_threads(), 3);
        assert_eq!(pool.name(), "bench");
    }

    #[test]
    fn drop_joins_workers() {
        for _ in 0..16 {
            let pool = ThreadPool::new(4);
            pool.parallel_for(0..64, |_| {});
            drop(pool);
        }
    }

    #[test]
    fn spawn_detached_runs_on_worker_and_completes() {
        let pool = ThreadPool::new(3);
        let done = Arc::new(AtomicUsize::new(0));
        let caller = std::thread::current().id();
        let off_caller = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let done = Arc::clone(&done);
            let off_caller = Arc::clone(&off_caller);
            pool.spawn_detached(move || {
                if std::thread::current().id() != caller {
                    off_caller.fetch_add(1, Ordering::Relaxed);
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        while done.load(Ordering::Relaxed) < 16 {
            std::thread::yield_now();
        }
        // With workers available, detached tasks never run on the caller.
        assert_eq!(off_caller.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn spawn_detached_team_of_one_runs_inline() {
        let pool = ThreadPool::new(1);
        let tid = std::thread::current().id();
        let ran = Arc::new(AtomicBool::new(false));
        let ran2 = Arc::clone(&ran);
        pool.spawn_detached(move || {
            assert_eq!(std::thread::current().id(), tid);
            ran2.store(true, Ordering::Release);
        });
        assert!(ran.load(Ordering::Acquire), "inline path must run before returning");
    }

    #[test]
    fn submit_batch_returns_results_in_submission_order() {
        let pool = ThreadPool::new(4);
        let jobs: Vec<_> = (0..37).map(|i| move || i * i).collect();
        assert_eq!(pool.submit_batch(jobs), (0..37).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn submit_batch_empty_and_single_job() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.submit_batch(Vec::<fn() -> i32>::new()), Vec::<i32>::new());
        let tid = std::thread::current().id();
        // A single job must run inline on the caller, paying no dispatch.
        let out = pool.submit_batch(vec![move || std::thread::current().id() == tid]);
        assert_eq!(out, vec![true]);
    }

    #[test]
    fn submit_batch_single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let tid = std::thread::current().id();
        let jobs: Vec<_> = (0..8).map(|_| move || std::thread::current().id() == tid).collect();
        assert!(pool.submit_batch(jobs).into_iter().all(|inline| inline));
    }

    #[test]
    fn submit_batch_jobs_may_borrow_stack_data() {
        let pool = ThreadPool::new(4);
        let data = [10u64, 20, 30, 40, 50];
        let jobs: Vec<_> = data.chunks(2).map(|chunk| move || chunk.iter().sum::<u64>()).collect();
        assert_eq!(pool.submit_batch(jobs).into_iter().sum::<u64>(), 150);
    }

    #[test]
    fn nested_submit_batch_completes_without_deadlock() {
        let pool = std::sync::Arc::new(ThreadPool::new(3));
        let inner = std::sync::Arc::clone(&pool);
        let jobs: Vec<_> = (0..4)
            .map(|i| {
                let inner = std::sync::Arc::clone(&inner);
                move || inner.submit_batch((0..4).map(|j| move || i * 10 + j).collect()).len()
            })
            .collect();
        assert_eq!(pool.submit_batch(jobs), vec![4, 4, 4, 4]);
    }

    #[test]
    fn nested_submit_batch_uses_leftover_capacity() {
        // A worker-issued batch must be able to hand jobs to *other* idle
        // workers. Job 0 spins until job 1 runs; with the old
        // inline-nested behavior the spinning worker would run both jobs
        // sequentially and never terminate.
        let pool = std::sync::Arc::new(ThreadPool::new(3));
        let inner = std::sync::Arc::clone(&pool);
        let ran_on = Arc::new(Mutex::new(Vec::new()));
        let observed = Arc::clone(&ran_on);
        let done = Arc::new(AtomicBool::new(false));
        let done2 = Arc::clone(&done);
        pool.spawn_detached(move || {
            let flag = Arc::new(AtomicBool::new(false));
            let (f0, f1) = (Arc::clone(&flag), Arc::clone(&flag));
            let recorder = Arc::clone(&observed);
            let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![
                Box::new(move || {
                    while !f0.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                    0
                }),
                Box::new(move || {
                    recorder.lock().push(std::thread::current().id());
                    f1.store(true, Ordering::Release);
                    1
                }),
            ];
            let my_id = std::thread::current().id();
            let out = inner.submit_batch(jobs.into_iter().map(|job| move || job()).collect::<Vec<_>>());
            assert_eq!(out, vec![0, 1]);
            // Job 1 must have run on a different worker than the nester.
            assert!(observed.lock().iter().all(|&id| id != my_id));
            done2.store(true, Ordering::Release);
        });
        while !done.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        assert_eq!(ran_on.lock().len(), 1);
    }

    #[test]
    fn idle_worker_steals_from_batch_tail() {
        // The lone worker is pinned inside a detached task while the main
        // thread submits a batch and blocks inside job 0; the worker's
        // steal-first loop must then claim job 1 from the tail (its
        // dispatch message is behind the pinned task in the queue).
        let pool = ThreadPool::new(2);
        let before = batch_steal_count();
        let busy = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let (busy2, release2) = (Arc::clone(&busy), Arc::clone(&release));
        pool.spawn_detached(move || {
            busy2.store(true, Ordering::Release);
            while !release2.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        });
        while !busy.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        let unblock = Arc::new(AtomicBool::new(false));
        let (u0, u1) = (Arc::clone(&unblock), Arc::clone(&unblock));
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![
            Box::new(move || {
                release.store(true, Ordering::Release);
                while !u0.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                0
            }),
            Box::new(move || {
                u1.store(true, Ordering::Release);
                1
            }),
        ];
        let out = pool.submit_batch(jobs.into_iter().map(|job| move || job()).collect::<Vec<_>>());
        assert_eq!(out, vec![0, 1]);
        assert!(batch_steal_count() > before, "worker should have stolen job 1 from the tail");
    }

    #[test]
    fn submit_batch_caller_keeps_claiming_jobs() {
        // Team of 2 (one background worker). Job 1 blocks until job 2 has
        // run; if the caller only ever executed the first job, the lone
        // worker would run job 1 and job 2 in order and deadlock. The
        // caller claiming jobs beyond its first is what makes this finish.
        let pool = ThreadPool::new(2);
        let flag = AtomicBool::new(false);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![
            Box::new(|| 0),
            Box::new(|| {
                while !flag.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                1
            }),
            Box::new(|| {
                flag.store(true, Ordering::Release);
                2
            }),
        ];
        let out = pool.submit_batch(jobs.into_iter().map(|job| move || job()).collect::<Vec<_>>());
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn submit_batch_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
                .map(|i| {
                    Box::new(move || if i == 5 { panic!("job 5 failed") } else { i })
                        as Box<dyn FnOnce() -> usize + Send>
                })
                .collect();
            pool.submit_batch(jobs.into_iter().map(|job| move || job()).collect::<Vec<_>>());
        }));
        assert!(result.is_err());
        assert_eq!(pool.submit_batch(vec![|| 1, || 2]), vec![1, 2]);
    }
}
