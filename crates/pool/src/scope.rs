//! Fork/join scoped tasks over a [`ThreadPool`].
//!
//! [`ThreadPool::scope`] provides the task-parallel counterpart of
//! `parallel_for`: closures spawned on the [`Scope`] may borrow data from
//! the caller's stack, and the scope blocks at its end until every task has
//! completed, so those borrows remain valid.

use crate::latch::WaitGroup;
use crate::pool::ThreadPool;
use parking_lot::Mutex;
use std::any::Any;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Handle for spawning borrowed tasks inside [`ThreadPool::scope`].
pub struct Scope<'env> {
    pool: *const ThreadPool,
    wg: WaitGroup,
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
    /// Invariant over 'env, as borrowed data flows both in and out of tasks.
    _marker: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    fn pool(&self) -> &ThreadPool {
        // SAFETY: the scope never outlives `run_scope`, whose caller holds
        // the pool reference for the whole call.
        unsafe { &*self.pool }
    }

    /// Spawn a task that may borrow from the environment of the enclosing
    /// [`ThreadPool::scope`] call.
    ///
    /// Tasks run on the pool's background workers; if the pool has none
    /// (team size 1) or the caller *is* one of this pool's workers (a nested
    /// scope), the task runs inline to guarantee forward progress.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.wg.add(1);
        /// Raw pointer made Send: the pointee is Sync shared scope state
        /// whose lifetime is guaranteed by the wait in `run_scope`.
        struct ScopePtr<T>(*const T);
        unsafe impl<T: Sync> Send for ScopePtr<T> {}

        let run = {
            // Capture only what the erased task needs: the closure itself
            // plus pointers back to the scope's completion/panic state.
            let wg = ScopePtr::<WaitGroup>(&self.wg);
            let panics = ScopePtr::<Mutex<Option<Box<dyn Any + Send>>>>(&self.panic_payload);
            move || {
                // Move the whole wrappers in (not just their pointer fields)
                // so the closure is Send via ScopePtr's unsafe impl.
                let (wg, panics) = (wg, panics);
                let result = catch_unwind(AssertUnwindSafe(f));
                // SAFETY: `run_scope` blocks on the wait group before the
                // Scope is dropped, so these pointers are valid here.
                let (wg, panics) = unsafe { (&*wg.0, &*panics.0) };
                if let Err(payload) = result {
                    let mut slot = panics.lock();
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
                wg.done();
            }
        };
        if !self.pool().has_workers() || self.pool().on_worker() {
            run();
            return;
        }
        // Erase the 'env lifetime. SAFETY: the scope's wait group is awaited
        // before `run_scope` returns, so the closure (and everything it
        // borrows) outlives its execution.
        let boxed: Box<dyn FnOnce() + Send + 'env> = Box::new(run);
        let boxed: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(boxed) };
        self.pool().send_task(boxed);
    }
}

pub(crate) fn run_scope<'env, F, R>(pool: &ThreadPool, f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let scope = Scope { pool, wg: WaitGroup::new(), panic_payload: Mutex::new(None), _marker: PhantomData };
    let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
    // Always drain spawned tasks, even if the scope body panicked, so that
    // borrowed data is not freed while tasks still reference it.
    scope.wg.wait();
    match result {
        Ok(value) => {
            if let Some(payload) = scope.panic_payload.lock().take() {
                resume_unwind(payload);
            }
            value
        }
        Err(payload) => resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadPool;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_tasks_borrow_stack_data() {
        let pool = ThreadPool::new(4);
        let data = [1u64, 2, 3, 4, 5];
        let sum = AtomicUsize::new(0);
        pool.scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|| {
                    sum.fetch_add(chunk.iter().sum::<u64>() as usize, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn scope_returns_body_value() {
        let pool = ThreadPool::new(2);
        let v = pool.scope(|_| 42);
        assert_eq!(v, 42);
    }

    #[test]
    fn scope_on_single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..10 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = std::sync::Arc::new(ThreadPool::new(2));
        let inner_pool = std::sync::Arc::clone(&pool);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn(|| {
                inner_pool.scope(|s2| {
                    for _ in 0..4 {
                        s2.spawn(|| {
                            counter.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn task_panic_propagates_after_all_tasks_finish() {
        let pool = ThreadPool::new(4);
        let completed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("task failed"));
                for _ in 0..8 {
                    s.spawn(|| {
                        completed.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err());
        assert_eq!(completed.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn many_tasks_complete() {
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..1000 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }
}
