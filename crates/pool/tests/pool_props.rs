//! Property tests: a work-shared loop must be observationally equivalent to
//! the sequential loop for any range, team size, and schedule.

use proptest::prelude::*;
use qcor_pool::{Schedule, ThreadPool};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    prop_oneof![Just(Schedule::Static), Just(Schedule::Auto), (1usize..64).prop_map(Schedule::Dynamic),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn covers_each_index_exactly_once(
        start in 0usize..1000,
        len in 0usize..2000,
        threads in 1usize..9,
        schedule in schedule_strategy(),
    ) {
        let pool = ThreadPool::new(threads);
        let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for_with(start..start + len, schedule, |chunk| {
            for i in chunk {
                hits[i - start].fetch_add(1, Ordering::Relaxed);
            }
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn reduce_matches_sequential_sum(
        values in prop::collection::vec(0u64..1_000_000, 0..3000),
        threads in 1usize..9,
        schedule in schedule_strategy(),
    ) {
        let pool = ThreadPool::new(threads);
        let expect: u64 = values.iter().sum();
        let got = pool.parallel_reduce(
            0..values.len(),
            schedule,
            0u64,
            |chunk| chunk.map(|i| values[i]).sum::<u64>(),
            |a, b| a + b,
        );
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn scope_runs_every_task(task_count in 0usize..200, threads in 1usize..9) {
        let pool = ThreadPool::new(threads);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for i in 0..task_count {
                let counter = &counter;
                s.spawn(move || {
                    counter.fetch_add(i as u64 + 1, Ordering::Relaxed);
                });
            }
        });
        let expect: u64 = (1..=task_count as u64).sum();
        prop_assert_eq!(counter.load(Ordering::Relaxed), expect);
    }
}
