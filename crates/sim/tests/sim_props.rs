//! Property tests for simulator invariants: norm preservation, unitarity
//! round-trips, equivalence of sequential and pool-parallel execution, and
//! agreement between the optimizer and the simulator.

use proptest::prelude::*;
use qcor_circuit::{passes, Circuit, GateKind, Instruction};
use qcor_pool::ThreadPool;
use qcor_sim::{run_once, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Random unitary-only instruction over `n ≥ 3` qubits.
fn unitary_instruction(n: usize) -> impl Strategy<Value = Instruction> {
    let q = 0..n;
    let angle = -6.5f64..6.5;
    prop_oneof![
        q.clone().prop_map(|a| Instruction::new(GateKind::H, vec![a], vec![])),
        q.clone().prop_map(|a| Instruction::new(GateKind::X, vec![a], vec![])),
        q.clone().prop_map(|a| Instruction::new(GateKind::Y, vec![a], vec![])),
        q.clone().prop_map(|a| Instruction::new(GateKind::Z, vec![a], vec![])),
        q.clone().prop_map(|a| Instruction::new(GateKind::S, vec![a], vec![])),
        q.clone().prop_map(|a| Instruction::new(GateKind::T, vec![a], vec![])),
        (q.clone(), angle.clone()).prop_map(|(a, t)| Instruction::new(GateKind::Rx, vec![a], vec![t])),
        (q.clone(), angle.clone()).prop_map(|(a, t)| Instruction::new(GateKind::Ry, vec![a], vec![t])),
        (q.clone(), angle.clone()).prop_map(|(a, t)| Instruction::new(GateKind::Rz, vec![a], vec![t])),
        (q.clone(), angle.clone()).prop_map(|(a, t)| Instruction::new(GateKind::Phase, vec![a], vec![t])),
        (q.clone(), q.clone(), angle.clone()).prop_filter_map("distinct", |(a, b, t)| {
            (a != b).then(|| Instruction::new(GateKind::CPhase, vec![a, b], vec![t]))
        }),
        (q.clone(), q.clone(), angle).prop_filter_map("distinct", |(a, b, t)| {
            (a != b).then(|| Instruction::new(GateKind::CRz, vec![a, b], vec![t]))
        }),
        (q.clone(), q.clone()).prop_filter_map("distinct", |(a, b)| {
            (a != b).then(|| Instruction::new(GateKind::CX, vec![a, b], vec![]))
        }),
        (q.clone(), q.clone()).prop_filter_map("distinct", |(a, b)| {
            (a != b).then(|| Instruction::new(GateKind::CZ, vec![a, b], vec![]))
        }),
        (q.clone(), q.clone()).prop_filter_map("distinct", |(a, b)| {
            (a != b).then(|| Instruction::new(GateKind::Swap, vec![a, b], vec![]))
        }),
        (q.clone(), q.clone(), q.clone()).prop_filter_map("distinct", |(a, b, c)| {
            (a != b && b != c && a != c).then(|| Instruction::new(GateKind::CCX, vec![a, b, c], vec![]))
        }),
        (q.clone(), q.clone(), q).prop_filter_map("distinct", |(a, b, c)| {
            (a != b && b != c && a != c).then(|| Instruction::new(GateKind::CSwap, vec![a, b, c], vec![]))
        }),
    ]
}

fn unitary_circuit(n: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(unitary_instruction(n), 0..max_len).prop_map(move |insts| {
        let mut c = Circuit::new(n);
        for i in insts {
            c.push(i);
        }
        c
    })
}

fn states_close(a: &StateVector, b: &StateVector, eps: f64) -> bool {
    a.amplitudes().iter().zip(b.amplitudes()).all(|(x, y)| x.approx_eq(*y, eps))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unitary_evolution_preserves_norm(c in unitary_circuit(4, 40)) {
        let mut state = StateVector::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        run_once(&mut state, &c, &mut rng);
        prop_assert!((state.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn u_then_u_dagger_restores_initial_state(c in unitary_circuit(4, 25)) {
        let mut state = StateVector::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        run_once(&mut state, &c, &mut rng);
        run_once(&mut state, &c.inverse().unwrap(), &mut rng);
        prop_assert!(state.amp(0).approx_eq(qcor_sim::c64(1.0, 0.0), 1e-8), "amp0 = {}", state.amp(0));
        for i in 1..state.len() {
            prop_assert!(state.amp(i).norm_sqr() < 1e-16);
        }
    }

    #[test]
    fn parallel_execution_matches_sequential(c in unitary_circuit(5, 30), threads in 2usize..6) {
        let mut seq = StateVector::new(5);
        let mut par = StateVector::with_pool(5, Arc::new(ThreadPool::new(threads)));
        let mut rng1 = StdRng::seed_from_u64(0);
        let mut rng2 = StdRng::seed_from_u64(0);
        run_once(&mut seq, &c, &mut rng1);
        run_once(&mut par, &c, &mut rng2);
        prop_assert!(states_close(&seq, &par, 1e-10));
    }

    #[test]
    fn optimizer_preserves_simulated_state(c in unitary_circuit(4, 30)) {
        let mut optimized = c.clone();
        passes::optimize(&mut optimized);
        let mut a = StateVector::new(4);
        let mut b = StateVector::new(4);
        let mut rng1 = StdRng::seed_from_u64(0);
        let mut rng2 = StdRng::seed_from_u64(0);
        run_once(&mut a, &c, &mut rng1);
        run_once(&mut b, &optimized, &mut rng2);
        // The optimizer preserves states exactly (not just up to global
        // phase): identity removal is restricted to exact identities.
        prop_assert!(states_close(&a, &b, 1e-9));
    }

    #[test]
    fn measurement_probabilities_sum_to_one(c in unitary_circuit(4, 20)) {
        let mut state = StateVector::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        run_once(&mut state, &c, &mut rng);
        let total: f64 = state.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for q in 0..4 {
            let p = state.prob_one(q);
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&p));
        }
    }

    #[test]
    fn measure_then_remeasure_is_consistent(c in unitary_circuit(3, 15), q in 0usize..3, seed in 0u64..1000) {
        let mut state = StateVector::new(3);
        let mut rng = StdRng::seed_from_u64(seed);
        run_once(&mut state, &c, &mut rng);
        let first = state.measure(q, &mut rng);
        // After collapse the same qubit must measure identically.
        let second = state.measure(q, &mut rng);
        prop_assert_eq!(first, second);
    }

    #[test]
    fn permutation_preserves_norm(seed in 0u64..500) {
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut state = StateVector::new(5);
        // Prepare a superposition first.
        let mut prep = Circuit::new(5);
        for q in 0..5 {
            prep.h(q);
            prep.phase(q, 0.1 + q as f64);
        }
        run_once(&mut state, &prep, &mut rng);
        let mut perm: Vec<usize> = (0..8).collect();
        perm.shuffle(&mut rng);
        state.apply_controlled_permutation(1 << 4, &[0, 1, 2], &perm);
        prop_assert!((state.norm_sqr() - 1.0).abs() < 1e-9);
    }
}
