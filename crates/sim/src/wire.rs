//! Versioned binary wire format for [`CompiledCircuit`] plans (kind
//! `0x02` of the shared `QCWF` container — the source-circuit codec, kind
//! `0x01`, lives in `qcor_circuit::wire`).
//!
//! Layout after the shared 6-byte header (magic, kind, version), all
//! little-endian:
//!
//! ```text
//! u32 num_qubits   u32 source_len   u32 op_count
//! then per op: u8 opcode, fields (masks u64, qubit indices u32,
//! complex entries as re/im f64 pairs)
//! ```
//!
//! Opcodes are frozen append-only: `0` Dense, `1` Dense2, `2` Flip, `3`
//! Diag, `4` Phase, `5` Scale, `6` Swap, `7` Measure, `8` Reset. The
//! cache-blocking segment plan is deliberately **not** serialized — it is
//! a pure function of the op list and is replanned on decode, so a plan
//! encoded on one machine replays with the decoder's blocking policy.
//!
//! Decoding validates qubit indices and masks against `num_qubits` and
//! returns typed [`WireError`]s on truncation, unknown versions, unknown
//! opcodes and out-of-range operands — never panics, never silently
//! truncates.

use crate::compile::{CompiledCircuit, KernelOp};
use crate::complex::Complex64;
use qcor_circuit::wire::{WireError, WireReader, WireWriter, KIND_COMPILED};

/// Current compiled-plan wire version. Bump when the layout changes;
/// decoders reject unknown versions with [`WireError::UnknownVersion`].
pub const COMPILED_WIRE_VERSION: u8 = 1;

const OP_DENSE: u8 = 0;
const OP_DENSE2: u8 = 1;
const OP_FLIP: u8 = 2;
const OP_DIAG: u8 = 3;
const OP_PHASE: u8 = 4;
const OP_SCALE: u8 = 5;
const OP_SWAP: u8 = 6;
const OP_MEASURE: u8 = 7;
const OP_RESET: u8 = 8;

fn put_c64(w: &mut WireWriter, c: Complex64) {
    w.f64(c.re);
    w.f64(c.im);
}

fn get_c64(r: &mut WireReader) -> Result<Complex64, WireError> {
    Ok(Complex64::new(r.f64()?, r.f64()?))
}

/// Serialize a compiled plan. `decode_compiled` inverts this exactly:
/// every op (and the replayed behavior) round-trips bit-for-bit.
pub fn encode_compiled(plan: &CompiledCircuit) -> Vec<u8> {
    let mut w = WireWriter::new(KIND_COMPILED, COMPILED_WIRE_VERSION);
    w.u32(plan.num_qubits() as u32);
    w.u32(plan.source_len() as u32);
    w.u32(plan.ops().len() as u32);
    for op in plan.ops() {
        match op {
            KernelOp::Dense { target, ctrl_mask, m } => {
                w.u8(OP_DENSE);
                w.u32(*target as u32);
                w.u64(*ctrl_mask as u64);
                for row in m {
                    for &c in row {
                        put_c64(&mut w, c);
                    }
                }
            }
            KernelOp::Dense2 { t0, t1, ctrl_mask, m } => {
                w.u8(OP_DENSE2);
                w.u32(*t0 as u32);
                w.u32(*t1 as u32);
                w.u64(*ctrl_mask as u64);
                for row in m.iter() {
                    for &c in row {
                        put_c64(&mut w, c);
                    }
                }
            }
            KernelOp::Flip { target, ctrl_mask, m01, m10 } => {
                w.u8(OP_FLIP);
                w.u32(*target as u32);
                w.u64(*ctrl_mask as u64);
                put_c64(&mut w, *m01);
                put_c64(&mut w, *m10);
            }
            KernelOp::Diag { target, ctrl_mask, d0, d1 } => {
                w.u8(OP_DIAG);
                w.u32(*target as u32);
                w.u64(*ctrl_mask as u64);
                put_c64(&mut w, *d0);
                put_c64(&mut w, *d1);
            }
            KernelOp::Phase { set_mask, clear_mask, phase } => {
                w.u8(OP_PHASE);
                w.u64(*set_mask as u64);
                w.u64(*clear_mask as u64);
                put_c64(&mut w, *phase);
            }
            KernelOp::Scale { factor } => {
                w.u8(OP_SCALE);
                put_c64(&mut w, *factor);
            }
            KernelOp::Swap { a, b, ctrl_mask } => {
                w.u8(OP_SWAP);
                w.u32(*a as u32);
                w.u32(*b as u32);
                w.u64(*ctrl_mask as u64);
            }
            KernelOp::Measure { qubit, loc } => {
                w.u8(OP_MEASURE);
                w.u32(*qubit as u32);
                w.u32(*loc as u32);
            }
            KernelOp::Reset { qubit, loc } => {
                w.u8(OP_RESET);
                w.u32(*qubit as u32);
                w.u32(*loc as u32);
            }
        }
    }
    w.finish()
}

fn check_qubit(q: u32, num_qubits: usize) -> Result<usize, WireError> {
    if (q as usize) < num_qubits {
        Ok(q as usize)
    } else {
        Err(WireError::Invalid(format!("qubit index {q} out of range for a {num_qubits}-qubit plan")))
    }
}

/// Validate a control/phase mask: every set bit below `num_qubits`.
fn check_mask(mask: u64, num_qubits: usize) -> Result<usize, WireError> {
    if num_qubits < 64 && mask >> num_qubits != 0 {
        return Err(WireError::Invalid(format!("mask {mask:#x} has bits at or above qubit {num_qubits}")));
    }
    Ok(mask as usize)
}

/// Deserialize a compiled plan, validating the header, every opcode and
/// every operand, and replanning the cache-blocking segments.
pub fn decode_compiled(bytes: &[u8]) -> Result<CompiledCircuit, WireError> {
    let mut r = WireReader::new(bytes);
    let version = r.header(KIND_COMPILED)?;
    if version != COMPILED_WIRE_VERSION {
        return Err(WireError::UnknownVersion(version));
    }
    let num_qubits = r.u32()? as usize;
    if num_qubits > qcor_circuit::MAX_QUBITS {
        return Err(WireError::Invalid(format!(
            "plan requests {num_qubits} qubits but the maximum is {}",
            qcor_circuit::MAX_QUBITS
        )));
    }
    let source_len = r.u32()? as usize;
    let count = r.u32()? as usize;
    let mut ops = Vec::new();
    for _ in 0..count {
        let op = match r.u8()? {
            OP_DENSE => {
                let target = check_qubit(r.u32()?, num_qubits)?;
                let ctrl_mask = check_mask(r.u64()?, num_qubits)?;
                let mut m = [[Complex64::ZERO; 2]; 2];
                for row in &mut m {
                    for c in row {
                        *c = get_c64(&mut r)?;
                    }
                }
                KernelOp::Dense { target, ctrl_mask, m }
            }
            OP_DENSE2 => {
                let t0 = check_qubit(r.u32()?, num_qubits)?;
                let t1 = check_qubit(r.u32()?, num_qubits)?;
                if t0 >= t1 {
                    return Err(WireError::Invalid(format!("pair block requires t0 < t1, got ({t0}, {t1})")));
                }
                let ctrl_mask = check_mask(r.u64()?, num_qubits)?;
                let mut m = Box::new([[Complex64::ZERO; 4]; 4]);
                for row in m.iter_mut() {
                    for c in row {
                        *c = get_c64(&mut r)?;
                    }
                }
                KernelOp::Dense2 { t0, t1, ctrl_mask, m }
            }
            OP_FLIP => {
                let target = check_qubit(r.u32()?, num_qubits)?;
                let ctrl_mask = check_mask(r.u64()?, num_qubits)?;
                KernelOp::Flip { target, ctrl_mask, m01: get_c64(&mut r)?, m10: get_c64(&mut r)? }
            }
            OP_DIAG => {
                let target = check_qubit(r.u32()?, num_qubits)?;
                let ctrl_mask = check_mask(r.u64()?, num_qubits)?;
                KernelOp::Diag { target, ctrl_mask, d0: get_c64(&mut r)?, d1: get_c64(&mut r)? }
            }
            OP_PHASE => {
                let set_mask = check_mask(r.u64()?, num_qubits)?;
                let clear_mask = check_mask(r.u64()?, num_qubits)?;
                KernelOp::Phase { set_mask, clear_mask, phase: get_c64(&mut r)? }
            }
            OP_SCALE => KernelOp::Scale { factor: get_c64(&mut r)? },
            OP_SWAP => {
                let a = check_qubit(r.u32()?, num_qubits)?;
                let b = check_qubit(r.u32()?, num_qubits)?;
                let ctrl_mask = check_mask(r.u64()?, num_qubits)?;
                KernelOp::Swap { a, b, ctrl_mask }
            }
            OP_MEASURE => KernelOp::Measure {
                qubit: check_qubit(r.u32()?, num_qubits)?,
                loc: check_qubit(r.u32()?, num_qubits)?,
            },
            OP_RESET => KernelOp::Reset {
                qubit: check_qubit(r.u32()?, num_qubits)?,
                loc: check_qubit(r.u32()?, num_qubits)?,
            },
            other => return Err(WireError::Invalid(format!("unknown kernel opcode {other}"))),
        };
        ops.push(op);
    }
    r.finish()?;
    Ok(CompiledCircuit::from_ops(num_qubits, ops, source_len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateVector;
    use qcor_circuit::library;
    use qcor_circuit::wire::KIND_CIRCUIT;
    use qcor_circuit::Circuit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_plan() -> CompiledCircuit {
        let mut c = Circuit::new(3);
        c.h(0).t(0).cx(0, 1).rz(2, 0.71).swap(1, 2).ry(2, -0.3);
        c.measure(0).measure(1).measure(2);
        CompiledCircuit::compile(&c)
    }

    #[test]
    fn compiled_plan_round_trips_exactly() {
        for plan in [sample_plan(), CompiledCircuit::compile(&library::qft(4))] {
            let bytes = encode_compiled(&plan);
            let back = decode_compiled(&bytes).unwrap();
            assert_eq!(back.ops(), plan.ops());
            assert_eq!(back.num_qubits(), plan.num_qubits());
            assert_eq!(back.source_len(), plan.source_len());
        }
    }

    #[test]
    fn decoded_plan_replays_identically() {
        let plan = sample_plan();
        let back = decode_compiled(&encode_compiled(&plan)).unwrap();
        let mut s1 = StateVector::new(3);
        let mut s2 = StateVector::new(3);
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        assert_eq!(plan.run_once(&mut s1, &mut r1), back.run_once(&mut s2, &mut r2));
        assert_eq!(s1.amplitudes(), s2.amplitudes(), "replays must be bit-identical");
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = encode_compiled(&sample_plan());
        for cut in 0..bytes.len() {
            assert!(
                matches!(decode_compiled(&bytes[..cut]), Err(WireError::Truncated { .. })),
                "cut at {cut} must report truncation"
            );
        }
    }

    #[test]
    fn unknown_version_and_kind_are_rejected() {
        let mut bytes = encode_compiled(&sample_plan());
        bytes[5] = 99;
        assert!(matches!(decode_compiled(&bytes), Err(WireError::UnknownVersion(99))));
        let circuit_bytes = qcor_circuit::wire::encode(&Circuit::new(2));
        assert!(matches!(
            decode_compiled(&circuit_bytes),
            Err(WireError::WrongKind { expected: KIND_COMPILED, found: KIND_CIRCUIT })
        ));
    }

    #[test]
    fn invalid_operands_are_rejected() {
        // Unknown opcode.
        let mut w = WireWriter::new(KIND_COMPILED, COMPILED_WIRE_VERSION);
        w.u32(2);
        w.u32(1);
        w.u32(1);
        w.u8(200);
        assert!(matches!(decode_compiled(&w.finish()), Err(WireError::Invalid(_))));

        // Out-of-range target qubit.
        let mut w = WireWriter::new(KIND_COMPILED, COMPILED_WIRE_VERSION);
        w.u32(2);
        w.u32(1);
        w.u32(1);
        w.u8(super::OP_MEASURE);
        w.u32(7);
        w.u32(0);
        assert!(matches!(decode_compiled(&w.finish()), Err(WireError::Invalid(_))));

        // Control mask above the register.
        let mut w = WireWriter::new(KIND_COMPILED, COMPILED_WIRE_VERSION);
        w.u32(2);
        w.u32(1);
        w.u32(1);
        w.u8(super::OP_SWAP);
        w.u32(0);
        w.u32(1);
        w.u64(1 << 10);
        assert!(matches!(decode_compiled(&w.finish()), Err(WireError::Invalid(_))));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_compiled(&sample_plan());
        bytes.push(0);
        assert!(matches!(decode_compiled(&bytes), Err(WireError::TrailingBytes(1))));
    }
}
