//! # qcor-sim — parallel state-vector quantum circuit simulator
//!
//! The Quantum++ analogue of this reproduction: a from-scratch state-vector
//! simulator whose amplitude loops are work-shared over a
//! [`qcor_pool::ThreadPool`] the way Quantum++'s loops are work-shared by
//! OpenMP. The pool's thread count plays the role of `OMP_NUM_THREADS` in
//! the paper's evaluation (§VI): a kernel simulated "with N threads" is a
//! [`StateVector`] whose pool has team size N.
//!
//! * [`Complex64`] — in-tree complex arithmetic,
//! * [`StateVector`] — amplitudes plus primitive update kernels,
//! * [`gates`] — gate matrices and instruction dispatch,
//! * [`executor`] — the batched shot scheduler ([`ShotPlan`]), counts,
//!   and exact distributions.

mod complex;
pub mod density;
pub mod executor;
pub mod gates;
mod state;

pub use complex::{c64, Complex64};
pub use density::{DensityMatrix, NoiseModel};
pub use executor::{
    derive_stream_seed, exact_distribution, run_once, run_shots, run_shots_planned, run_shots_task_parallel,
    Counts, Granularity, RunConfig, ShotPlan, ShotRecord,
};
pub use state::StateVector;
