//! # qcor-sim — parallel state-vector quantum circuit simulator
//!
//! The Quantum++ analogue of this reproduction: a from-scratch state-vector
//! simulator whose amplitude loops are work-shared over a
//! [`qcor_pool::ThreadPool`] the way Quantum++'s loops are work-shared by
//! OpenMP. The pool's thread count plays the role of `OMP_NUM_THREADS` in
//! the paper's evaluation (§VI): a kernel simulated "with N threads" is a
//! [`StateVector`] whose pool has team size N.
//!
//! * [`Complex64`] — in-tree complex arithmetic,
//! * [`StateVector`] — amplitudes plus primitive update kernels
//!   (control-aware: controlled kernels enumerate only the indices their
//!   control masks select),
//! * [`gates`] — gate matrices and instruction dispatch,
//! * [`compile`] — the compile-then-execute layer: [`CompiledCircuit`]
//!   lowers a circuit once into fused, precomputed kernel ops, and
//!   [`CompiledTemplate`] lowers a circuit *structure* once so an angle
//!   sweep only re-binds parameters,
//! * [`cache`] — the process-wide compile cache keyed by structural
//!   circuit hash (`QCOR_COMPILE_CACHE`, `QCOR_COMPILE_CACHE_CAPACITY`),
//! * [`wire`] — the versioned binary codec for compiled plans (the
//!   source-circuit codec lives in `qcor_circuit::wire`),
//! * [`executor`] — the batched shot scheduler ([`ShotPlan`]), counts,
//!   and exact distributions,
//! * [`apply`] — the [`ApplyState`] trait: the primitive-kernel surface
//!   compiled replay dispatches to, implemented by pure states directly
//!   and by [`DensityMatrix`] as superoperator (ket + conjugated bra)
//!   sweeps,
//! * [`noise`] — noise-channel lowering ([`compile_noisy`]) shared by the
//!   exact density replay and the trajectory sampler
//!   (`QCOR_NOISE_MODE`), plus the batched noisy shot entry
//!   [`run_noisy_shots`],
//! * [`fp32`] — the single-precision (`precision=f32`) compiled replay:
//!   [`StateVector32`] plus per-plan matrix narrowing,
//! * [`shard`] — process-level shot sharding (`QCOR_SHOT_PROCS`): the
//!   spawn-self driver that partitions a run's chunk schedule across OS
//!   processes and merges counts byte-identically,
//! * [`stats`] — per-thread kernel iteration counters backing the
//!   `gatefuse_guard` CI gate, the process-global compile-cache hit/miss
//!   counters, and the amplitude-shard job/exchange counters.

pub mod apply;
pub mod cache;
pub mod cancel;
pub mod compile;
mod complex;
pub mod density;
pub mod executor;
pub mod fp32;
pub mod gates;
pub mod noise;
pub mod shard;
mod state;
pub mod stats;
pub mod wire;

pub use apply::ApplyState;
pub use cache::{clear_compile_cache, compile_cache_env_default, compile_cached, parse_cache_token};
pub use cancel::{cancel_requested, set_thread_cancel_token, thread_cancel_token, CancelToken};
pub use compile::{CompiledCircuit, CompiledTemplate, KernelOp};
pub use complex::{c32, c64, Complex32, Complex64};
pub use density::{DensityMatrix, NoiseModel};
pub use executor::{
    amp_shards_env_default, derive_stream_seed, exact_distribution, fusion_env_default,
    parse_amp_shards_token, parse_fusion_token, parse_precision_token, precision_env_default,
    run_noisy_shots, run_noisy_shots_planned, run_once, run_once_interpreted, run_shots,
    run_shots_cancellable, run_shots_planned, run_shots_task_parallel, AmpShards, Counts, Granularity,
    Precision, RunConfig, ShotPlan, ShotRecord, ShotRun,
};
pub use fp32::{CompiledCircuit32, StateVector32};
pub use noise::{
    apply_readout_error, compile_noisy, noise_mode_env_default, parse_noise_mode_token, NoiseMode,
    NoisyCompiled, NoisyOp,
};
pub use shard::{
    maybe_shard_worker, parse_shot_procs_token, run_sharded, run_sharded_spawn, run_shots_sharded_env,
    shot_procs_env_default, SHARD_WORKER_ENV, SHOT_PROCS_ENV,
};
pub use state::StateVector;
