//! Noise-channel lowering: compile a circuit **plus** a [`NoiseModel`]
//! into one replayable op stream shared by the density (exact) and
//! trajectory (sampled) executors.
//!
//! [`compile_noisy`] lowers unitary instruction runs through the regular
//! compiler ([`crate::CompiledCircuit`] — fused matrices, kernel
//! classification, structural compile cache) and interleaves
//! [`NoisyOp`] channel ops at the points where the model inserts noise:
//! after every unitary gate, one channel op per touched qubit, in the
//! fixed order depolarizing → dephasing → amplitude-damping (channels
//! with zero strength are omitted). Because a channel sits after every
//! gate, cross-gate fusion is only possible for a noiseless model — the
//! compiled win on noisy circuits comes from precomputing each gate's
//! matrix and kernel class once per plan instead of once per shot.
//!
//! The same op stream has two consumers:
//!
//! * **Density replay** ([`crate::DensityMatrix::run_noisy_circuit`]):
//!   channel ops become exact Kraus sums, measurements project.
//! * **Trajectory replay** ([`run_trajectory_once`], driven per shot by
//!   [`crate::executor::run_noisy_shots`]): channel ops draw their Kraus
//!   branch from the chunk's RNG stream. The draw protocol is fixed —
//!   depolarizing: one `f64` draw, plus one `gen_range(0..3)` draw iff it
//!   fires; dephasing: one draw; amplitude damping: one draw (the jump
//!   probability `γ·P(1)` comes from the ordered reducer, so it is
//!   pool-size-invariant); measure: one draw, plus one readout-flip draw
//!   iff the readout error is non-zero; reset: one draw — so seeded
//!   trajectory counts are byte-identical on any pool size, exactly like
//!   the ideal scheduler's contract.
//!
//! When every channel in the model is **state-independent** (no amplitude
//! damping), the trajectory sampler draws all channel decisions up front
//! (same draws, same op order) before touching the state. A shot where no
//! channel fires — the common case at realistic error rates — then
//! replays the **fully fused** noiseless plan instead of the per-gate
//! interleaved stream; only shots with at least one fired channel pay for
//! the unfused replay. This clean-shot fast path is what makes compiled
//! noisy execution beat the per-shot interpreted loop (`noisy_guard`).

use crate::cache::compile_cached;
use crate::compile::{CompiledCircuit, KernelOp};
use crate::complex::Complex64;
use crate::density::NoiseModel;
use crate::executor::ShotRecord;
use crate::state::StateVector;
use qcor_circuit::{Circuit, GateKind};
use rand::Rng;

/// How the `qpp-noisy` backend executes a noise model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoiseMode {
    /// Per-shot stochastic Kraus-branch sampling on the batched shot
    /// scheduler (compiled replay, chunked RNG streams). The default.
    Trajectory,
    /// Exact density-matrix evolution, then sampling from the resulting
    /// distribution — the oracle the trajectory path is tested against.
    Density,
    /// The legacy per-shot re-interpretation loop, kept as the A/B
    /// baseline the `noisy_guard` CI gate compares against.
    Interpreted,
}

impl std::fmt::Display for NoiseMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            NoiseMode::Trajectory => "trajectory",
            NoiseMode::Density => "density",
            NoiseMode::Interpreted => "interpreted",
        })
    }
}

/// Parse one noise-mode token — the single vocabulary shared by the
/// `QCOR_NOISE_MODE` environment variable and the `qpp-noisy` backend's
/// `noise-mode` param. `None` = unrecognized.
pub fn parse_noise_mode_token(s: &str) -> Option<NoiseMode> {
    match s.trim().to_ascii_lowercase().as_str() {
        "" | "trajectory" => Some(NoiseMode::Trajectory),
        "density" => Some(NoiseMode::Density),
        "interpreted" => Some(NoiseMode::Interpreted),
        _ => None,
    }
}

/// Resolve the process-wide noise-mode default from `QCOR_NOISE_MODE`
/// (read once; unset = [`NoiseMode::Trajectory`], bad values panic loudly
/// like the other executor knobs).
pub fn noise_mode_env_default() -> NoiseMode {
    static DEFAULT: std::sync::OnceLock<NoiseMode> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("QCOR_NOISE_MODE") {
        Err(_) => NoiseMode::Trajectory,
        Ok(v) => parse_noise_mode_token(&v).unwrap_or_else(|| {
            panic!("invalid QCOR_NOISE_MODE value {v:?}: expected trajectory/density/interpreted")
        }),
    })
}

/// One op of a lowered noisy circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum NoisyOp {
    /// A fused unitary kernel op (see [`KernelOp`]; never `Measure`/`Reset`
    /// — those lower to the dedicated variants below).
    Unitary(KernelOp),
    /// Depolarizing channel of strength `p` on `qubit`.
    Depolarize { qubit: usize, p: f64 },
    /// Dephasing (phase-flip) channel of strength `p` on `qubit`.
    Dephase { qubit: usize, p: f64 },
    /// Amplitude damping of rate `gamma` on `qubit`.
    AmplitudeDamp { qubit: usize, gamma: f64 },
    /// Computational-basis measurement of `qubit`.
    Measure { qubit: usize },
    /// Reset `qubit` to |0⟩.
    Reset { qubit: usize },
}

/// A circuit lowered together with its noise model: compiled unitary runs
/// interleaved with channel ops, replayable exactly (density) or sampled
/// (trajectory).
#[derive(Debug, Clone)]
pub struct NoisyCompiled {
    num_qubits: usize,
    ops: Vec<NoisyOp>,
    source_len: usize,
    /// The fully fused noiseless compile of the source circuit, present
    /// when every channel decision is state-independent (no amplitude
    /// damping): shots where no channel fires replay this instead of the
    /// per-gate interleaved stream.
    fused: Option<CompiledCircuit>,
}

impl NoisyCompiled {
    /// Qubit count of the source circuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The lowered op stream, in execution order.
    pub fn ops(&self) -> &[NoisyOp] {
        &self.ops
    }

    /// Number of lowered ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the source circuit lowered to nothing.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of instructions in the source circuit.
    pub fn source_len(&self) -> usize {
        self.source_len
    }

    /// True when trajectory shots where no channel fires can replay the
    /// fully fused noiseless plan (all channels state-independent).
    pub fn has_clean_fast_path(&self) -> bool {
        self.fused.is_some()
    }
}

/// Lower `circuit` + `noise` into a [`NoisyCompiled`] op stream.
///
/// Unitary runs compile through the regular fusing compiler; with
/// `use_cache` they go through the structural compile cache
/// ([`crate::cache::compile_cached`]), so an angle sweep over a noisy
/// ansatz re-binds templates instead of re-lowering. A noiseless model
/// fuses across the whole unitary prefix; an active model flushes after
/// every gate (its channels are fusion barriers by construction).
pub fn compile_noisy(circuit: &Circuit, noise: &NoiseModel, use_cache: bool) -> NoisyCompiled {
    let n = circuit.num_qubits();
    let active = !noise.is_noiseless();
    let mut ops: Vec<NoisyOp> = Vec::new();
    let mut pending = Circuit::new(n);
    let flush = |pending: &mut Circuit, ops: &mut Vec<NoisyOp>| {
        if pending.is_empty() {
            return;
        }
        let compiled = if use_cache { compile_cached(pending) } else { CompiledCircuit::compile(pending) };
        ops.extend(compiled.ops().iter().cloned().map(NoisyOp::Unitary));
        *pending = Circuit::new(n);
    };
    for inst in circuit.instructions() {
        match inst.gate {
            GateKind::Measure => {
                flush(&mut pending, &mut ops);
                ops.push(NoisyOp::Measure { qubit: inst.qubits[0] });
            }
            GateKind::Reset => {
                flush(&mut pending, &mut ops);
                ops.push(NoisyOp::Reset { qubit: inst.qubits[0] });
            }
            // Barriers stay inside the unitary run as fusion barriers and
            // never attract noise (they are not gates).
            GateKind::Barrier => {
                pending.push(inst.clone());
            }
            _ => {
                pending.push(inst.clone());
                if active {
                    flush(&mut pending, &mut ops);
                    for &q in &inst.qubits {
                        if noise.depolarizing > 0.0 {
                            ops.push(NoisyOp::Depolarize { qubit: q, p: noise.depolarizing });
                        }
                        if noise.dephasing > 0.0 {
                            ops.push(NoisyOp::Dephase { qubit: q, p: noise.dephasing });
                        }
                        if noise.amplitude_damping > 0.0 {
                            ops.push(NoisyOp::AmplitudeDamp { qubit: q, gamma: noise.amplitude_damping });
                        }
                    }
                }
            }
        }
    }
    flush(&mut pending, &mut ops);
    // State-independent channel decisions (depolarize/dephase draw against
    // a fixed probability; damping's jump probability reads the live
    // state) can all be drawn before the replay starts, so clean shots can
    // use a fully fused plan of the whole circuit.
    let pre_drawable = active
        && ops.iter().any(|op| matches!(op, NoisyOp::Depolarize { .. } | NoisyOp::Dephase { .. }))
        && !ops.iter().any(|op| matches!(op, NoisyOp::AmplitudeDamp { .. }));
    let fused = pre_drawable.then(|| {
        if use_cache {
            compile_cached(circuit)
        } else {
            CompiledCircuit::compile(circuit)
        }
    });
    NoisyCompiled { num_qubits: n, ops, source_len: circuit.len(), fused }
}

/// Replay one stochastic trajectory of `plan` against `state`, drawing
/// every Kraus branch, measurement and readout flip from `rng` in the
/// fixed protocol documented in the [module docs](self). Returns the
/// shot's measurement record (readout flips already applied).
pub fn run_trajectory_once(
    plan: &NoisyCompiled,
    readout: f64,
    state: &mut StateVector,
    rng: &mut impl Rng,
) -> ShotRecord {
    assert!(
        plan.num_qubits <= StateVector::num_qubits(state),
        "noisy plan needs {} qubits but the state has {}",
        plan.num_qubits,
        StateVector::num_qubits(state)
    );
    if let Some(fused) = &plan.fused {
        // All channel decisions are state-independent: draw them up front
        // (one entry per channel op, in op order, exactly the draws the
        // interleaved replay would make).
        let mut fired = Vec::new();
        let mut clean = true;
        for op in &plan.ops {
            match op {
                NoisyOp::Depolarize { p, .. } => {
                    let pauli = if rng.gen::<f64>() < *p { 1 + rng.gen_range(0..3) as u8 } else { 0 };
                    clean &= pauli == 0;
                    fired.push(pauli);
                }
                NoisyOp::Dephase { p, .. } => {
                    let pauli = if rng.gen::<f64>() < *p { 3 } else { 0 };
                    clean &= pauli == 0;
                    fired.push(pauli);
                }
                _ => {}
            }
        }
        if clean {
            // Nothing fired: this shot is an ideal shot — replay the fused
            // plan and apply readout flips to the recorded bits.
            let mut record = fused.run_once(state, rng);
            if readout > 0.0 {
                for (_, bit) in &mut record.outcomes {
                    if rng.gen::<f64>() < readout {
                        *bit ^= 1;
                    }
                }
            }
            return record;
        }
        return replay_interleaved(plan, readout, state, rng, Some(&fired));
    }
    replay_interleaved(plan, readout, state, rng, None)
}

/// Apply the Pauli a channel drew: 0 = none, 1 = X, 2 = Y, 3 = Z.
fn apply_drawn_pauli(state: &mut StateVector, qubit: usize, which: u8) {
    match which {
        0 => {}
        1 => state.apply_antidiag(qubit, Complex64::ONE, Complex64::ONE, 0),
        2 => state.apply_antidiag(qubit, Complex64::new(0.0, -1.0), Complex64::new(0.0, 1.0), 0),
        _ => state.apply_diag(qubit, Complex64::ONE, Complex64::from_real(-1.0), 0),
    }
}

/// The interleaved trajectory replay. `predrawn` carries the channel
/// decisions when they were drawn up front (state-independent models);
/// `None` draws each channel inline at its op, which is required for
/// amplitude damping (its jump probability reads the live state).
fn replay_interleaved(
    plan: &NoisyCompiled,
    readout: f64,
    state: &mut StateVector,
    rng: &mut impl Rng,
    predrawn: Option<&[u8]>,
) -> ShotRecord {
    use crate::apply::ApplyState;
    let mut record = ShotRecord::default();
    let mut next_decision = 0usize;
    for op in &plan.ops {
        match op {
            NoisyOp::Unitary(kernel) => state.apply_kernel_op(kernel),
            NoisyOp::Depolarize { qubit, p } => {
                let pauli = match predrawn {
                    Some(decisions) => {
                        next_decision += 1;
                        decisions[next_decision - 1]
                    }
                    None => {
                        if rng.gen::<f64>() < *p {
                            1 + rng.gen_range(0..3) as u8
                        } else {
                            0
                        }
                    }
                };
                apply_drawn_pauli(state, *qubit, pauli);
            }
            NoisyOp::Dephase { qubit, p } => {
                let pauli = match predrawn {
                    Some(decisions) => {
                        next_decision += 1;
                        decisions[next_decision - 1]
                    }
                    None => {
                        if rng.gen::<f64>() < *p {
                            3
                        } else {
                            0
                        }
                    }
                };
                apply_drawn_pauli(state, *qubit, pauli);
            }
            NoisyOp::AmplitudeDamp { qubit, gamma } => {
                // Jump/no-jump unraveling: K1 = √γ·|0⟩⟨1| fires with
                // probability γ·P(1); otherwise K0 = diag(1, √(1−γ))
                // applies, renormalized.
                let p1 = state.prob_one(*qubit);
                let p_jump = gamma * p1;
                if rng.gen::<f64>() < p_jump {
                    state.collapse(*qubit, 1, p1);
                    state.apply_antidiag(*qubit, Complex64::ONE, Complex64::ONE, 0);
                } else {
                    let norm = (1.0 - p_jump).sqrt();
                    state.apply_diag(
                        *qubit,
                        Complex64::from_real(1.0 / norm),
                        Complex64::from_real((1.0 - gamma).sqrt() / norm),
                        0,
                    );
                }
            }
            NoisyOp::Measure { qubit } => {
                let mut bit = state.measure(*qubit, rng);
                if readout > 0.0 && rng.gen::<f64>() < readout {
                    bit ^= 1;
                }
                record.outcomes.push((*qubit, bit));
            }
            NoisyOp::Reset { qubit } => state.reset(*qubit, rng),
        }
    }
    record
}

/// Convolve an exact outcome distribution with an independent per-bit
/// readout (bit-flip) error of probability `p` — the classical
/// post-processing equivalent of flipping each recorded bit with
/// probability `p`, used by the density execution mode.
pub fn apply_readout_error(
    dist: &std::collections::BTreeMap<String, f64>,
    p: f64,
) -> std::collections::BTreeMap<String, f64> {
    if p <= 0.0 {
        return dist.clone();
    }
    let mut out: std::collections::BTreeMap<String, f64> = Default::default();
    for (bits, &prob) in dist {
        let k = bits.len();
        // Enumerate every flip pattern; distributions here are over a
        // handful of measured qubits (k ≤ 12 by the density size cap).
        for pattern in 0..(1usize << k) {
            let flips = pattern.count_ones() as i32;
            let weight = p.powi(flips) * (1.0 - p).powi(k as i32 - flips);
            if weight <= 0.0 {
                continue;
            }
            let flipped: String = bits
                .bytes()
                .enumerate()
                .map(|(i, b)| if pattern >> i & 1 == 1 { (b ^ 1) as char } else { b as char })
                .collect();
            *out.entry(flipped).or_insert(0.0) += prob * weight;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcor_circuit::library;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_lowering_fuses_across_gates() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).s(0).cx(0, 1).measure_all();
        let plan = compile_noisy(&c, &NoiseModel::default(), false);
        // The single-qubit run fuses: fewer unitary ops than gates.
        let unitaries = plan.ops().iter().filter(|op| matches!(op, NoisyOp::Unitary(_))).count();
        assert!(unitaries < 4, "noiseless lowering must fuse the unitary prefix, got {unitaries}");
        let measures = plan.ops().iter().filter(|op| matches!(op, NoisyOp::Measure { .. })).count();
        assert_eq!(measures, 2);
    }

    #[test]
    fn active_noise_interleaves_channel_ops_in_canonical_order() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let noise = NoiseModel { depolarizing: 0.1, dephasing: 0.2, amplitude_damping: 0.3 };
        let plan = compile_noisy(&c, &noise, false);
        // h(0): 1 qubit → depol, dephase, damp; cx(0,1): 2 qubits → 6 ops.
        let channels: Vec<&NoisyOp> =
            plan.ops().iter().filter(|op| !matches!(op, NoisyOp::Unitary(_))).collect();
        assert_eq!(channels.len(), 9, "{channels:?}");
        assert!(matches!(channels[0], NoisyOp::Depolarize { qubit: 0, .. }));
        assert!(matches!(channels[1], NoisyOp::Dephase { qubit: 0, .. }));
        assert!(matches!(channels[2], NoisyOp::AmplitudeDamp { qubit: 0, .. }));
    }

    #[test]
    fn zero_strength_channels_are_omitted() {
        let mut c = Circuit::new(1);
        c.h(0);
        let noise = NoiseModel { depolarizing: 0.05, ..Default::default() };
        let plan = compile_noisy(&c, &noise, false);
        assert!(plan.ops().iter().all(|op| !matches!(op, NoisyOp::Dephase { .. })));
        assert!(plan.ops().iter().all(|op| !matches!(op, NoisyOp::AmplitudeDamp { .. })));
        assert_eq!(plan.ops().iter().filter(|op| matches!(op, NoisyOp::Depolarize { .. })).count(), 1);
    }

    #[test]
    fn noiseless_trajectory_matches_ideal_replay() {
        let circuit = library::bell_kernel();
        let plan = compile_noisy(&circuit, &NoiseModel::default(), false);
        for seed in 0..8 {
            let mut state = StateVector::new(2);
            let mut rng = StdRng::seed_from_u64(seed);
            let record = run_trajectory_once(&plan, 0.0, &mut state, &mut rng);
            let bits = record.bitstring();
            assert!(bits == "00" || bits == "11", "Bell shot must be correlated, got {bits}");
        }
    }

    #[test]
    fn readout_convolution_preserves_total_mass() {
        let mut dist: std::collections::BTreeMap<String, f64> = Default::default();
        dist.insert("00".into(), 0.5);
        dist.insert("11".into(), 0.5);
        let noisy = apply_readout_error(&dist, 0.25);
        let total: f64 = noisy.values().sum();
        assert!((total - 1.0).abs() < 1e-12);
        // P(01) = 0.5·(0.75·0.25) + 0.5·(0.25·0.75) = 0.1875
        assert!((noisy["01"] - 0.1875).abs() < 1e-12, "{noisy:?}");
        assert!((apply_readout_error(&dist, 0.0)["00"] - 0.5).abs() < 1e-15);
    }

    #[test]
    fn clean_fast_path_gates_on_state_independence() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let dephase = NoiseModel { dephasing: 0.01, ..Default::default() };
        assert!(compile_noisy(&c, &dephase, false).has_clean_fast_path());
        let depol = NoiseModel { depolarizing: 0.01, ..Default::default() };
        assert!(compile_noisy(&c, &depol, false).has_clean_fast_path());
        // Damping draws against the live state — decisions cannot move
        // ahead of the replay, so every shot takes the interleaved path.
        let damp = NoiseModel { amplitude_damping: 0.01, ..Default::default() };
        assert!(!compile_noisy(&c, &damp, false).has_clean_fast_path());
        // A noiseless plan is already fully fused; no separate fast path.
        assert!(!compile_noisy(&c, &NoiseModel::default(), false).has_clean_fast_path());
    }

    #[test]
    fn noise_mode_tokens_parse() {
        assert_eq!(parse_noise_mode_token("trajectory"), Some(NoiseMode::Trajectory));
        assert_eq!(parse_noise_mode_token("Density"), Some(NoiseMode::Density));
        assert_eq!(parse_noise_mode_token(" interpreted "), Some(NoiseMode::Interpreted));
        assert_eq!(parse_noise_mode_token("exact"), None);
        for mode in [NoiseMode::Trajectory, NoiseMode::Density, NoiseMode::Interpreted] {
            assert_eq!(parse_noise_mode_token(&mode.to_string()), Some(mode));
        }
    }
}
