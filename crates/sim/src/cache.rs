//! Process-wide compile cache keyed by structural circuit hash.
//!
//! An angle sweep re-invokes the same circuit *structure* with different
//! bound parameters. Cold compilation re-runs the whole fusion pipeline
//! per invocation even though every fusion decision is angle-independent
//! (parameterized gates hash and compare by parameter *slot*, not bound
//! value). This cache stores one [`CompiledTemplate`] per structure —
//! keyed by [`qcor_circuit::wire::structural_hash`], verified against the
//! stored skeleton with [`qcor_circuit::wire::structurally_equal`] so a
//! hash collision can never replay the wrong plan — and every lookup
//! (hit *or* miss) finishes with [`CompiledTemplate::rebind`], so results
//! never depend on cache state.
//!
//! Knobs:
//! * `QCOR_COMPILE_CACHE` — `1/true/on` (default) or `0/false/off`;
//!   [`crate::RunConfig::compile_cache`] overrides per run.
//! * `QCOR_COMPILE_CACHE_CAPACITY` — max cached templates (default 64,
//!   clamped to ≥ 1); least-recently-used entries evict beyond it.
//!
//! Hit/miss counters live in [`crate::stats`] as process-global atomics so
//! compiles issued from pool worker threads stay observable.

use crate::compile::{CompiledCircuit, CompiledTemplate};
use crate::stats::{record_cache_hit, record_cache_miss};
use qcor_circuit::wire::{structural_hash, structurally_equal};
use qcor_circuit::Circuit;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Default number of cached templates when `QCOR_COMPILE_CACHE_CAPACITY`
/// is unset: generous for sweep workloads (one structure each) while
/// bounding memory for adversarial many-structure callers.
const DEFAULT_CAPACITY: usize = 64;

struct Entry {
    /// The circuit whose structure this template was built from; hits must
    /// verify structural equality against it (hash alone is not identity).
    skeleton: Circuit,
    template: Arc<CompiledTemplate>,
    last_used: u64,
}

struct CacheInner {
    map: HashMap<u64, Entry>,
    capacity: usize,
    /// Monotonic lookup counter backing LRU eviction.
    tick: u64,
}

static CACHE: OnceLock<Mutex<CacheInner>> = OnceLock::new();

fn cache() -> &'static Mutex<CacheInner> {
    CACHE.get_or_init(|| Mutex::new(CacheInner { map: HashMap::new(), capacity: capacity_env(), tick: 0 }))
}

fn capacity_env() -> usize {
    match std::env::var("QCOR_COMPILE_CACHE_CAPACITY") {
        Err(_) => DEFAULT_CAPACITY,
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => n.max(1),
            Err(_) => panic!("QCOR_COMPILE_CACHE_CAPACITY must be a positive integer, got {v:?}"),
        },
    }
}

/// Process-default for the compile-cache knob, read once from
/// `QCOR_COMPILE_CACHE`. Unset means enabled; a bad value panics loudly
/// (mirroring `QCOR_GATE_FUSION`) rather than silently changing the
/// compile path under a typo.
pub fn compile_cache_env_default() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("QCOR_COMPILE_CACHE") {
        Err(_) => true,
        Ok(v) => parse_cache_token(&v)
            .unwrap_or_else(|| panic!("QCOR_COMPILE_CACHE must be one of 1/0/true/false/on/off, got {v:?}")),
    })
}

/// Shared vocabulary for the compile-cache knob: `""`/`1`/`true`/`on`
/// enable, `0`/`false`/`off` disable, anything else is `None`. Used by the
/// env default, the backend string param and `InitOptions`.
pub fn parse_cache_token(value: &str) -> Option<bool> {
    match value.trim().to_ascii_lowercase().as_str() {
        "" | "1" | "true" | "on" => Some(true),
        "0" | "false" | "off" => Some(false),
        _ => None,
    }
}

/// Fetch (or build) the template for `circuit`'s structure. The returned
/// template is shared: concurrent callers on the same structure clone one
/// `Arc`. Template construction runs outside the cache lock, so a slow
/// compile never blocks unrelated lookups; two racing first-compiles of
/// the same structure both succeed and the later insert wins.
fn cached_template(circuit: &Circuit) -> Arc<CompiledTemplate> {
    let hash = structural_hash(circuit);
    {
        let mut inner = cache().lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(&hash) {
            if structurally_equal(&entry.skeleton, circuit) {
                entry.last_used = tick;
                let template = entry.template.clone();
                drop(inner);
                record_cache_hit();
                return template;
            }
            // Hash collision with a different structure: fall through and
            // let the rebuild below replace the entry (correct either way —
            // the equality check above is what guards reuse).
        }
    }
    record_cache_miss();
    let template = Arc::new(CompiledTemplate::compile(circuit));
    let mut inner = cache().lock().unwrap();
    inner.tick += 1;
    let tick = inner.tick;
    if inner.map.len() >= inner.capacity && !inner.map.contains_key(&hash) {
        if let Some((&lru, _)) = inner.map.iter().min_by_key(|(_, e)| e.last_used) {
            inner.map.remove(&lru);
        }
    }
    inner.map.insert(hash, Entry { skeleton: circuit.clone(), template: template.clone(), last_used: tick });
    template
}

/// Compile through the cache: reuse (or build) the structural template,
/// then bind `circuit`'s angles into an executable plan. Equivalent to
/// [`CompiledCircuit::compile`] up to float association order (within the
/// crate's ~1e-12 fused-vs-interpreted contract); measurement records and
/// seeded counts are unaffected.
pub fn compile_cached(circuit: &Circuit) -> CompiledCircuit {
    cached_template(circuit).rebind(&circuit.flat_params())
}

/// Number of templates currently cached (for tests and diagnostics).
pub fn compile_cache_len() -> usize {
    cache().lock().unwrap().map.len()
}

/// Drop every cached template (the hit/miss counters are separate — see
/// [`crate::stats::reset_compile_cache_stats`]).
pub fn clear_compile_cache() {
    cache().lock().unwrap().map.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateVector;
    use crate::stats::{compile_cache_hits, compile_cache_misses};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sweep_circuit(theta: f64) -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0).rx(1, theta).cx(0, 1).rz(2, -theta).cphase(1, 2, 0.5 * theta);
        c.measure(0).measure(1).measure(2);
        c
    }

    #[test]
    fn sweep_hits_after_first_compile_and_matches_cold() {
        clear_compile_cache();
        let hits0 = compile_cache_hits();
        let misses0 = compile_cache_misses();
        for i in 0..6 {
            let c = sweep_circuit(0.1 + i as f64 * 0.7);
            let cached = compile_cached(&c);
            let cold = CompiledCircuit::compile(&c);
            let mut s1 = StateVector::new(3);
            let mut s2 = StateVector::new(3);
            let mut r1 = StdRng::seed_from_u64(23);
            let mut r2 = StdRng::seed_from_u64(23);
            assert_eq!(
                cached.run_once(&mut s1, &mut r1),
                cold.run_once(&mut s2, &mut r2),
                "cached and cold replays must record identically (i = {i})"
            );
        }
        // Other tests share the process-global counters, so assert on
        // deltas: ≥ 5 hits (sweeps 2..6) and ≥ 1 miss (sweep 1) happened.
        assert!(compile_cache_hits() - hits0 >= 5, "sweep re-invocations must hit");
        assert!(compile_cache_misses() - misses0 >= 1, "first compile must miss");
    }

    #[test]
    fn structural_change_misses() {
        clear_compile_cache();
        let misses0 = compile_cache_misses();
        let mut a = Circuit::new(2);
        a.h(0).rx(1, 0.4);
        let mut b = Circuit::new(2);
        b.h(0).ry(1, 0.4); // different gate kind → different structure
        compile_cached(&a);
        compile_cached(&b);
        assert!(compile_cache_misses() - misses0 >= 2, "distinct structures must both miss");
        assert!(compile_cache_len() >= 2);
    }

    #[test]
    fn eviction_respects_capacity_bound() {
        clear_compile_cache();
        // The configured capacity is process-wide; whatever it is, inserting
        // `capacity + 8` distinct structures must not exceed it.
        let capacity = cache().lock().unwrap().capacity;
        for n in 0..capacity + 8 {
            let mut c = Circuit::new(4);
            for _ in 0..n + 1 {
                c.h(0);
            }
            compile_cached(&c);
        }
        assert!(compile_cache_len() <= capacity, "cache must not exceed its capacity");
    }

    #[test]
    fn cache_token_vocabulary() {
        assert_eq!(parse_cache_token("1"), Some(true));
        assert_eq!(parse_cache_token("on"), Some(true));
        assert_eq!(parse_cache_token("TRUE"), Some(true));
        assert_eq!(parse_cache_token(""), Some(true));
        assert_eq!(parse_cache_token("0"), Some(false));
        assert_eq!(parse_cache_token("off"), Some(false));
        assert_eq!(parse_cache_token("maybe"), None);
    }
}
