//! Process-level shot sharding: partition one run's chunk schedule across
//! OS processes and merge the counts byte-identically.
//!
//! The batched shot scheduler ([`crate::executor`]) already partitions a
//! run into chunks whose RNG streams derive from
//! [`crate::executor::derive_stream_seed`]`(seed, chunk_index)`. This
//! module extends that
//! partition one level up: shard `s` of `p` owns exactly the chunks with
//! `chunk_index % p == s` of the **same** [`ShotPlan`] — the plan is a
//! pure function of `(circuit, config)`, never of the process count — so
//! every shard draws the very streams a single-process run would have
//! drawn for those chunks, and summing the per-shard counts reproduces the
//! single-process [`run_shots`] counts byte-for-byte. Shard `s`'s first
//! chunk is chunk `s`, whose stream is `derive_stream_seed(seed, s)`:
//! shards derive from `(seed, shard)` exactly like chunks derive from
//! `(seed, chunk)`.
//!
//! Two drivers share that contract:
//!
//! * [`run_sharded`] — in-process reference driver: runs every shard's
//!   owned chunks on the calling process, one shard after another. This is
//!   what the qpp backend's `shot-procs` param and the property tests use.
//! * [`run_sharded_spawn`] — the real driver: re-executes the **current
//!   executable** once per shard (`std::env::current_exe()`), handing each
//!   child its shard assignment and the run parameters through the
//!   `QCOR_SHARD_*` environment protocol and the circuit through a
//!   temporary file in [`qcor_circuit::wire`] format. Children write their
//!   merged counts as `count bitstring` text lines; the parent sums them.
//!
//! **Spawn-self contract**: a binary that calls [`run_sharded_spawn`]
//! (directly or via [`run_shots_sharded_env`]) MUST call
//! [`maybe_shard_worker`] first thing in `main` and return when it yields
//! `true` — that is the hook through which the re-executed process becomes
//! a shard worker instead of re-running `main`. Never call the spawn
//! driver from a `#[test]`: the libtest harness would re-run the whole
//! test binary per shard.
//!
//! **What a shard worker inherits**: knob defaults travel through the
//! environment (children inherit `QCOR_NUM_THREADS`, `QCOR_GATE_FUSION`,
//! `QCOR_PRECISION`, `QCOR_COMPILE_CACHE`, `QCOR_AMP_SHARDS`, …), and the
//! wire protocol forwards `shots`, `seed`, `chunk_shots` and the
//! granularity — the parts of [`RunConfig`] that shape the chunk
//! partition. Config-level *overrides* of the remaining knobs (a
//! `RunConfig` with `fusion: Some(..)` etc.) are **not** forwarded; set
//! the corresponding environment variable when spawning shards. f64
//! amplitudes and RNG draws are knob-invariant, so merged counts are
//! unaffected in the default precision either way.

use crate::executor::{run_shots, run_shots_owned, Counts, Granularity, RunConfig, ShotPlan};
use qcor_circuit::Circuit;
use qcor_pool::ThreadPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Environment variable selecting the process-shard count for
/// [`run_shots_sharded_env`] — the process-level analogue of
/// `QCOR_NUM_THREADS`. Unset or `1` means single-process.
pub const SHOT_PROCS_ENV: &str = "QCOR_SHOT_PROCS";

/// Environment variable through which [`run_sharded_spawn`] marks a child
/// process as shard worker `s/p`. Present in a process iff it was spawned
/// as a shard; [`maybe_shard_worker`] keys off it.
pub const SHARD_WORKER_ENV: &str = "QCOR_SHARD_WORKER";

// Worker wire protocol: circuit in, counts out, and the RunConfig fields
// that shape the chunk partition.
const SHARD_IN_ENV: &str = "QCOR_SHARD_IN";
const SHARD_OUT_ENV: &str = "QCOR_SHARD_OUT";
const SHARD_SHOTS_ENV: &str = "QCOR_SHARD_SHOTS";
const SHARD_SEED_ENV: &str = "QCOR_SHARD_SEED";
const SHARD_CHUNK_ENV: &str = "QCOR_SHARD_CHUNK";
const SHARD_GRAN_ENV: &str = "QCOR_SHARD_GRAN";

/// Parse one shot-procs token — the vocabulary shared by the
/// `QCOR_SHOT_PROCS` environment variable and the qpp backend's
/// `shot-procs` param. `off`/`false` mean single-process; otherwise a
/// positive process count. `None` = unrecognized.
pub fn parse_shot_procs_token(s: &str) -> Option<usize> {
    let t = s.trim().to_ascii_lowercase();
    match t.as_str() {
        "" | "off" | "false" => Some(1),
        _ => t.parse::<usize>().ok().filter(|&n| n >= 1),
    }
}

/// Resolve the process-wide shot-shard count from `QCOR_SHOT_PROCS`.
/// Unset means `1` (no process sharding); anything unrecognized panics
/// loudly. Read and parsed once per process, like the other knob
/// defaults.
pub fn shot_procs_env_default() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var(SHOT_PROCS_ENV) {
        Err(_) => 1,
        Ok(v) => parse_shot_procs_token(&v)
            .unwrap_or_else(|| panic!("invalid {SHOT_PROCS_ENV} value {v:?}: expected off/<process count>")),
    })
}

/// Run the chunks shard `shard` of `procs` owns, against the plan the
/// full run would use. `config.seed` must be pinned (`Some`) for the
/// shards' counts to merge deterministically — [`run_sharded`] and the
/// spawn driver pin it before fanning out.
pub fn run_shard(
    circuit: &Circuit,
    pool: Arc<ThreadPool>,
    config: &RunConfig,
    shard: usize,
    procs: usize,
) -> Counts {
    let plan = ShotPlan::for_circuit(circuit, config);
    run_shots_owned(circuit, pool, config, &plan, shard, procs)
}

/// In-process reference driver: execute every shard's owned chunks on the
/// calling process (one shard after another, all on `pool`) and merge the
/// counts. Byte-identical to single-process [`run_shots`] with the same
/// config, and to what [`run_sharded_spawn`] assembles from `procs` child
/// processes — this is the oracle the property tests compare against,
/// and what the qpp backend's `shot-procs` param runs (an accelerator
/// call should not silently fork the host).
pub fn run_sharded(circuit: &Circuit, pool: Arc<ThreadPool>, config: &RunConfig, procs: usize) -> Counts {
    assert!(procs >= 1, "process count must be at least 1");
    // Pin the seed once so every shard derives from the same base — the
    // same resolution a single run performs.
    let mut config = config.clone();
    if config.seed.is_none() {
        config.seed = Some(StdRng::from_entropy().gen());
    }
    let mut merged = Counts::new();
    for shard in 0..procs {
        for (bits, n) in run_shard(circuit, Arc::clone(&pool), &config, shard, procs) {
            *merged.entry(bits).or_insert(0) += n;
        }
    }
    merged
}

fn granularity_token(g: Granularity) -> &'static str {
    match g {
        Granularity::Auto => "auto",
        Granularity::Sequential => "seq",
    }
}

/// Serialize counts as `count bitstring` lines (the bitstring may be
/// empty for measurement-free circuits, hence count-first).
fn encode_counts(counts: &Counts) -> String {
    let mut out = String::new();
    for (bits, n) in counts {
        out.push_str(&format!("{n} {bits}\n"));
    }
    out
}

fn decode_counts(text: &str) -> Result<Counts, String> {
    let mut counts = Counts::new();
    for line in text.lines() {
        let (n, bits) = line.split_once(' ').ok_or_else(|| format!("malformed counts line {line:?}"))?;
        let n: usize = n.parse().map_err(|_| format!("malformed count in line {line:?}"))?;
        *counts.entry(bits.to_string()).or_insert(0) += n;
    }
    Ok(counts)
}

/// Process-level driver: spawn the current executable once per shard and
/// merge the children's counts. See the module docs for the spawn-self
/// contract — the calling binary must route re-executions through
/// [`maybe_shard_worker`] at the top of `main`.
///
/// Shard workers build their pool from the inherited `QCOR_NUM_THREADS`,
/// so `p` shards × `QCOR_NUM_THREADS` threads is the total footprint.
/// Returns an error if spawning fails or any shard exits unsuccessfully.
pub fn run_sharded_spawn(circuit: &Circuit, config: &RunConfig, procs: usize) -> std::io::Result<Counts> {
    use std::io::{Error, ErrorKind};
    assert!(procs >= 1, "process count must be at least 1");
    let mut config = config.clone();
    let seed = match config.seed {
        Some(s) => s,
        None => StdRng::from_entropy().gen(),
    };
    config.seed = Some(seed);

    let exe = std::env::current_exe()?;
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let in_path = dir.join(format!("qcor-shard-{pid}-{seed}-circuit.bin"));
    std::fs::write(&in_path, qcor_circuit::wire::encode(circuit))?;

    let mut children = Vec::with_capacity(procs);
    let mut spawn_err = None;
    for shard in 0..procs {
        let out_path = dir.join(format!("qcor-shard-{pid}-{seed}-{shard}.counts"));
        let mut cmd = std::process::Command::new(&exe);
        cmd.env(SHARD_WORKER_ENV, format!("{shard}/{procs}"))
            .env(SHARD_IN_ENV, &in_path)
            .env(SHARD_OUT_ENV, &out_path)
            .env(SHARD_SHOTS_ENV, config.shots.to_string())
            .env(SHARD_SEED_ENV, seed.to_string())
            .env(SHARD_GRAN_ENV, granularity_token(config.granularity));
        match config.chunk_shots {
            Some(k) => {
                cmd.env(SHARD_CHUNK_ENV, k.to_string());
            }
            None => {
                cmd.env_remove(SHARD_CHUNK_ENV);
            }
        }
        match cmd.spawn() {
            Ok(child) => children.push((shard, child, out_path)),
            Err(e) => {
                spawn_err = Some(e);
                break;
            }
        }
    }

    let mut merged = Counts::new();
    let mut shard_err = None;
    for (shard, mut child, out_path) in children {
        let status = child.wait()?;
        if !status.success() {
            shard_err.get_or_insert_with(|| {
                Error::other(format!("shard worker {shard}/{procs} failed: {status}"))
            });
            continue;
        }
        let text = std::fs::read_to_string(&out_path)?;
        let _ = std::fs::remove_file(&out_path);
        match decode_counts(&text) {
            Ok(counts) => {
                for (bits, n) in counts {
                    *merged.entry(bits).or_insert(0) += n;
                }
            }
            Err(e) => {
                shard_err.get_or_insert_with(|| Error::new(ErrorKind::InvalidData, e));
            }
        }
    }
    let _ = std::fs::remove_file(&in_path);
    if let Some(e) = spawn_err.or(shard_err) {
        return Err(e);
    }
    Ok(merged)
}

/// Shard-worker hook: when this process was spawned by
/// [`run_sharded_spawn`] (the [`SHARD_WORKER_ENV`] marker is present),
/// run the owned chunks, write the counts file, and return `true` — the
/// caller must then return from `main` immediately. Returns `false` in a
/// normal process. Panics (→ non-zero exit, surfaced by the parent) on a
/// malformed protocol environment.
pub fn maybe_shard_worker() -> bool {
    let Ok(spec) = std::env::var(SHARD_WORKER_ENV) else {
        return false;
    };
    let (shard, procs) = spec
        .split_once('/')
        .and_then(|(s, p)| Some((s.parse::<usize>().ok()?, p.parse::<usize>().ok()?)))
        .filter(|&(s, p)| p >= 1 && s < p)
        .unwrap_or_else(|| panic!("malformed {SHARD_WORKER_ENV} value {spec:?}: expected shard/procs"));
    let read_env =
        |key: &str| std::env::var(key).unwrap_or_else(|_| panic!("shard worker {spec}: missing {key}"));
    let in_path = read_env(SHARD_IN_ENV);
    let out_path = read_env(SHARD_OUT_ENV);
    let shots: usize = read_env(SHARD_SHOTS_ENV)
        .parse()
        .unwrap_or_else(|_| panic!("shard worker {spec}: malformed {SHARD_SHOTS_ENV}"));
    let seed: u64 = read_env(SHARD_SEED_ENV)
        .parse()
        .unwrap_or_else(|_| panic!("shard worker {spec}: malformed {SHARD_SEED_ENV}"));
    let granularity = match read_env(SHARD_GRAN_ENV).as_str() {
        "auto" => Granularity::Auto,
        "seq" => Granularity::Sequential,
        other => panic!("shard worker {spec}: malformed {SHARD_GRAN_ENV} value {other:?}"),
    };
    let chunk_shots = std::env::var(SHARD_CHUNK_ENV).ok().map(|v| {
        v.parse::<usize>().unwrap_or_else(|_| panic!("shard worker {spec}: malformed {SHARD_CHUNK_ENV}"))
    });
    let bytes = std::fs::read(&in_path)
        .unwrap_or_else(|e| panic!("shard worker {spec}: cannot read circuit {in_path:?}: {e}"));
    let circuit = qcor_circuit::wire::decode(&bytes)
        .unwrap_or_else(|e| panic!("shard worker {spec}: cannot decode circuit: {e:?}"));
    let config = RunConfig { shots, seed: Some(seed), chunk_shots, granularity, ..Default::default() };
    let pool = Arc::new(ThreadPool::new(qcor_pool::num_threads_from_env()));
    let counts = run_shard(&circuit, pool, &config, shard, procs);
    std::fs::write(&out_path, encode_counts(&counts))
        .unwrap_or_else(|e| panic!("shard worker {spec}: cannot write counts {out_path:?}: {e}"));
    true
}

/// [`run_shots`] with the process-shard count taken from
/// `QCOR_SHOT_PROCS`: `1` (the default) runs in-process as usual, larger
/// counts fan out through [`run_sharded_spawn`] — so a host binary that
/// honors the spawn-self contract gains process sharding from the
/// environment alone. Panics if a shard fails (the env knob asked for a
/// result this process cannot produce).
pub fn run_shots_sharded_env(circuit: &Circuit, pool: Arc<ThreadPool>, config: &RunConfig) -> Counts {
    let procs = shot_procs_env_default();
    if procs <= 1 {
        return run_shots(circuit, pool, config);
    }
    run_sharded_spawn(circuit, config, procs)
        .unwrap_or_else(|e| panic!("{SHOT_PROCS_ENV}={procs}: sharded run failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::derive_stream_seed;
    use qcor_circuit::library;

    fn pool() -> Arc<ThreadPool> {
        Arc::new(ThreadPool::new(1))
    }

    #[test]
    fn shot_procs_tokens_parse_like_the_env_var() {
        for (t, expect) in [("", 1), ("off", 1), ("FALSE", 1), ("1", 1), ("2", 2), (" 8 ", 8), ("12", 12)] {
            assert_eq!(parse_shot_procs_token(t), Some(expect), "{t:?}");
        }
        for t in ["0", "-1", "two", "1.5", "on"] {
            assert_eq!(parse_shot_procs_token(t), None, "{t:?}");
        }
    }

    #[test]
    fn sharded_counts_match_single_process_run() {
        let circuit = library::ghz_kernel(3);
        let config = RunConfig { shots: 300, seed: Some(17), chunk_shots: Some(16), ..Default::default() };
        let single = run_shots(&circuit, pool(), &config);
        for procs in [1, 2, 3, 5, 64] {
            let merged = run_sharded(&circuit, pool(), &config, procs);
            assert_eq!(merged, single, "procs={procs}");
        }
    }

    #[test]
    fn sharded_counts_match_on_inner_parallel_plans() {
        // A 14-qubit circuit plans as one inner-parallel work item; the
        // owner filter forces the chunk path, which must still reproduce
        // the inner-parallel counts (chunk 0 keeps the base seed).
        let mut circuit = qcor_circuit::Circuit::new(14);
        for q in 0..14 {
            circuit.h(q);
        }
        circuit.measure_all();
        let config = RunConfig { shots: 6, seed: Some(5), ..Default::default() };
        assert!(ShotPlan::for_circuit(&circuit, &config).inner_parallel());
        let single = run_shots(&circuit, pool(), &config);
        let merged = run_sharded(&circuit, pool(), &config, 3);
        assert_eq!(merged, single);
    }

    #[test]
    fn shard_zero_of_one_is_the_whole_run() {
        let circuit = library::bell_kernel();
        let config = RunConfig { shots: 64, seed: Some(9), ..Default::default() };
        let whole = run_shard(&circuit, pool(), &config, 0, 1);
        assert_eq!(whole, run_shots(&circuit, pool(), &config));
    }

    #[test]
    fn shards_partition_the_chunk_schedule() {
        // Each shard's count total must equal the shots of the chunks it
        // owns — chunk c belongs to shard c % procs.
        let circuit = library::bell_kernel();
        let config = RunConfig { shots: 100, seed: Some(3), chunk_shots: Some(7), ..Default::default() };
        let plan = ShotPlan::for_circuit(&circuit, &config);
        let procs = 3;
        for shard in 0..procs {
            let owned_shots: usize = plan
                .chunks()
                .enumerate()
                .filter(|(c, _)| c % procs == shard)
                .map(|(_, span)| span.len())
                .sum();
            let counts = run_shard(&circuit, pool(), &config, shard, procs);
            assert_eq!(counts.values().sum::<usize>(), owned_shots, "shard={shard}");
        }
    }

    #[test]
    fn first_owned_chunk_derives_from_seed_and_shard() {
        // The (seed, shard) contract: shard s's first chunk is chunk s,
        // so its RNG stream is derive_stream_seed(seed, s) — verified by
        // reproducing the shard's leading chunk as a standalone run.
        let circuit = library::ghz_kernel(4);
        let base = 23u64;
        let chunk = 8usize;
        let procs = 4;
        let config = RunConfig {
            shots: chunk * procs, // one chunk per shard
            seed: Some(base),
            chunk_shots: Some(chunk),
            ..Default::default()
        };
        for shard in 0..procs {
            let got = run_shard(&circuit, pool(), &config, shard, procs);
            let replay_cfg = RunConfig {
                shots: chunk,
                seed: Some(derive_stream_seed(base, shard)),
                chunk_shots: Some(chunk),
                ..Default::default()
            };
            let expect = run_shots(&circuit, pool(), &replay_cfg);
            assert_eq!(got, expect, "shard={shard}");
        }
    }

    #[test]
    fn counts_wire_format_round_trips() {
        let mut counts = Counts::new();
        counts.insert("0110".to_string(), 12);
        counts.insert(String::new(), 3); // measurement-free circuit
        counts.insert("1".to_string(), 1);
        assert_eq!(decode_counts(&encode_counts(&counts)).unwrap(), counts);
        assert!(decode_counts("12\n").is_err());
        assert!(decode_counts("x 01\n").is_err());
        assert_eq!(decode_counts("").unwrap(), Counts::new());
    }

    #[test]
    fn worker_hook_is_inert_without_the_marker() {
        assert!(!maybe_shard_worker());
    }
}
