//! Minimal double-precision complex arithmetic.
//!
//! Implemented in-tree (rather than pulling in `num-complex`) per the
//! reproduction's dependency policy; only the operations the simulator
//! needs are provided.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor.
pub const fn c64(re: f64, im: f64) -> Complex64 {
    Complex64 { re, im }
}

impl Complex64 {
    /// 0 + 0i.
    pub const ZERO: Complex64 = c64(0.0, 0.0);
    /// 1 + 0i.
    pub const ONE: Complex64 = c64(1.0, 0.0);
    /// 0 + 1i.
    pub const I: Complex64 = c64(0.0, 1.0);

    /// Construct from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        c64(re, im)
    }

    /// Construct a real number.
    pub const fn from_real(re: f64) -> Self {
        c64(re, 0.0)
    }

    /// e^{iθ} = cos θ + i sin θ.
    pub fn from_polar_unit(theta: f64) -> Self {
        c64(theta.cos(), theta.sin())
    }

    /// r·e^{iθ}.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        c64(r * theta.cos(), r * theta.sin())
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        c64(self.re, -self.im)
    }

    /// |z|².
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// |z|.
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument in (−π, π].
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Scale by a real factor.
    pub fn scale(self, s: f64) -> Self {
        c64(self.re * s, self.im * s)
    }

    /// True when both components are within `eps` of `other`'s.
    pub fn approx_eq(self, other: Complex64, eps: f64) -> bool {
        (self.re - other.re).abs() <= eps && (self.im - other.im).abs() <= eps
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        c64(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        c64(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        c64(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        let d = rhs.norm_sqr();
        c64((self.re * rhs.re + self.im * rhs.im) / d, (self.im * rhs.re - self.re * rhs.im) / d)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        c64(-self.re, -self.im)
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        c64(re, 0.0)
    }
}

impl std::fmt::Display for Complex64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

/// A complex number with `f32` components, for the single-precision
/// (`precision=f32`) backend mode. Only the operations the f32 replay path
/// needs are provided; circuits are always *compiled* in f64 and the fused
/// kernel matrices are narrowed once per plan, so this type never appears
/// in compile-time arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex32 {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

/// Shorthand constructor.
pub const fn c32(re: f32, im: f32) -> Complex32 {
    Complex32 { re, im }
}

impl Complex32 {
    /// 0 + 0i.
    pub const ZERO: Complex32 = c32(0.0, 0.0);
    /// 1 + 0i.
    pub const ONE: Complex32 = c32(1.0, 0.0);

    /// |z|², accumulated in f64 so probability sums keep double-precision
    /// accuracy even over single-precision amplitudes.
    pub fn norm_sqr_f64(self) -> f64 {
        let (re, im) = (self.re as f64, self.im as f64);
        re * re + im * im
    }

    /// Narrow a double-precision value component-wise.
    pub fn from_c64(z: Complex64) -> Self {
        c32(z.re as f32, z.im as f32)
    }

    /// Widen back to double precision (for comparisons and readout).
    pub fn to_c64(self) -> Complex64 {
        c64(self.re as f64, self.im as f64)
    }
}

impl Add for Complex32 {
    type Output = Complex32;
    #[inline]
    fn add(self, rhs: Complex32) -> Complex32 {
        c32(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Mul for Complex32 {
    type Output = Complex32;
    #[inline]
    fn mul(self, rhs: Complex32) -> Complex32 {
        c32(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl MulAssign for Complex32 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex32) {
        *self = *self * rhs;
    }
}

impl Mul<f32> for Complex32 {
    type Output = Complex32;
    #[inline]
    fn mul(self, rhs: f32) -> Complex32 {
        c32(self.re * rhs, self.im * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn arithmetic_identities() {
        let z = c64(3.0, -4.0);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert_eq!(z - z, Complex64::ZERO);
        assert_eq!(-z, c64(-3.0, 4.0));
    }

    #[test]
    fn multiplication_and_division() {
        let a = c64(1.0, 2.0);
        let b = c64(3.0, -1.0);
        let prod = a * b;
        assert_eq!(prod, c64(5.0, 5.0));
        let back = prod / b;
        assert!(back.approx_eq(a, 1e-12));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex64::I * Complex64::I, c64(-1.0, 0.0));
    }

    #[test]
    fn norms_and_conjugates() {
        let z = c64(3.0, 4.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.norm(), 5.0);
        assert_eq!(z.conj(), c64(3.0, -4.0));
        assert!((z * z.conj()).approx_eq(c64(25.0, 0.0), 1e-12));
    }

    #[test]
    fn polar_construction() {
        assert!(Complex64::from_polar_unit(0.0).approx_eq(Complex64::ONE, 1e-15));
        assert!(Complex64::from_polar_unit(FRAC_PI_2).approx_eq(Complex64::I, 1e-15));
        assert!(Complex64::from_polar_unit(PI).approx_eq(c64(-1.0, 0.0), 1e-15));
        let z = Complex64::from_polar(2.0, FRAC_PI_2);
        assert!(z.approx_eq(c64(0.0, 2.0), 1e-15));
    }

    #[test]
    fn arg_in_range() {
        assert!((c64(0.0, 1.0).arg() - FRAC_PI_2).abs() < 1e-15);
        assert!((c64(-1.0, 0.0).arg() - PI).abs() < 1e-15);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(c64(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(c64(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn complex32_narrowing_roundtrip() {
        let z = c64(0.25, -0.5); // exactly representable in f32
        let w = Complex32::from_c64(z);
        assert_eq!(w.to_c64(), z);
        assert_eq!(w.norm_sqr_f64(), z.norm_sqr());
        assert_eq!(c32(1.0, 2.0) * c32(3.0, -1.0), c32(5.0, 5.0));
        assert_eq!(c32(1.0, 2.0) + c32(3.0, -1.0), c32(4.0, 1.0));
    }
}
