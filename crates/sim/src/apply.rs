//! The state-apply abstraction: one compiled replay core for every state
//! representation.
//!
//! [`ApplyState`] is the set of primitive update kernels the compiled
//! executor dispatches to ([`KernelOp`]). [`crate::StateVector`]
//! implements it directly; [`crate::DensityMatrix`] implements it as the
//! superoperator view — each kernel runs once on the ket qubits and once,
//! conjugated and shifted, on the bra qubits of vec(ρ) — so the dense /
//! flip / diag / phase classification, the control-aware enumeration, and
//! the pool-parallel sweeps are all reused verbatim for mixed states.
//!
//! Only *unitary* ops go through the trait: measurement and reset are
//! representation-specific (a state vector samples and collapses, a
//! density matrix projects or branches), so [`ApplyState::apply_kernel_op`]
//! rejects [`KernelOp::Measure`] / [`KernelOp::Reset`] and callers route
//! them through their representation's own machinery.

use crate::compile::KernelOp;
use crate::complex::Complex64;
use crate::state::StateVector;

/// Primitive compiled-kernel application, implementable by any state
/// representation (pure state vector, vec-of-density-matrix, …).
pub trait ApplyState {
    /// Number of *logical* qubits kernel operands refer to.
    fn num_qubits(&self) -> usize;
    /// Dense 2×2 unitary on `target` under `ctrl_mask`.
    fn apply_single(&mut self, target: usize, m: [[Complex64; 2]; 2], ctrl_mask: usize);
    /// Dense 4×4 unitary on the pair `(t0, t1)`, `t0 < t1`, under `ctrl_mask`.
    fn apply_pair(&mut self, t0: usize, t1: usize, m: &[[Complex64; 4]; 4], ctrl_mask: usize);
    /// Anti-diagonal `[[0, m01], [m10, 0]]` on `target`.
    fn apply_antidiag(&mut self, target: usize, m01: Complex64, m10: Complex64, ctrl_mask: usize);
    /// `diag(d0, d1)` on `target`.
    fn apply_diag(&mut self, target: usize, d0: Complex64, d1: Complex64, ctrl_mask: usize);
    /// Multiply amplitudes with `set_mask` set and `clear_mask` clear by `z`.
    fn mul_where(&mut self, set_mask: usize, clear_mask: usize, z: Complex64);
    /// Multiply every amplitude by `z`.
    fn scale_all(&mut self, z: Complex64);
    /// (Controlled) swap of qubits `a` and `b`.
    fn apply_swap(&mut self, a: usize, b: usize, ctrl_mask: usize);

    /// Dispatch one **unitary** compiled kernel op.
    ///
    /// # Panics
    /// On [`KernelOp::Measure`] / [`KernelOp::Reset`] — those are
    /// representation-specific and must be handled by the caller.
    fn apply_kernel_op(&mut self, op: &KernelOp) {
        match op {
            KernelOp::Dense { target, ctrl_mask, m } => self.apply_single(*target, *m, *ctrl_mask),
            KernelOp::Dense2 { t0, t1, ctrl_mask, m } => self.apply_pair(*t0, *t1, m, *ctrl_mask),
            KernelOp::Flip { target, ctrl_mask, m01, m10 } => {
                self.apply_antidiag(*target, *m01, *m10, *ctrl_mask)
            }
            KernelOp::Diag { target, ctrl_mask, d0, d1 } => self.apply_diag(*target, *d0, *d1, *ctrl_mask),
            KernelOp::Phase { set_mask, clear_mask, phase } => self.mul_where(*set_mask, *clear_mask, *phase),
            KernelOp::Scale { factor } => self.scale_all(*factor),
            KernelOp::Swap { a, b, ctrl_mask } => self.apply_swap(*a, *b, *ctrl_mask),
            KernelOp::Measure { .. } | KernelOp::Reset { .. } => {
                panic!("apply_kernel_op only handles unitary ops; route {op:?} through the representation")
            }
        }
    }

    /// Replay a run of unitary kernel ops in order.
    fn apply_unitary_ops(&mut self, ops: &[KernelOp]) {
        for op in ops {
            self.apply_kernel_op(op);
        }
    }
}

impl ApplyState for StateVector {
    fn num_qubits(&self) -> usize {
        StateVector::num_qubits(self)
    }
    fn apply_single(&mut self, target: usize, m: [[Complex64; 2]; 2], ctrl_mask: usize) {
        StateVector::apply_single(self, target, m, ctrl_mask)
    }
    fn apply_pair(&mut self, t0: usize, t1: usize, m: &[[Complex64; 4]; 4], ctrl_mask: usize) {
        StateVector::apply_pair(self, t0, t1, m, ctrl_mask)
    }
    fn apply_antidiag(&mut self, target: usize, m01: Complex64, m10: Complex64, ctrl_mask: usize) {
        StateVector::apply_antidiag(self, target, m01, m10, ctrl_mask)
    }
    fn apply_diag(&mut self, target: usize, d0: Complex64, d1: Complex64, ctrl_mask: usize) {
        StateVector::apply_diag(self, target, d0, d1, ctrl_mask)
    }
    fn mul_where(&mut self, set_mask: usize, clear_mask: usize, z: Complex64) {
        StateVector::mul_where(self, set_mask, clear_mask, z)
    }
    fn scale_all(&mut self, z: Complex64) {
        StateVector::scale_all(self, z)
    }
    fn apply_swap(&mut self, a: usize, b: usize, ctrl_mask: usize) {
        StateVector::apply_swap(self, a, b, ctrl_mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::CompiledCircuit;
    use qcor_circuit::Circuit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn trait_replay_matches_run_once_on_state_vectors() {
        let mut c = Circuit::new(3);
        c.h(0).t(0).cx(0, 1).ry(2, 0.7).s(1).crz(1, 2, -0.4).cphase(0, 2, 1.1);
        let compiled = CompiledCircuit::compile(&c);

        let mut via_trait = StateVector::new(3);
        via_trait.apply_unitary_ops(compiled.ops());

        let mut via_run_once = StateVector::new(3);
        let mut rng = StdRng::seed_from_u64(0);
        compiled.run_once(&mut via_run_once, &mut rng);

        for (a, b) in via_trait.amplitudes().iter().zip(via_run_once.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12), "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "unitary")]
    fn measure_ops_are_rejected() {
        let mut state = StateVector::new(1);
        state.apply_kernel_op(&KernelOp::Measure { qubit: 0, loc: 0 });
    }
}
