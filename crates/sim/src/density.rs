//! Density-matrix simulation — exact mixed-state evolution, used by the
//! `qpp-density` backend for noise studies (the paper's future work calls
//! for "additional quantum simulation ... back ends").
//!
//! Representation: vec(ρ) as a [`StateVector`] over `2n` qubits — entry
//! ρ_{r,c} lives at vector index `r | (c << n)` (ket bits low, bra bits
//! high). Unitary evolution ρ → UρU† is then `U` applied to the ket
//! qubits and `conj(U)` applied to the bra qubits, which lets every
//! (pool-parallelized) state-vector kernel be reused verbatim. Quantum
//! channels are applied as explicit Kraus sums.

use crate::apply::ApplyState;
use crate::complex::Complex64;
use crate::gates::apply_instruction;
use crate::noise::{compile_noisy, NoisyCompiled, NoisyOp};
use crate::state::StateVector;
use qcor_circuit::{Circuit, GateKind, Instruction};
use qcor_pool::ThreadPool;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// An exact n-qubit density matrix (n ≤ 12).
pub struct DensityMatrix {
    n: usize,
    /// vec(ρ) over 2n qubits.
    vec_state: StateVector,
}

impl std::fmt::Debug for DensityMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DensityMatrix").field("num_qubits", &self.n).finish()
    }
}

impl DensityMatrix {
    /// |0...0⟩⟨0...0| on `n` qubits.
    pub fn new(n: usize) -> Self {
        Self::with_pool(n, ThreadPool::sequential())
    }

    /// |0...0⟩⟨0...0| with kernels work-shared over `pool`.
    pub fn with_pool(n: usize, pool: Arc<ThreadPool>) -> Self {
        assert!(n <= 12, "density matrix of {n} qubits will not fit in memory");
        DensityMatrix { n, vec_state: StateVector::with_pool(2 * n, pool) }
    }

    /// Build |ψ⟩⟨ψ| from a pure state.
    pub fn from_pure(state: &StateVector) -> Self {
        let n = state.num_qubits();
        assert!(n <= 12);
        let dim = 1usize << n;
        let mut amps = vec![Complex64::ZERO; dim * dim];
        for r in 0..dim {
            for c in 0..dim {
                amps[r | (c << n)] = state.amp(r) * state.amp(c).conj();
            }
        }
        // vec(ρ) of a pure state has unit 2-norm, so this passes the
        // normalization check in from_amplitudes.
        DensityMatrix { n, vec_state: StateVector::from_amplitudes(amps) }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Minimum vec(ρ) length before kernel sweeps are work-shared over the
    /// pool (see [`StateVector::set_par_threshold`]).
    pub fn set_par_threshold(&mut self, threshold: usize) {
        self.vec_state.set_par_threshold(threshold);
    }

    /// The pool this density matrix's sweeps work-share over.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        self.vec_state.pool()
    }

    /// A deep copy sharing this matrix's pool and dispatch configuration
    /// (used by the branching mid-circuit-measurement replay).
    fn clone_like(&self) -> Self {
        DensityMatrix {
            n: self.n,
            vec_state: self.vec_state.raw_with_amplitudes_like(self.vec_state.amplitudes().to_vec()),
        }
    }

    /// ρ_{r,c}.
    pub fn entry(&self, r: usize, c: usize) -> Complex64 {
        self.vec_state.amp(r | (c << self.n))
    }

    /// Tr ρ (1 for a valid state).
    pub fn trace(&self) -> Complex64 {
        let dim = 1usize << self.n;
        let mut acc = Complex64::ZERO;
        for r in 0..dim {
            acc += self.entry(r, r);
        }
        acc
    }

    /// Tr ρ² — 1 for pure states, < 1 for mixed states.
    pub fn purity(&self) -> f64 {
        // Tr ρ² = Σ_{r,c} ρ_{r,c} ρ_{c,r} = Σ |ρ_{r,c}|² for Hermitian ρ.
        self.vec_state.amplitudes().iter().map(|a| a.norm_sqr()).sum()
    }

    /// The diagonal as a probability distribution over basis states.
    pub fn diagonal_probabilities(&self) -> Vec<f64> {
        let dim = 1usize << self.n;
        (0..dim).map(|r| self.entry(r, r).re.max(0.0)).collect()
    }

    /// Apply a unitary instruction (measurements/resets are rejected —
    /// use [`DensityMatrix::measure_probabilities`] and channels instead).
    pub fn apply_unitary(&mut self, inst: &Instruction) {
        assert!(inst.gate.is_unitary(), "apply_unitary cannot process {}", inst.gate);
        if inst.gate == GateKind::Barrier {
            return;
        }
        let mut rng = StdRng::seed_from_u64(0); // unitaries never consult it

        // Ket side: the instruction as-is on the low qubits.
        apply_instruction(&mut self.vec_state, inst, &mut rng);
        // Bra side: the conjugated instruction on the high qubits.
        let shifted: Vec<usize> = inst.qubits.iter().map(|&q| q + self.n).collect();
        match inst.gate {
            // Real matrices: conj(U) = U.
            GateKind::H
            | GateKind::X
            | GateKind::Z
            | GateKind::Ry
            | GateKind::CX
            | GateKind::CZ
            | GateKind::Swap
            | GateKind::CCX
            | GateKind::CSwap => {
                let mirrored = Instruction::new(inst.gate, shifted, inst.params.clone());
                apply_instruction(&mut self.vec_state, &mirrored, &mut rng);
            }
            // Angle-parameterized phases/rotations: conj(U(θ)) = U(−θ).
            GateKind::Rx
            | GateKind::Rz
            | GateKind::Phase
            | GateKind::CPhase
            | GateKind::CRz
            | GateKind::CCPhase => {
                let mirrored = Instruction::new(inst.gate, shifted, vec![-inst.params[0]]);
                apply_instruction(&mut self.vec_state, &mirrored, &mut rng);
            }
            // Fixed phases: conj(S) = S†, conj(T) = T†.
            GateKind::S | GateKind::Sdg | GateKind::T | GateKind::Tdg => {
                let kind = match inst.gate {
                    GateKind::S => GateKind::Sdg,
                    GateKind::Sdg => GateKind::S,
                    GateKind::T => GateKind::Tdg,
                    _ => GateKind::T,
                };
                let mirrored = Instruction::new(kind, shifted, vec![]);
                apply_instruction(&mut self.vec_state, &mirrored, &mut rng);
            }
            // conj(Y) = −Y: apply Y then negate everything (linear rep).
            GateKind::Y => {
                let mirrored = Instruction::new(GateKind::Y, shifted, vec![]);
                apply_instruction(&mut self.vec_state, &mirrored, &mut rng);
                self.vec_state.scale_all(Complex64::from_real(-1.0));
            }
            // conj(CY) = CY followed by Z on the control.
            GateKind::CY => {
                let mirrored = Instruction::new(GateKind::CY, shifted.clone(), vec![]);
                apply_instruction(&mut self.vec_state, &mirrored, &mut rng);
                let z = Instruction::new(GateKind::Z, vec![shifted[0]], vec![]);
                apply_instruction(&mut self.vec_state, &z, &mut rng);
            }
            // conj(U3(θ, φ, λ)) = U3(θ, −φ, −λ).
            GateKind::U3 => {
                let mirrored = Instruction::new(
                    GateKind::U3,
                    shifted,
                    vec![inst.params[0], -inst.params[1], -inst.params[2]],
                );
                apply_instruction(&mut self.vec_state, &mirrored, &mut rng);
            }
            GateKind::Measure | GateKind::Reset | GateKind::Barrier => unreachable!(),
        }
    }

    /// Apply a single-qubit channel given by Kraus operators:
    /// ρ ← Σ_k K_k ρ K_k†.
    pub fn apply_kraus_1q(&mut self, q: usize, kraus: &[[[Complex64; 2]; 2]]) {
        assert!(q < self.n);
        let original = self.vec_state.amplitudes().to_vec();
        let mut accumulated: Option<Vec<Complex64>> = None;
        for k in kraus {
            // Branch states inherit the density matrix's pool and dispatch
            // configuration, so Kraus sweeps work-share like unitary ones.
            let mut branch = self.vec_state.raw_with_amplitudes_like(original.clone());
            // K on the ket qubit, conj(K) on the bra qubit.
            branch.apply_single(q, *k, 0);
            let conj = [[k[0][0].conj(), k[0][1].conj()], [k[1][0].conj(), k[1][1].conj()]];
            branch.apply_single(q + self.n, conj, 0);
            match &mut accumulated {
                None => accumulated = Some(branch.amplitudes().to_vec()),
                Some(acc) => {
                    for (a, b) in acc.iter_mut().zip(branch.amplitudes()) {
                        *a += *b;
                    }
                }
            }
        }
        self.vec_state =
            self.vec_state.raw_with_amplitudes_like(accumulated.expect("at least one Kraus operator"));
    }

    /// Depolarizing channel with probability `p`:
    /// ρ ← (1−p)ρ + p/3 (XρX + YρY + ZρZ).
    pub fn depolarize(&mut self, q: usize, p: f64) {
        assert!((0.0..=1.0).contains(&p));
        let s0 = (1.0 - p).sqrt();
        let s1 = (p / 3.0).sqrt();
        let kraus = [
            [[Complex64::from_real(s0), Complex64::ZERO], [Complex64::ZERO, Complex64::from_real(s0)]],
            [[Complex64::ZERO, Complex64::from_real(s1)], [Complex64::from_real(s1), Complex64::ZERO]], // √w·X
            [[Complex64::ZERO, Complex64::new(0.0, -s1)], [Complex64::new(0.0, s1), Complex64::ZERO]], // √w·Y
            [[Complex64::from_real(s1), Complex64::ZERO], [Complex64::ZERO, Complex64::from_real(-s1)]], // √w·Z
        ];
        self.apply_kraus_1q(q, &kraus);
    }

    /// Amplitude damping with rate `gamma`.
    pub fn amplitude_damp(&mut self, q: usize, gamma: f64) {
        assert!((0.0..=1.0).contains(&gamma));
        let kraus = [
            [
                [Complex64::ONE, Complex64::ZERO],
                [Complex64::ZERO, Complex64::from_real((1.0 - gamma).sqrt())],
            ],
            [[Complex64::ZERO, Complex64::from_real(gamma.sqrt())], [Complex64::ZERO, Complex64::ZERO]],
        ];
        self.apply_kraus_1q(q, &kraus);
    }

    /// Pure dephasing with probability `p` (phase-flip channel).
    pub fn dephase(&mut self, q: usize, p: f64) {
        assert!((0.0..=1.0).contains(&p));
        let s0 = (1.0 - p).sqrt();
        let s1 = p.sqrt();
        let kraus = [
            [[Complex64::from_real(s0), Complex64::ZERO], [Complex64::ZERO, Complex64::from_real(s0)]],
            [[Complex64::from_real(s1), Complex64::ZERO], [Complex64::ZERO, Complex64::from_real(-s1)]],
        ];
        self.apply_kraus_1q(q, &kraus);
    }

    /// P(qubit `q` measures 1) from the diagonal.
    pub fn prob_one(&self, q: usize) -> f64 {
        let dim = 1usize << self.n;
        (0..dim).filter(|r| r >> q & 1 == 1).map(|r| self.entry(r, r).re).sum()
    }

    /// Exact outcome distribution over the given measured qubits
    /// (marginalizing the rest), keyed like the executor's bitstrings
    /// (lowest measured qubit leftmost).
    pub fn measure_probabilities(&self, qubits: &[usize]) -> std::collections::BTreeMap<String, f64> {
        let mut sorted = qubits.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let dim = 1usize << self.n;
        let mut out: std::collections::BTreeMap<String, f64> = Default::default();
        for r in 0..dim {
            let p = self.entry(r, r).re;
            if p <= 0.0 {
                continue;
            }
            let key: String = sorted.iter().map(|&q| if r >> q & 1 == 1 { '1' } else { '0' }).collect();
            *out.entry(key).or_insert(0.0) += p;
        }
        out
    }

    /// Project qubit `q` onto `outcome` (probability `prob`, must be > 0)
    /// and renormalize: ρ ← P ρ P / prob.
    pub fn project(&mut self, q: usize, outcome: u8, prob: f64) {
        assert!(q < self.n);
        assert!(prob > 0.0, "cannot project onto a zero-probability outcome");
        let (d0, d1) =
            if outcome == 0 { (Complex64::ONE, Complex64::ZERO) } else { (Complex64::ZERO, Complex64::ONE) };
        // P on the ket qubit and on the bra qubit (P is real-diagonal, so
        // no conjugation needed), then 1/prob on the whole matrix.
        self.vec_state.apply_diag(q, d0, d1, 0);
        self.vec_state.apply_diag(q + self.n, d0, d1, 0);
        self.vec_state.scale_all(Complex64::from_real(1.0 / prob));
    }

    /// Reset qubit `q` to |0⟩ as the exact channel
    /// ρ ← |0⟩⟨0|ρ|0⟩⟨0| + |0⟩⟨1|ρ|1⟩⟨0| (Kraus `{|0⟩⟨0|, |0⟩⟨1|}`).
    pub fn reset(&mut self, q: usize) {
        let kraus = [
            [[Complex64::ONE, Complex64::ZERO], [Complex64::ZERO, Complex64::ZERO]],
            [[Complex64::ZERO, Complex64::ONE], [Complex64::ZERO, Complex64::ZERO]],
        ];
        self.apply_kraus_1q(q, &kraus);
    }

    /// Evolve through `circuit` with `noise` applied after every unitary
    /// gate and return the exact outcome distribution over the measured
    /// qubits (all qubits when the circuit has no measurements), keyed
    /// like the executor's bitstrings.
    ///
    /// The circuit is lowered once via [`compile_noisy`] (through the
    /// structural compile cache when enabled) and replayed as compiled
    /// kernels on the superoperator view. Mid-circuit measurements branch
    /// the density matrix per outcome (project + renormalize, outcomes
    /// re-merged by probability weight; a re-measured qubit's last outcome
    /// wins, matching the sampling executor), resets apply the exact reset
    /// channel, and a purely terminal measurement suffix is marginalized
    /// directly without branching.
    pub fn run_noisy_circuit(
        circuit: &Circuit,
        pool: Arc<ThreadPool>,
        noise: &NoiseModel,
    ) -> Result<BTreeMap<String, f64>, String> {
        let plan = compile_noisy(circuit, noise, crate::cache::compile_cache_env_default());
        Self::run_noisy_compiled(&plan, pool)
    }

    /// [`DensityMatrix::run_noisy_circuit`] for an already-lowered plan.
    pub fn run_noisy_compiled(
        plan: &NoisyCompiled,
        pool: Arc<ThreadPool>,
    ) -> Result<BTreeMap<String, f64>, String> {
        let n = plan.num_qubits();
        if n > 12 {
            return Err(format!("density matrix of {n} qubits will not fit in memory"));
        }
        let ops = plan.ops();
        let mut branches =
            vec![Branch { rho: DensityMatrix::with_pool(n, pool), weight: 1.0, bits: BTreeMap::new() }];
        let mut out: BTreeMap<String, f64> = BTreeMap::new();
        let mut idx = 0;
        while idx < ops.len() {
            // Terminal fast path: once only measurements remain, marginalize
            // each branch's diagonal in one pass instead of branching 2^k
            // ways over the k remaining measurements.
            if ops[idx..].iter().all(|op| matches!(op, NoisyOp::Measure { .. })) {
                let terminal: Vec<usize> = ops[idx..]
                    .iter()
                    .map(|op| match op {
                        NoisyOp::Measure { qubit } => *qubit,
                        _ => unreachable!(),
                    })
                    .collect();
                for branch in &branches {
                    branch.fold_terminal(&terminal, &mut out);
                }
                return Ok(out);
            }
            match &ops[idx] {
                NoisyOp::Unitary(kernel) => {
                    for branch in &mut branches {
                        branch.rho.apply_kernel_op(kernel);
                    }
                }
                NoisyOp::Depolarize { qubit, p } => {
                    for branch in &mut branches {
                        branch.rho.depolarize(*qubit, *p);
                    }
                }
                NoisyOp::Dephase { qubit, p } => {
                    for branch in &mut branches {
                        branch.rho.dephase(*qubit, *p);
                    }
                }
                NoisyOp::AmplitudeDamp { qubit, gamma } => {
                    for branch in &mut branches {
                        branch.rho.amplitude_damp(*qubit, *gamma);
                    }
                }
                NoisyOp::Reset { qubit } => {
                    for branch in &mut branches {
                        branch.rho.reset(*qubit);
                    }
                }
                NoisyOp::Measure { qubit } => {
                    let mut next = Vec::with_capacity(branches.len() * 2);
                    for branch in branches {
                        let p1 = branch.rho.prob_one(*qubit);
                        for (outcome, p) in [(0u8, 1.0 - p1), (1u8, p1)] {
                            // Skip (numerically) impossible outcomes — the
                            // projection would divide by ~0.
                            if p <= 1e-12 {
                                continue;
                            }
                            let mut b = Branch {
                                rho: branch.rho.clone_like(),
                                weight: branch.weight * p,
                                bits: branch.bits.clone(),
                            };
                            b.rho.project(*qubit, outcome, p);
                            b.bits.insert(*qubit, outcome);
                            next.push(b);
                        }
                    }
                    branches = next;
                }
            }
            idx += 1;
        }
        // No terminal-measurement suffix. Branches carrying recorded
        // mid-circuit outcomes report those; a plan with no measurements at
        // all reports the full diagonal, like the pre-compiled executor.
        for branch in &branches {
            if branch.bits.is_empty() {
                let all: Vec<usize> = (0..n).collect();
                branch.fold_terminal(&all, &mut out);
            } else {
                let key: String = branch.bits.values().map(|&b| if b == 1 { '1' } else { '0' }).collect();
                *out.entry(key).or_insert(0.0) += branch.weight;
            }
        }
        Ok(out)
    }
}

/// One outcome branch of the mid-circuit-measurement replay: a density
/// matrix conditioned on the recorded outcomes, its probability weight,
/// and the recorded (last-wins) bit per measured qubit.
struct Branch {
    rho: DensityMatrix,
    weight: f64,
    bits: BTreeMap<usize, u8>,
}

impl Branch {
    /// Fold this branch's distribution over the `terminal` measured qubits
    /// (combined with its recorded mid-circuit bits; terminal outcomes win
    /// on re-measured qubits) into `out`.
    fn fold_terminal(&self, terminal: &[usize], out: &mut BTreeMap<String, f64>) {
        let mut term_sorted = terminal.to_vec();
        term_sorted.sort_unstable();
        term_sorted.dedup();
        let mut all: Vec<usize> = self.bits.keys().copied().chain(term_sorted.iter().copied()).collect();
        all.sort_unstable();
        all.dedup();
        for (term_key, p) in self.rho.measure_probabilities(&term_sorted) {
            let key: String = all
                .iter()
                .map(|q| match term_sorted.binary_search(q) {
                    Ok(i) => term_key.as_bytes()[i] as char,
                    Err(_) => {
                        if self.bits[q] == 1 {
                            '1'
                        } else {
                            '0'
                        }
                    }
                })
                .collect();
            *out.entry(key).or_insert(0.0) += self.weight * p;
        }
    }
}

/// The superoperator view of compiled-kernel application: every unitary
/// kernel op runs once on the ket qubits (low half of vec(ρ)) and once,
/// conjugated and shifted by `n`, on the bra qubits — ρ → UρU† as two
/// state-vector sweeps, reusing the dense/flip/diag/phase classification
/// and the pool-parallel kernels verbatim.
impl ApplyState for DensityMatrix {
    fn num_qubits(&self) -> usize {
        self.n
    }

    fn apply_single(&mut self, target: usize, m: [[Complex64; 2]; 2], ctrl_mask: usize) {
        self.vec_state.apply_single(target, m, ctrl_mask);
        let conj = [[m[0][0].conj(), m[0][1].conj()], [m[1][0].conj(), m[1][1].conj()]];
        self.vec_state.apply_single(target + self.n, conj, ctrl_mask << self.n);
    }

    fn apply_pair(&mut self, t0: usize, t1: usize, m: &[[Complex64; 4]; 4], ctrl_mask: usize) {
        self.vec_state.apply_pair(t0, t1, m, ctrl_mask);
        let mut conj = [[Complex64::ZERO; 4]; 4];
        for (row, src) in conj.iter_mut().zip(m) {
            for (dst, v) in row.iter_mut().zip(src) {
                *dst = v.conj();
            }
        }
        self.vec_state.apply_pair(t0 + self.n, t1 + self.n, &conj, ctrl_mask << self.n);
    }

    fn apply_antidiag(&mut self, target: usize, m01: Complex64, m10: Complex64, ctrl_mask: usize) {
        self.vec_state.apply_antidiag(target, m01, m10, ctrl_mask);
        self.vec_state.apply_antidiag(target + self.n, m01.conj(), m10.conj(), ctrl_mask << self.n);
    }

    fn apply_diag(&mut self, target: usize, d0: Complex64, d1: Complex64, ctrl_mask: usize) {
        self.vec_state.apply_diag(target, d0, d1, ctrl_mask);
        self.vec_state.apply_diag(target + self.n, d0.conj(), d1.conj(), ctrl_mask << self.n);
    }

    fn mul_where(&mut self, set_mask: usize, clear_mask: usize, z: Complex64) {
        self.vec_state.mul_where(set_mask, clear_mask, z);
        self.vec_state.mul_where(set_mask << self.n, clear_mask << self.n, z.conj());
    }

    fn scale_all(&mut self, z: Complex64) {
        // U = z·I ⇒ ρ → zρz̄ = |z|²ρ (a unit global phase is a no-op on ρ,
        // as it must be).
        self.vec_state.scale_all(Complex64::from_real(z.norm_sqr()));
    }

    fn apply_swap(&mut self, a: usize, b: usize, ctrl_mask: usize) {
        self.vec_state.apply_swap(a, b, ctrl_mask);
        self.vec_state.apply_swap(a + self.n, b + self.n, ctrl_mask << self.n);
    }
}

/// Per-gate noise strengths for [`DensityMatrix::run_noisy_circuit`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NoiseModel {
    /// Depolarizing probability applied to each touched qubit per gate.
    pub depolarizing: f64,
    /// Dephasing probability per gate.
    pub dephasing: f64,
    /// Amplitude-damping rate per gate.
    pub amplitude_damping: f64,
}

impl NoiseModel {
    /// True when every channel strength is zero (the lowering then fuses
    /// across the whole unitary prefix).
    pub fn is_noiseless(&self) -> bool {
        self.depolarizing == 0.0 && self.dephasing == 0.0 && self.amplitude_damping == 0.0
    }

    /// Validate that every strength is a probability/rate in `[0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        for (label, v) in [
            ("depolarizing", self.depolarizing),
            ("dephasing", self.dephasing),
            ("amplitude-damping", self.amplitude_damping),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{label} strength {v} outside [0, 1]"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;
    use qcor_circuit::library;
    use qcor_circuit::Circuit;

    fn apply_all(rho: &mut DensityMatrix, circuit: &Circuit) {
        for inst in circuit.instructions() {
            rho.apply_unitary(inst);
        }
    }

    #[test]
    fn initial_state_is_pure_zero() {
        let rho = DensityMatrix::new(2);
        assert!(rho.entry(0, 0).approx_eq(Complex64::ONE, 1e-12));
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_pure_state_evolution() {
        // Random-ish unitary circuit: ρ must equal |ψ⟩⟨ψ| at the end.
        let mut circuit = Circuit::new(3);
        circuit
            .h(0)
            .t(0)
            .cx(0, 1)
            .ry(2, 0.7)
            .s(1)
            .crz(1, 2, -0.4)
            .y(0)
            .u3(1, 0.2, 0.5, -0.3)
            .cphase(0, 2, 1.1);
        let mut rho = DensityMatrix::new(3);
        apply_all(&mut rho, &circuit);

        let mut psi = StateVector::new(3);
        let mut rng = StdRng::seed_from_u64(0);
        crate::executor::run_once(&mut psi, &circuit, &mut rng);
        let reference = DensityMatrix::from_pure(&psi);
        for r in 0..8 {
            for c in 0..8 {
                assert!(
                    rho.entry(r, c).approx_eq(reference.entry(r, c), 1e-10),
                    "({r},{c}): {} vs {}",
                    rho.entry(r, c),
                    reference.entry(r, c)
                );
            }
        }
        assert!((rho.purity() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn bell_diagonal_probabilities() {
        let mut rho = DensityMatrix::new(2);
        apply_all(&mut rho, &library::ghz_state(2));
        let p = rho.diagonal_probabilities();
        assert!((p[0b00] - 0.5).abs() < 1e-12);
        assert!((p[0b11] - 0.5).abs() < 1e-12);
        assert!(p[0b01] < 1e-12 && p[0b10] < 1e-12);
    }

    #[test]
    fn depolarizing_reduces_purity_but_preserves_trace() {
        let mut rho = DensityMatrix::new(1);
        rho.apply_unitary(&Instruction::new(GateKind::H, vec![0], vec![]));
        rho.depolarize(0, 0.2);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!(rho.purity() < 0.999, "purity {}", rho.purity());
        // Full depolarization → maximally mixed.
        let mut rho = DensityMatrix::new(1);
        rho.depolarize(0, 0.75); // p=3/4 with Pauli weights p/3 = I/2 fixed point
        assert!(rho.entry(0, 0).approx_eq(c64(0.5, 0.0), 1e-12));
        assert!(rho.entry(1, 1).approx_eq(c64(0.5, 0.0), 1e-12));
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        let mut rho = DensityMatrix::new(1);
        rho.apply_unitary(&Instruction::new(GateKind::X, vec![0], vec![]));
        rho.amplitude_damp(0, 0.3);
        assert!((rho.entry(1, 1).re - 0.7).abs() < 1e-12);
        assert!((rho.entry(0, 0).re - 0.3).abs() < 1e-12);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dephasing_kills_coherences_only() {
        let mut rho = DensityMatrix::new(1);
        rho.apply_unitary(&Instruction::new(GateKind::H, vec![0], vec![]));
        let before = rho.entry(0, 1).norm();
        rho.dephase(0, 0.5);
        let after = rho.entry(0, 1).norm();
        assert!(after < before, "coherence must shrink: {before} → {after}");
        assert!((rho.entry(0, 0).re - 0.5).abs() < 1e-12, "populations untouched");
    }

    #[test]
    fn noisy_bell_distribution_leaks() {
        let mut circuit = library::ghz_state(2);
        circuit.measure_all();
        let noise = NoiseModel { depolarizing: 0.05, ..Default::default() };
        let dist = DensityMatrix::run_noisy_circuit(&circuit, Arc::new(ThreadPool::new(1)), &noise).unwrap();
        let total: f64 = dist.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
        let clean = dist.get("00").copied().unwrap_or(0.0) + dist.get("11").copied().unwrap_or(0.0);
        assert!(clean < 1.0 - 1e-6, "noise must leak probability, clean mass = {clean}");
        assert!(clean > 0.8, "but signal should dominate, clean mass = {clean}");
    }

    #[test]
    fn noiseless_run_matches_exact_distribution() {
        let circuit = library::bell_kernel();
        let dist =
            DensityMatrix::run_noisy_circuit(&circuit, Arc::new(ThreadPool::new(1)), &NoiseModel::default())
                .unwrap();
        assert!((dist["00"] - 0.5).abs() < 1e-10);
        assert!((dist["11"] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn measure_probabilities_marginalize() {
        let mut rho = DensityMatrix::new(2);
        apply_all(&mut rho, &library::ghz_state(2));
        let marginal = rho.measure_probabilities(&[0]);
        assert!((marginal["0"] - 0.5).abs() < 1e-12);
        assert!((marginal["1"] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mid_circuit_measurement_projects_and_renormalizes() {
        // measure(0) on |0⟩ records 0 deterministically; the trailing H
        // acts on the projected state and is simply not measured again.
        let mut c = Circuit::new(1);
        c.measure(0).h(0);
        let dist = DensityMatrix::run_noisy_circuit(&c, Arc::new(ThreadPool::new(1)), &NoiseModel::default())
            .unwrap();
        assert_eq!(dist.len(), 1);
        assert!((dist["0"] - 1.0).abs() < 1e-12, "{dist:?}");
    }

    #[test]
    fn mid_circuit_measurement_branches_by_outcome() {
        // H then mid-circuit measure collapses qubit 0; the CX copies the
        // recorded outcome, so the final joint distribution stays perfectly
        // correlated at 50/50.
        let mut c = Circuit::new(2);
        c.h(0).measure(0).cx(0, 1).measure(0).measure(1);
        let dist = DensityMatrix::run_noisy_circuit(&c, Arc::new(ThreadPool::new(1)), &NoiseModel::default())
            .unwrap();
        assert!((dist["00"] - 0.5).abs() < 1e-12, "{dist:?}");
        assert!((dist["11"] - 0.5).abs() < 1e-12, "{dist:?}");
        assert_eq!(dist.len(), 2, "{dist:?}");
    }

    #[test]
    fn mid_circuit_remeasure_last_outcome_wins() {
        // Qubit 0 is measured (0), flipped, and measured again (1): the
        // bitstring reports the final outcome, like the sampling executor.
        let mut c = Circuit::new(1);
        c.measure(0).x(0).measure(0);
        let dist = DensityMatrix::run_noisy_circuit(&c, Arc::new(ThreadPool::new(1)), &NoiseModel::default())
            .unwrap();
        assert!((dist["1"] - 1.0).abs() < 1e-12, "{dist:?}");
    }

    #[test]
    fn reset_is_the_exact_reset_channel() {
        // H leaves qubit 0 in an even superposition; reset returns it to
        // |0⟩ regardless of what it held, and the later H makes that
        // observable as a fresh 50/50.
        let mut c = Circuit::new(1);
        c.h(0).reset(0).h(0).measure(0);
        let dist = DensityMatrix::run_noisy_circuit(&c, Arc::new(ThreadPool::new(1)), &NoiseModel::default())
            .unwrap();
        assert!((dist["0"] - 0.5).abs() < 1e-12, "{dist:?}");
        assert!((dist["1"] - 0.5).abs() < 1e-12, "{dist:?}");

        let mut rho = DensityMatrix::new(1);
        rho.apply_unitary(&Instruction::new(GateKind::X, vec![0], vec![]));
        rho.reset(0);
        assert!(rho.entry(0, 0).approx_eq(Complex64::ONE, 1e-12));
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compiled_kernel_replay_matches_instruction_path() {
        // The ApplyState superoperator view replaying fused compiled
        // kernels must agree with the per-instruction conjugation rules.
        let mut circuit = Circuit::new(3);
        circuit
            .h(0)
            .t(0)
            .cx(0, 1)
            .ry(2, 0.7)
            .s(1)
            .crz(1, 2, -0.4)
            .y(0)
            .u3(1, 0.2, 0.5, -0.3)
            .cphase(0, 2, 1.1)
            .swap(0, 2);
        let mut by_inst = DensityMatrix::new(3);
        apply_all(&mut by_inst, &circuit);

        let compiled = crate::compile::CompiledCircuit::compile(&circuit);
        let mut by_kernel = DensityMatrix::new(3);
        by_kernel.apply_unitary_ops(compiled.ops());

        for r in 0..8 {
            for c in 0..8 {
                assert!(
                    by_kernel.entry(r, c).approx_eq(by_inst.entry(r, c), 1e-10),
                    "({r},{c}): {} vs {}",
                    by_kernel.entry(r, c),
                    by_inst.entry(r, c)
                );
            }
        }
    }

    #[test]
    fn kraus_branches_inherit_the_pool() {
        // with_pool must thread the pool into Kraus sweeps (the branch
        // states used to silently fall back to the sequential pool).
        let pool = Arc::new(ThreadPool::new(2));
        let mut rho = DensityMatrix::with_pool(2, Arc::clone(&pool));
        rho.set_par_threshold(1);
        rho.apply_unitary(&Instruction::new(GateKind::H, vec![0], vec![]));
        rho.depolarize(0, 0.1);
        assert_eq!(rho.pool().num_threads(), 2, "channel application must not drop the pool");
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn density_sweeps_count_in_kernel_stats() {
        crate::stats::reset_kernel_iterations();
        let mut rho = DensityMatrix::new(2);
        rho.apply_unitary(&Instruction::new(GateKind::H, vec![0], vec![]));
        let after_unitary = crate::stats::kernel_iterations();
        assert!(after_unitary > 0, "unitary superoperator sweeps must be counted");
        rho.depolarize(0, 0.1);
        assert!(crate::stats::kernel_iterations() > after_unitary, "Kraus sweeps must be counted too");
    }

    #[test]
    fn noise_model_validation() {
        assert!(NoiseModel::default().validate().is_ok());
        assert!(NoiseModel::default().is_noiseless());
        let m = NoiseModel { depolarizing: 0.1, ..Default::default() };
        assert!(!m.is_noiseless());
        assert!(m.validate().is_ok());
        let bad = NoiseModel { dephasing: 1.5, ..Default::default() };
        assert!(bad.validate().unwrap_err().contains("dephasing"));
    }
}
