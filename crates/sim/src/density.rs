//! Density-matrix simulation — exact mixed-state evolution, used by the
//! `qpp-density` backend for noise studies (the paper's future work calls
//! for "additional quantum simulation ... back ends").
//!
//! Representation: vec(ρ) as a [`StateVector`] over `2n` qubits — entry
//! ρ_{r,c} lives at vector index `r | (c << n)` (ket bits low, bra bits
//! high). Unitary evolution ρ → UρU† is then `U` applied to the ket
//! qubits and `conj(U)` applied to the bra qubits, which lets every
//! (pool-parallelized) state-vector kernel be reused verbatim. Quantum
//! channels are applied as explicit Kraus sums.

use crate::complex::Complex64;
use crate::gates::apply_instruction;
use crate::state::StateVector;
use qcor_circuit::{Circuit, GateKind, Instruction};
use qcor_pool::ThreadPool;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// An exact n-qubit density matrix (n ≤ 12).
pub struct DensityMatrix {
    n: usize,
    /// vec(ρ) over 2n qubits.
    vec_state: StateVector,
}

impl std::fmt::Debug for DensityMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DensityMatrix").field("num_qubits", &self.n).finish()
    }
}

impl DensityMatrix {
    /// |0...0⟩⟨0...0| on `n` qubits.
    pub fn new(n: usize) -> Self {
        Self::with_pool(n, ThreadPool::sequential())
    }

    /// |0...0⟩⟨0...0| with kernels work-shared over `pool`.
    pub fn with_pool(n: usize, pool: Arc<ThreadPool>) -> Self {
        assert!(n <= 12, "density matrix of {n} qubits will not fit in memory");
        DensityMatrix { n, vec_state: StateVector::with_pool(2 * n, pool) }
    }

    /// Build |ψ⟩⟨ψ| from a pure state.
    pub fn from_pure(state: &StateVector) -> Self {
        let n = state.num_qubits();
        assert!(n <= 12);
        let dim = 1usize << n;
        let mut amps = vec![Complex64::ZERO; dim * dim];
        for r in 0..dim {
            for c in 0..dim {
                amps[r | (c << n)] = state.amp(r) * state.amp(c).conj();
            }
        }
        // vec(ρ) of a pure state has unit 2-norm, so this passes the
        // normalization check in from_amplitudes.
        DensityMatrix { n, vec_state: StateVector::from_amplitudes(amps) }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// ρ_{r,c}.
    pub fn entry(&self, r: usize, c: usize) -> Complex64 {
        self.vec_state.amp(r | (c << self.n))
    }

    /// Tr ρ (1 for a valid state).
    pub fn trace(&self) -> Complex64 {
        let dim = 1usize << self.n;
        let mut acc = Complex64::ZERO;
        for r in 0..dim {
            acc += self.entry(r, r);
        }
        acc
    }

    /// Tr ρ² — 1 for pure states, < 1 for mixed states.
    pub fn purity(&self) -> f64 {
        // Tr ρ² = Σ_{r,c} ρ_{r,c} ρ_{c,r} = Σ |ρ_{r,c}|² for Hermitian ρ.
        self.vec_state.amplitudes().iter().map(|a| a.norm_sqr()).sum()
    }

    /// The diagonal as a probability distribution over basis states.
    pub fn diagonal_probabilities(&self) -> Vec<f64> {
        let dim = 1usize << self.n;
        (0..dim).map(|r| self.entry(r, r).re.max(0.0)).collect()
    }

    /// Apply a unitary instruction (measurements/resets are rejected —
    /// use [`DensityMatrix::measure_probabilities`] and channels instead).
    pub fn apply_unitary(&mut self, inst: &Instruction) {
        assert!(inst.gate.is_unitary(), "apply_unitary cannot process {}", inst.gate);
        if inst.gate == GateKind::Barrier {
            return;
        }
        let mut rng = StdRng::seed_from_u64(0); // unitaries never consult it

        // Ket side: the instruction as-is on the low qubits.
        apply_instruction(&mut self.vec_state, inst, &mut rng);
        // Bra side: the conjugated instruction on the high qubits.
        let shifted: Vec<usize> = inst.qubits.iter().map(|&q| q + self.n).collect();
        match inst.gate {
            // Real matrices: conj(U) = U.
            GateKind::H
            | GateKind::X
            | GateKind::Z
            | GateKind::Ry
            | GateKind::CX
            | GateKind::CZ
            | GateKind::Swap
            | GateKind::CCX
            | GateKind::CSwap => {
                let mirrored = Instruction::new(inst.gate, shifted, inst.params.clone());
                apply_instruction(&mut self.vec_state, &mirrored, &mut rng);
            }
            // Angle-parameterized phases/rotations: conj(U(θ)) = U(−θ).
            GateKind::Rx
            | GateKind::Rz
            | GateKind::Phase
            | GateKind::CPhase
            | GateKind::CRz
            | GateKind::CCPhase => {
                let mirrored = Instruction::new(inst.gate, shifted, vec![-inst.params[0]]);
                apply_instruction(&mut self.vec_state, &mirrored, &mut rng);
            }
            // Fixed phases: conj(S) = S†, conj(T) = T†.
            GateKind::S | GateKind::Sdg | GateKind::T | GateKind::Tdg => {
                let kind = match inst.gate {
                    GateKind::S => GateKind::Sdg,
                    GateKind::Sdg => GateKind::S,
                    GateKind::T => GateKind::Tdg,
                    _ => GateKind::T,
                };
                let mirrored = Instruction::new(kind, shifted, vec![]);
                apply_instruction(&mut self.vec_state, &mirrored, &mut rng);
            }
            // conj(Y) = −Y: apply Y then negate everything (linear rep).
            GateKind::Y => {
                let mirrored = Instruction::new(GateKind::Y, shifted, vec![]);
                apply_instruction(&mut self.vec_state, &mirrored, &mut rng);
                self.vec_state.scale_all(Complex64::from_real(-1.0));
            }
            // conj(CY) = CY followed by Z on the control.
            GateKind::CY => {
                let mirrored = Instruction::new(GateKind::CY, shifted.clone(), vec![]);
                apply_instruction(&mut self.vec_state, &mirrored, &mut rng);
                let z = Instruction::new(GateKind::Z, vec![shifted[0]], vec![]);
                apply_instruction(&mut self.vec_state, &z, &mut rng);
            }
            // conj(U3(θ, φ, λ)) = U3(θ, −φ, −λ).
            GateKind::U3 => {
                let mirrored = Instruction::new(
                    GateKind::U3,
                    shifted,
                    vec![inst.params[0], -inst.params[1], -inst.params[2]],
                );
                apply_instruction(&mut self.vec_state, &mirrored, &mut rng);
            }
            GateKind::Measure | GateKind::Reset | GateKind::Barrier => unreachable!(),
        }
    }

    /// Apply a single-qubit channel given by Kraus operators:
    /// ρ ← Σ_k K_k ρ K_k†.
    pub fn apply_kraus_1q(&mut self, q: usize, kraus: &[[[Complex64; 2]; 2]]) {
        assert!(q < self.n);
        let original = self.vec_state.amplitudes().to_vec();
        let mut accumulated: Option<Vec<Complex64>> = None;
        for k in kraus {
            let mut branch = StateVector::raw_with_amplitudes(original.clone());
            // K on the ket qubit, conj(K) on the bra qubit.
            branch.apply_single(q, *k, 0);
            let conj = [[k[0][0].conj(), k[0][1].conj()], [k[1][0].conj(), k[1][1].conj()]];
            branch.apply_single(q + self.n, conj, 0);
            match &mut accumulated {
                None => accumulated = Some(branch.amplitudes().to_vec()),
                Some(acc) => {
                    for (a, b) in acc.iter_mut().zip(branch.amplitudes()) {
                        *a += *b;
                    }
                }
            }
        }
        self.vec_state = StateVector::raw_with_amplitudes(accumulated.expect("at least one Kraus operator"));
    }

    /// Depolarizing channel with probability `p`:
    /// ρ ← (1−p)ρ + p/3 (XρX + YρY + ZρZ).
    pub fn depolarize(&mut self, q: usize, p: f64) {
        assert!((0.0..=1.0).contains(&p));
        let s0 = (1.0 - p).sqrt();
        let s1 = (p / 3.0).sqrt();
        let kraus = [
            [[Complex64::from_real(s0), Complex64::ZERO], [Complex64::ZERO, Complex64::from_real(s0)]],
            [[Complex64::ZERO, Complex64::from_real(s1)], [Complex64::from_real(s1), Complex64::ZERO]], // √w·X
            [[Complex64::ZERO, Complex64::new(0.0, -s1)], [Complex64::new(0.0, s1), Complex64::ZERO]], // √w·Y
            [[Complex64::from_real(s1), Complex64::ZERO], [Complex64::ZERO, Complex64::from_real(-s1)]], // √w·Z
        ];
        self.apply_kraus_1q(q, &kraus);
    }

    /// Amplitude damping with rate `gamma`.
    pub fn amplitude_damp(&mut self, q: usize, gamma: f64) {
        assert!((0.0..=1.0).contains(&gamma));
        let kraus = [
            [
                [Complex64::ONE, Complex64::ZERO],
                [Complex64::ZERO, Complex64::from_real((1.0 - gamma).sqrt())],
            ],
            [[Complex64::ZERO, Complex64::from_real(gamma.sqrt())], [Complex64::ZERO, Complex64::ZERO]],
        ];
        self.apply_kraus_1q(q, &kraus);
    }

    /// Pure dephasing with probability `p` (phase-flip channel).
    pub fn dephase(&mut self, q: usize, p: f64) {
        assert!((0.0..=1.0).contains(&p));
        let s0 = (1.0 - p).sqrt();
        let s1 = p.sqrt();
        let kraus = [
            [[Complex64::from_real(s0), Complex64::ZERO], [Complex64::ZERO, Complex64::from_real(s0)]],
            [[Complex64::from_real(s1), Complex64::ZERO], [Complex64::ZERO, Complex64::from_real(-s1)]],
        ];
        self.apply_kraus_1q(q, &kraus);
    }

    /// P(qubit `q` measures 1) from the diagonal.
    pub fn prob_one(&self, q: usize) -> f64 {
        let dim = 1usize << self.n;
        (0..dim).filter(|r| r >> q & 1 == 1).map(|r| self.entry(r, r).re).sum()
    }

    /// Exact outcome distribution over the given measured qubits
    /// (marginalizing the rest), keyed like the executor's bitstrings
    /// (lowest measured qubit leftmost).
    pub fn measure_probabilities(&self, qubits: &[usize]) -> std::collections::BTreeMap<String, f64> {
        let mut sorted = qubits.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let dim = 1usize << self.n;
        let mut out: std::collections::BTreeMap<String, f64> = Default::default();
        for r in 0..dim {
            let p = self.entry(r, r).re;
            if p <= 0.0 {
                continue;
            }
            let key: String = sorted.iter().map(|&q| if r >> q & 1 == 1 { '1' } else { '0' }).collect();
            *out.entry(key).or_insert(0.0) += p;
        }
        out
    }

    /// Evolve through a circuit's unitary prefix, applying `noise` after
    /// every unitary gate, and return the exact outcome distribution over
    /// the measured qubits. Measurements must be terminal.
    pub fn run_noisy_circuit(
        circuit: &Circuit,
        pool: Arc<ThreadPool>,
        noise: &NoiseModel,
    ) -> Result<std::collections::BTreeMap<String, f64>, String> {
        let mut rho = DensityMatrix::with_pool(circuit.num_qubits(), pool);
        let mut measured: Vec<usize> = Vec::new();
        for inst in circuit.instructions() {
            match inst.gate {
                GateKind::Measure => measured.push(inst.qubits[0]),
                GateKind::Barrier => {}
                GateKind::Reset => return Err("density executor does not support reset".into()),
                _ if !measured.is_empty() => {
                    return Err("density executor requires terminal measurements".into())
                }
                _ => {
                    rho.apply_unitary(inst);
                    for &q in &inst.qubits {
                        if noise.depolarizing > 0.0 {
                            rho.depolarize(q, noise.depolarizing);
                        }
                        if noise.dephasing > 0.0 {
                            rho.dephase(q, noise.dephasing);
                        }
                        if noise.amplitude_damping > 0.0 {
                            rho.amplitude_damp(q, noise.amplitude_damping);
                        }
                    }
                }
            }
        }
        if measured.is_empty() {
            measured = (0..circuit.num_qubits()).collect();
        }
        Ok(rho.measure_probabilities(&measured))
    }
}

/// Per-gate noise strengths for [`DensityMatrix::run_noisy_circuit`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NoiseModel {
    /// Depolarizing probability applied to each touched qubit per gate.
    pub depolarizing: f64,
    /// Dephasing probability per gate.
    pub dephasing: f64,
    /// Amplitude-damping rate per gate.
    pub amplitude_damping: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;
    use qcor_circuit::library;
    use qcor_circuit::Circuit;

    fn apply_all(rho: &mut DensityMatrix, circuit: &Circuit) {
        for inst in circuit.instructions() {
            rho.apply_unitary(inst);
        }
    }

    #[test]
    fn initial_state_is_pure_zero() {
        let rho = DensityMatrix::new(2);
        assert!(rho.entry(0, 0).approx_eq(Complex64::ONE, 1e-12));
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_pure_state_evolution() {
        // Random-ish unitary circuit: ρ must equal |ψ⟩⟨ψ| at the end.
        let mut circuit = Circuit::new(3);
        circuit
            .h(0)
            .t(0)
            .cx(0, 1)
            .ry(2, 0.7)
            .s(1)
            .crz(1, 2, -0.4)
            .y(0)
            .u3(1, 0.2, 0.5, -0.3)
            .cphase(0, 2, 1.1);
        let mut rho = DensityMatrix::new(3);
        apply_all(&mut rho, &circuit);

        let mut psi = StateVector::new(3);
        let mut rng = StdRng::seed_from_u64(0);
        crate::executor::run_once(&mut psi, &circuit, &mut rng);
        let reference = DensityMatrix::from_pure(&psi);
        for r in 0..8 {
            for c in 0..8 {
                assert!(
                    rho.entry(r, c).approx_eq(reference.entry(r, c), 1e-10),
                    "({r},{c}): {} vs {}",
                    rho.entry(r, c),
                    reference.entry(r, c)
                );
            }
        }
        assert!((rho.purity() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn bell_diagonal_probabilities() {
        let mut rho = DensityMatrix::new(2);
        apply_all(&mut rho, &library::ghz_state(2));
        let p = rho.diagonal_probabilities();
        assert!((p[0b00] - 0.5).abs() < 1e-12);
        assert!((p[0b11] - 0.5).abs() < 1e-12);
        assert!(p[0b01] < 1e-12 && p[0b10] < 1e-12);
    }

    #[test]
    fn depolarizing_reduces_purity_but_preserves_trace() {
        let mut rho = DensityMatrix::new(1);
        rho.apply_unitary(&Instruction::new(GateKind::H, vec![0], vec![]));
        rho.depolarize(0, 0.2);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!(rho.purity() < 0.999, "purity {}", rho.purity());
        // Full depolarization → maximally mixed.
        let mut rho = DensityMatrix::new(1);
        rho.depolarize(0, 0.75); // p=3/4 with Pauli weights p/3 = I/2 fixed point
        assert!(rho.entry(0, 0).approx_eq(c64(0.5, 0.0), 1e-12));
        assert!(rho.entry(1, 1).approx_eq(c64(0.5, 0.0), 1e-12));
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        let mut rho = DensityMatrix::new(1);
        rho.apply_unitary(&Instruction::new(GateKind::X, vec![0], vec![]));
        rho.amplitude_damp(0, 0.3);
        assert!((rho.entry(1, 1).re - 0.7).abs() < 1e-12);
        assert!((rho.entry(0, 0).re - 0.3).abs() < 1e-12);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dephasing_kills_coherences_only() {
        let mut rho = DensityMatrix::new(1);
        rho.apply_unitary(&Instruction::new(GateKind::H, vec![0], vec![]));
        let before = rho.entry(0, 1).norm();
        rho.dephase(0, 0.5);
        let after = rho.entry(0, 1).norm();
        assert!(after < before, "coherence must shrink: {before} → {after}");
        assert!((rho.entry(0, 0).re - 0.5).abs() < 1e-12, "populations untouched");
    }

    #[test]
    fn noisy_bell_distribution_leaks() {
        let mut circuit = library::ghz_state(2);
        circuit.measure_all();
        let noise = NoiseModel { depolarizing: 0.05, ..Default::default() };
        let dist = DensityMatrix::run_noisy_circuit(&circuit, Arc::new(ThreadPool::new(1)), &noise).unwrap();
        let total: f64 = dist.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
        let clean = dist.get("00").copied().unwrap_or(0.0) + dist.get("11").copied().unwrap_or(0.0);
        assert!(clean < 1.0 - 1e-6, "noise must leak probability, clean mass = {clean}");
        assert!(clean > 0.8, "but signal should dominate, clean mass = {clean}");
    }

    #[test]
    fn noiseless_run_matches_exact_distribution() {
        let circuit = library::bell_kernel();
        let dist =
            DensityMatrix::run_noisy_circuit(&circuit, Arc::new(ThreadPool::new(1)), &NoiseModel::default())
                .unwrap();
        assert!((dist["00"] - 0.5).abs() < 1e-10);
        assert!((dist["11"] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn measure_probabilities_marginalize() {
        let mut rho = DensityMatrix::new(2);
        apply_all(&mut rho, &library::ghz_state(2));
        let marginal = rho.measure_probabilities(&[0]);
        assert!((marginal["0"] - 0.5).abs() < 1e-12);
        assert!((marginal["1"] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mid_circuit_measurement_rejected() {
        let mut c = Circuit::new(1);
        c.measure(0).h(0);
        assert!(DensityMatrix::run_noisy_circuit(&c, Arc::new(ThreadPool::new(1)), &NoiseModel::default())
            .is_err());
    }
}
