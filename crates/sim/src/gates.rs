//! Gate matrices and the mapping from IR instructions to state-vector
//! kernels.

use crate::complex::{c64, Complex64};
use crate::state::StateVector;
use qcor_circuit::{GateKind, Instruction};
use rand::Rng;
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

/// The 2×2 matrix of a single-qubit unitary gate, if `kind` is one.
/// Parameters are taken from `params` as the gate requires.
pub fn single_qubit_matrix(kind: GateKind, params: &[f64]) -> Option<[[Complex64; 2]; 2]> {
    use GateKind::*;
    let m = match kind {
        H => {
            let s = c64(std::f64::consts::FRAC_1_SQRT_2, 0.0);
            [[s, s], [s, -s]]
        }
        X => [[Complex64::ZERO, Complex64::ONE], [Complex64::ONE, Complex64::ZERO]],
        Y => [[Complex64::ZERO, c64(0.0, -1.0)], [Complex64::I, Complex64::ZERO]],
        Z => [[Complex64::ONE, Complex64::ZERO], [Complex64::ZERO, c64(-1.0, 0.0)]],
        S => [[Complex64::ONE, Complex64::ZERO], [Complex64::ZERO, Complex64::I]],
        Sdg => [[Complex64::ONE, Complex64::ZERO], [Complex64::ZERO, c64(0.0, -1.0)]],
        T => [[Complex64::ONE, Complex64::ZERO], [Complex64::ZERO, Complex64::from_polar_unit(FRAC_PI_4)]],
        Tdg => [[Complex64::ONE, Complex64::ZERO], [Complex64::ZERO, Complex64::from_polar_unit(-FRAC_PI_4)]],
        Rx => {
            let (c, s) = ((params[0] / 2.0).cos(), (params[0] / 2.0).sin());
            [[c64(c, 0.0), c64(0.0, -s)], [c64(0.0, -s), c64(c, 0.0)]]
        }
        Ry => {
            let (c, s) = ((params[0] / 2.0).cos(), (params[0] / 2.0).sin());
            [[c64(c, 0.0), c64(-s, 0.0)], [c64(s, 0.0), c64(c, 0.0)]]
        }
        Rz => {
            let half = params[0] / 2.0;
            [
                [Complex64::from_polar_unit(-half), Complex64::ZERO],
                [Complex64::ZERO, Complex64::from_polar_unit(half)],
            ]
        }
        Phase => {
            [[Complex64::ONE, Complex64::ZERO], [Complex64::ZERO, Complex64::from_polar_unit(params[0])]]
        }
        U3 => {
            let (theta, phi, lambda) = (params[0], params[1], params[2]);
            let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
            [
                [c64(c, 0.0), Complex64::from_polar_unit(lambda).scale(-s)],
                [Complex64::from_polar_unit(phi).scale(s), Complex64::from_polar_unit(phi + lambda).scale(c)],
            ]
        }
        _ => return None,
    };
    Some(m)
}

/// Apply one instruction to the state. Measurements return `Some(bit)`;
/// everything else returns `None`. Barriers are no-ops.
pub fn apply_instruction(state: &mut StateVector, inst: &Instruction, rng: &mut impl Rng) -> Option<u8> {
    use GateKind::*;
    let q = &inst.qubits;
    match inst.gate {
        // Diagonal gates go through the phase fast path.
        Z => state.phase_where(1 << q[0], 0, PI),
        S => state.phase_where(1 << q[0], 0, FRAC_PI_2),
        Sdg => state.phase_where(1 << q[0], 0, -FRAC_PI_2),
        T => state.phase_where(1 << q[0], 0, FRAC_PI_4),
        Tdg => state.phase_where(1 << q[0], 0, -FRAC_PI_4),
        Phase => state.phase_where(1 << q[0], 0, inst.params[0]),
        Rz => {
            // Rz(θ) = e^{-iθ/2} · diag(1, e^{iθ})
            state.scale_all(Complex64::from_polar_unit(-inst.params[0] / 2.0));
            state.phase_where(1 << q[0], 0, inst.params[0]);
        }
        CZ => state.phase_where((1 << q[0]) | (1 << q[1]), 0, PI),
        CPhase => state.phase_where((1 << q[0]) | (1 << q[1]), 0, inst.params[0]),
        CCPhase => state.phase_where((1 << q[0]) | (1 << q[1]) | (1 << q[2]), 0, inst.params[0]),
        CRz => {
            let half = inst.params[0] / 2.0;
            state.phase_where((1 << q[0]) | (1 << q[1]), 0, half);
            state.phase_where(1 << q[0], 1 << q[1], -half);
        }
        // Dense single-qubit unitaries (optionally controlled).
        H | X | Y | Rx | Ry | U3 => {
            let m = single_qubit_matrix(inst.gate, &inst.params).expect("single-qubit gate");
            state.apply_single(q[0], m, 0);
        }
        CX | CY => {
            let base = if inst.gate == CX { X } else { Y };
            let m = single_qubit_matrix(base, &[]).expect("single-qubit gate");
            state.apply_single(q[1], m, 1 << q[0]);
        }
        CCX => {
            let m = single_qubit_matrix(X, &[]).expect("single-qubit gate");
            state.apply_single(q[2], m, (1 << q[0]) | (1 << q[1]));
        }
        Swap => state.apply_swap(q[0], q[1], 0),
        CSwap => state.apply_swap(q[1], q[2], 1 << q[0]),
        Measure => return Some(state.measure(q[0], rng)),
        Reset => state.reset(q[0], rng),
        Barrier => {}
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mat_mul(a: [[Complex64; 2]; 2], b: [[Complex64; 2]; 2]) -> [[Complex64; 2]; 2] {
        let mut out = [[Complex64::ZERO; 2]; 2];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = a[i][0] * b[0][j] + a[i][1] * b[1][j];
            }
        }
        out
    }

    fn dagger(m: [[Complex64; 2]; 2]) -> [[Complex64; 2]; 2] {
        [[m[0][0].conj(), m[1][0].conj()], [m[0][1].conj(), m[1][1].conj()]]
    }

    fn assert_identity(m: [[Complex64; 2]; 2]) {
        assert!(m[0][0].approx_eq(Complex64::ONE, 1e-12), "{:?}", m);
        assert!(m[1][1].approx_eq(Complex64::ONE, 1e-12), "{:?}", m);
        assert!(m[0][1].approx_eq(Complex64::ZERO, 1e-12), "{:?}", m);
        assert!(m[1][0].approx_eq(Complex64::ZERO, 1e-12), "{:?}", m);
    }

    #[test]
    fn all_single_qubit_matrices_are_unitary() {
        use GateKind::*;
        let cases: Vec<(GateKind, Vec<f64>)> = vec![
            (H, vec![]),
            (X, vec![]),
            (Y, vec![]),
            (Z, vec![]),
            (S, vec![]),
            (Sdg, vec![]),
            (T, vec![]),
            (Tdg, vec![]),
            (Rx, vec![0.37]),
            (Ry, vec![-1.2]),
            (Rz, vec![2.5]),
            (Phase, vec![0.9]),
            (U3, vec![0.3, 1.1, -0.7]),
        ];
        for (kind, params) in cases {
            let m = single_qubit_matrix(kind, &params).unwrap();
            assert_identity(mat_mul(m, dagger(m)));
        }
    }

    #[test]
    fn two_qubit_gates_have_no_single_matrix() {
        assert!(single_qubit_matrix(GateKind::CX, &[]).is_none());
        assert!(single_qubit_matrix(GateKind::Measure, &[]).is_none());
    }

    #[test]
    fn h_squared_is_identity() {
        let h = single_qubit_matrix(GateKind::H, &[]).unwrap();
        assert_identity(mat_mul(h, h));
    }

    #[test]
    fn rz_as_phase_matches_rz_matrix() {
        // Rz via the executor fast path must equal applying the Rz matrix.
        let theta = 0.734;
        let mut rng = StdRng::seed_from_u64(0);

        let mut a = StateVector::new(2);
        let h = single_qubit_matrix(GateKind::H, &[]).unwrap();
        a.apply_single(0, h, 0);
        a.apply_single(1, h, 0);
        let mut b = StateVector::new(2);
        b.apply_single(0, h, 0);
        b.apply_single(1, h, 0);

        apply_instruction(&mut a, &Instruction::new(GateKind::Rz, vec![1], vec![theta]), &mut rng);
        let m = single_qubit_matrix(GateKind::Rz, &[theta]).unwrap();
        b.apply_single(1, m, 0);

        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert!(x.approx_eq(*y, 1e-12));
        }
    }

    #[test]
    fn crz_phases_match_controlled_rz_matrix() {
        let theta = -1.3;
        let mut rng = StdRng::seed_from_u64(0);
        let h = single_qubit_matrix(GateKind::H, &[]).unwrap();

        let mut a = StateVector::new(2);
        a.apply_single(0, h, 0);
        a.apply_single(1, h, 0);
        let mut b = StateVector::new(2);
        b.apply_single(0, h, 0);
        b.apply_single(1, h, 0);

        apply_instruction(&mut a, &Instruction::new(GateKind::CRz, vec![0, 1], vec![theta]), &mut rng);
        let m = single_qubit_matrix(GateKind::Rz, &[theta]).unwrap();
        b.apply_single(1, m, 1 << 0);

        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert!(x.approx_eq(*y, 1e-12));
        }
    }

    #[test]
    fn ccx_flips_only_when_both_controls_set() {
        let mut rng = StdRng::seed_from_u64(0);
        // |110⟩: q1=1, q2=1 (controls), q0 = target? Use controls q0,q1 target q2.
        let x = Instruction::new(GateKind::X, vec![0], vec![]);
        let ccx = Instruction::new(GateKind::CCX, vec![0, 1, 2], vec![]);

        // Only q0 set: no flip.
        let mut sv = StateVector::new(3);
        apply_instruction(&mut sv, &x, &mut rng);
        apply_instruction(&mut sv, &ccx, &mut rng);
        assert!(sv.amp(0b001).norm_sqr() > 0.999);

        // q0 and q1 set: q2 flips.
        let mut sv = StateVector::new(3);
        apply_instruction(&mut sv, &x, &mut rng);
        apply_instruction(&mut sv, &Instruction::new(GateKind::X, vec![1], vec![]), &mut rng);
        apply_instruction(&mut sv, &ccx, &mut rng);
        assert!(sv.amp(0b111).norm_sqr() > 0.999);
    }

    #[test]
    fn cswap_swaps_only_under_control() {
        let mut rng = StdRng::seed_from_u64(0);
        let cswap = Instruction::new(GateKind::CSwap, vec![2, 0, 1], vec![]);
        // q0=1, control q2=0 → unchanged.
        let mut sv = StateVector::new(3);
        apply_instruction(&mut sv, &Instruction::new(GateKind::X, vec![0], vec![]), &mut rng);
        apply_instruction(&mut sv, &cswap, &mut rng);
        assert!(sv.amp(0b001).norm_sqr() > 0.999);
        // control q2=1 → q0,q1 swap.
        let mut sv = StateVector::new(3);
        apply_instruction(&mut sv, &Instruction::new(GateKind::X, vec![0], vec![]), &mut rng);
        apply_instruction(&mut sv, &Instruction::new(GateKind::X, vec![2], vec![]), &mut rng);
        apply_instruction(&mut sv, &cswap, &mut rng);
        assert!(sv.amp(0b110).norm_sqr() > 0.999);
    }
}
