//! Gate matrices and the mapping from IR instructions to state-vector
//! kernels.

use crate::complex::{c64, Complex64};
use crate::state::StateVector;
use qcor_circuit::{GateKind, Instruction};
use rand::Rng;
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

/// The 2×2 matrix of a single-qubit unitary gate, if `kind` is one.
/// Parameters are taken from `params` as the gate requires.
pub fn single_qubit_matrix(kind: GateKind, params: &[f64]) -> Option<[[Complex64; 2]; 2]> {
    use GateKind::*;
    let m = match kind {
        H => {
            let s = c64(std::f64::consts::FRAC_1_SQRT_2, 0.0);
            [[s, s], [s, -s]]
        }
        X => [[Complex64::ZERO, Complex64::ONE], [Complex64::ONE, Complex64::ZERO]],
        Y => [[Complex64::ZERO, c64(0.0, -1.0)], [Complex64::I, Complex64::ZERO]],
        Z => [[Complex64::ONE, Complex64::ZERO], [Complex64::ZERO, c64(-1.0, 0.0)]],
        S => [[Complex64::ONE, Complex64::ZERO], [Complex64::ZERO, Complex64::I]],
        Sdg => [[Complex64::ONE, Complex64::ZERO], [Complex64::ZERO, c64(0.0, -1.0)]],
        T => [[Complex64::ONE, Complex64::ZERO], [Complex64::ZERO, Complex64::from_polar_unit(FRAC_PI_4)]],
        Tdg => [[Complex64::ONE, Complex64::ZERO], [Complex64::ZERO, Complex64::from_polar_unit(-FRAC_PI_4)]],
        Rx => {
            let (c, s) = ((params[0] / 2.0).cos(), (params[0] / 2.0).sin());
            [[c64(c, 0.0), c64(0.0, -s)], [c64(0.0, -s), c64(c, 0.0)]]
        }
        Ry => {
            let (c, s) = ((params[0] / 2.0).cos(), (params[0] / 2.0).sin());
            [[c64(c, 0.0), c64(-s, 0.0)], [c64(s, 0.0), c64(c, 0.0)]]
        }
        Rz => {
            let half = params[0] / 2.0;
            [
                [Complex64::from_polar_unit(-half), Complex64::ZERO],
                [Complex64::ZERO, Complex64::from_polar_unit(half)],
            ]
        }
        Phase => {
            [[Complex64::ONE, Complex64::ZERO], [Complex64::ZERO, Complex64::from_polar_unit(params[0])]]
        }
        U3 => {
            let (theta, phi, lambda) = (params[0], params[1], params[2]);
            let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
            [
                [c64(c, 0.0), Complex64::from_polar_unit(lambda).scale(-s)],
                [Complex64::from_polar_unit(phi).scale(s), Complex64::from_polar_unit(phi + lambda).scale(c)],
            ]
        }
        _ => return None,
    };
    Some(m)
}

// ---- small matrix algebra shared by the fuser and the tests -----------
//
// The two-qubit block fuser composes gates as explicit 2×2 and 4×4
// matrices. The pair-basis convention everywhere is: for a fused pair
// `(t0, t1)` with `t0 < t1`, basis index `s` has bit 0 = qubit `t0` and
// bit 1 = qubit `t1` (little-endian, matching the amplitude indexing).

/// `a · b` for 2×2 complex matrices (apply `b` first, then `a`).
pub fn mat2_mul(a: [[Complex64; 2]; 2], b: [[Complex64; 2]; 2]) -> [[Complex64; 2]; 2] {
    let mut out = [[Complex64::ZERO; 2]; 2];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = a[i][0] * b[0][j] + a[i][1] * b[1][j];
        }
    }
    out
}

/// `a · b` for 4×4 complex matrices (apply `b` first, then `a`).
pub fn mat4_mul(a: &[[Complex64; 4]; 4], b: &[[Complex64; 4]; 4]) -> [[Complex64; 4]; 4] {
    let mut out = [[Complex64::ZERO; 4]; 4];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            let mut acc = Complex64::ZERO;
            for k in 0..4 {
                acc += a[i][k] * b[k][j];
            }
            *cell = acc;
        }
    }
    out
}

/// The 4×4 identity.
pub fn identity4() -> [[Complex64; 4]; 4] {
    let mut m = [[Complex64::ZERO; 4]; 4];
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = Complex64::ONE;
    }
    m
}

/// The swap permutation on a pair: exchanges basis states `01` and `10`.
pub fn swap4() -> [[Complex64; 4]; 4] {
    let mut m = [[Complex64::ZERO; 4]; 4];
    for (s, row) in m.iter_mut().enumerate() {
        let flipped = ((s & 1) << 1) | ((s >> 1) & 1);
        row[flipped] = Complex64::ONE;
    }
    m
}

/// Embed a single-qubit unitary into a pair block: `m` acts on pair bit
/// `pos` (0 = low qubit `t0`, 1 = high qubit `t1`), conditioned on the
/// in-pair control bits of `ctrl_s` (a mask over pair-basis index bits;
/// must not include `1 << pos`). Rows/columns where the in-pair controls
/// are unsatisfied pass through unchanged.
pub fn embed_pair_single(pos: usize, ctrl_s: usize, m: [[Complex64; 2]; 2]) -> [[Complex64; 4]; 4] {
    debug_assert!(pos < 2 && ctrl_s & (1 << pos) == 0);
    let mut out = [[Complex64::ZERO; 4]; 4];
    for (s_out, row) in out.iter_mut().enumerate() {
        for (s_in, cell) in row.iter_mut().enumerate() {
            *cell = if s_in & ctrl_s != ctrl_s {
                // In-pair controls unsatisfied: the column passes through.
                if s_in == s_out {
                    Complex64::ONE
                } else {
                    Complex64::ZERO
                }
            } else if s_out & !(1 << pos) == s_in & !(1 << pos) {
                // Controls satisfied and the non-target pair bit agrees:
                // the 2x2 entry for the target bit transition.
                m[(s_out >> pos) & 1][(s_in >> pos) & 1]
            } else {
                Complex64::ZERO
            };
        }
    }
    out
}

/// A diagonal phase block over a pair: multiplies basis state `s` by
/// `e^{iθ}` where `s & set_s == set_s` and `s & clear_s == 0` (masks in
/// pair-basis index space), and leaves the rest untouched.
pub fn pair_phase_matrix(set_s: usize, clear_s: usize, theta: f64) -> [[Complex64; 4]; 4] {
    let phase = Complex64::from_polar_unit(theta);
    let mut out = [[Complex64::ZERO; 4]; 4];
    for (s, row) in out.iter_mut().enumerate() {
        row[s] = if s & set_s == set_s && s & clear_s == 0 { phase } else { Complex64::ONE };
    }
    out
}

/// Apply one instruction to the state. Measurements return `Some(bit)`;
/// everything else returns `None`. Barriers are no-ops.
pub fn apply_instruction(state: &mut StateVector, inst: &Instruction, rng: &mut impl Rng) -> Option<u8> {
    use GateKind::*;
    let q = &inst.qubits;
    match inst.gate {
        // Diagonal gates go through the phase fast path.
        Z => state.phase_where(1 << q[0], 0, PI),
        S => state.phase_where(1 << q[0], 0, FRAC_PI_2),
        Sdg => state.phase_where(1 << q[0], 0, -FRAC_PI_2),
        T => state.phase_where(1 << q[0], 0, FRAC_PI_4),
        Tdg => state.phase_where(1 << q[0], 0, -FRAC_PI_4),
        Phase => state.phase_where(1 << q[0], 0, inst.params[0]),
        Rz => {
            // Rz(θ) = e^{-iθ/2} · diag(1, e^{iθ})
            state.scale_all(Complex64::from_polar_unit(-inst.params[0] / 2.0));
            state.phase_where(1 << q[0], 0, inst.params[0]);
        }
        CZ => state.phase_where((1 << q[0]) | (1 << q[1]), 0, PI),
        CPhase => state.phase_where((1 << q[0]) | (1 << q[1]), 0, inst.params[0]),
        CCPhase => state.phase_where((1 << q[0]) | (1 << q[1]) | (1 << q[2]), 0, inst.params[0]),
        CRz => {
            let half = inst.params[0] / 2.0;
            state.phase_where((1 << q[0]) | (1 << q[1]), 0, half);
            state.phase_where(1 << q[0], 1 << q[1], -half);
        }
        // Dense single-qubit unitaries (optionally controlled).
        H | X | Y | Rx | Ry | U3 => {
            let m = single_qubit_matrix(inst.gate, &inst.params).expect("single-qubit gate");
            state.apply_single(q[0], m, 0);
        }
        CX | CY => {
            let base = if inst.gate == CX { X } else { Y };
            let m = single_qubit_matrix(base, &[]).expect("single-qubit gate");
            state.apply_single(q[1], m, 1 << q[0]);
        }
        CCX => {
            let m = single_qubit_matrix(X, &[]).expect("single-qubit gate");
            state.apply_single(q[2], m, (1 << q[0]) | (1 << q[1]));
        }
        Swap => state.apply_swap(q[0], q[1], 0),
        CSwap => state.apply_swap(q[1], q[2], 1 << q[0]),
        Measure => return Some(state.measure(q[0], rng)),
        Reset => state.reset(q[0], rng),
        Barrier => {}
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mat_mul(a: [[Complex64; 2]; 2], b: [[Complex64; 2]; 2]) -> [[Complex64; 2]; 2] {
        mat2_mul(a, b)
    }

    fn dagger(m: [[Complex64; 2]; 2]) -> [[Complex64; 2]; 2] {
        [[m[0][0].conj(), m[1][0].conj()], [m[0][1].conj(), m[1][1].conj()]]
    }

    fn assert_identity(m: [[Complex64; 2]; 2]) {
        assert!(m[0][0].approx_eq(Complex64::ONE, 1e-12), "{:?}", m);
        assert!(m[1][1].approx_eq(Complex64::ONE, 1e-12), "{:?}", m);
        assert!(m[0][1].approx_eq(Complex64::ZERO, 1e-12), "{:?}", m);
        assert!(m[1][0].approx_eq(Complex64::ZERO, 1e-12), "{:?}", m);
    }

    #[test]
    fn all_single_qubit_matrices_are_unitary() {
        use GateKind::*;
        let cases: Vec<(GateKind, Vec<f64>)> = vec![
            (H, vec![]),
            (X, vec![]),
            (Y, vec![]),
            (Z, vec![]),
            (S, vec![]),
            (Sdg, vec![]),
            (T, vec![]),
            (Tdg, vec![]),
            (Rx, vec![0.37]),
            (Ry, vec![-1.2]),
            (Rz, vec![2.5]),
            (Phase, vec![0.9]),
            (U3, vec![0.3, 1.1, -0.7]),
        ];
        for (kind, params) in cases {
            let m = single_qubit_matrix(kind, &params).unwrap();
            assert_identity(mat_mul(m, dagger(m)));
        }
    }

    #[test]
    fn two_qubit_gates_have_no_single_matrix() {
        assert!(single_qubit_matrix(GateKind::CX, &[]).is_none());
        assert!(single_qubit_matrix(GateKind::Measure, &[]).is_none());
    }

    #[test]
    fn h_squared_is_identity() {
        let h = single_qubit_matrix(GateKind::H, &[]).unwrap();
        assert_identity(mat_mul(h, h));
    }

    #[test]
    fn rz_as_phase_matches_rz_matrix() {
        // Rz via the executor fast path must equal applying the Rz matrix.
        let theta = 0.734;
        let mut rng = StdRng::seed_from_u64(0);

        let mut a = StateVector::new(2);
        let h = single_qubit_matrix(GateKind::H, &[]).unwrap();
        a.apply_single(0, h, 0);
        a.apply_single(1, h, 0);
        let mut b = StateVector::new(2);
        b.apply_single(0, h, 0);
        b.apply_single(1, h, 0);

        apply_instruction(&mut a, &Instruction::new(GateKind::Rz, vec![1], vec![theta]), &mut rng);
        let m = single_qubit_matrix(GateKind::Rz, &[theta]).unwrap();
        b.apply_single(1, m, 0);

        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert!(x.approx_eq(*y, 1e-12));
        }
    }

    #[test]
    fn crz_phases_match_controlled_rz_matrix() {
        let theta = -1.3;
        let mut rng = StdRng::seed_from_u64(0);
        let h = single_qubit_matrix(GateKind::H, &[]).unwrap();

        let mut a = StateVector::new(2);
        a.apply_single(0, h, 0);
        a.apply_single(1, h, 0);
        let mut b = StateVector::new(2);
        b.apply_single(0, h, 0);
        b.apply_single(1, h, 0);

        apply_instruction(&mut a, &Instruction::new(GateKind::CRz, vec![0, 1], vec![theta]), &mut rng);
        let m = single_qubit_matrix(GateKind::Rz, &[theta]).unwrap();
        b.apply_single(1, m, 1 << 0);

        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert!(x.approx_eq(*y, 1e-12));
        }
    }

    #[test]
    fn ccx_flips_only_when_both_controls_set() {
        let mut rng = StdRng::seed_from_u64(0);
        // |110⟩: q1=1, q2=1 (controls), q0 = target? Use controls q0,q1 target q2.
        let x = Instruction::new(GateKind::X, vec![0], vec![]);
        let ccx = Instruction::new(GateKind::CCX, vec![0, 1, 2], vec![]);

        // Only q0 set: no flip.
        let mut sv = StateVector::new(3);
        apply_instruction(&mut sv, &x, &mut rng);
        apply_instruction(&mut sv, &ccx, &mut rng);
        assert!(sv.amp(0b001).norm_sqr() > 0.999);

        // q0 and q1 set: q2 flips.
        let mut sv = StateVector::new(3);
        apply_instruction(&mut sv, &x, &mut rng);
        apply_instruction(&mut sv, &Instruction::new(GateKind::X, vec![1], vec![]), &mut rng);
        apply_instruction(&mut sv, &ccx, &mut rng);
        assert!(sv.amp(0b111).norm_sqr() > 0.999);
    }

    #[test]
    fn embed_pair_single_matches_kronecker_structure() {
        let h = single_qubit_matrix(GateKind::H, &[]).unwrap();
        // H on the low slot, unconditioned: block-diagonal in the high bit.
        let m = embed_pair_single(0, 0, h);
        for hi in 0..2 {
            for (r, row) in h.iter().enumerate() {
                for (c, want) in row.iter().enumerate() {
                    assert_eq!(m[(hi << 1) | r][(hi << 1) | c], *want);
                }
            }
        }
        // X on the high slot conditioned on the low bit = CNOT in pair basis.
        let x = single_qubit_matrix(GateKind::X, &[]).unwrap();
        let cnot = embed_pair_single(1, 0b01, x);
        for s_in in 0..4 {
            let s_out = if s_in & 1 == 1 { s_in ^ 0b10 } else { s_in };
            for (r, row) in cnot.iter().enumerate() {
                let want = if r == s_out { Complex64::ONE } else { Complex64::ZERO };
                assert_eq!(row[s_in], want, "s_in {s_in} row {r}");
            }
        }
    }

    #[test]
    fn swap4_composes_to_identity_and_conjugates_embeddings() {
        let sw = swap4();
        let id = mat4_mul(&sw, &sw);
        assert_eq!(id, identity4());
        // Swap · (U on slot 0) · Swap = U on slot 1.
        let u = single_qubit_matrix(GateKind::U3, &[0.4, -0.9, 1.7]).unwrap();
        let lhs = mat4_mul(&sw, &mat4_mul(&embed_pair_single(0, 0, u), &sw));
        let rhs = embed_pair_single(1, 0, u);
        for (lr, rr) in lhs.iter().zip(rhs.iter()) {
            for (l, r) in lr.iter().zip(rr.iter()) {
                assert!(l.approx_eq(*r, 1e-15), "{l} vs {r}");
            }
        }
    }

    #[test]
    fn pair_phase_matrix_targets_masked_states_only() {
        let theta = 0.613;
        let m = pair_phase_matrix(0b10, 0b01, theta);
        let phase = Complex64::from_polar_unit(theta);
        for (s, row) in m.iter().enumerate() {
            let want = if s == 0b10 { phase } else { Complex64::ONE };
            assert_eq!(row[s], want, "s {s}");
        }
    }

    #[test]
    fn cswap_swaps_only_under_control() {
        let mut rng = StdRng::seed_from_u64(0);
        let cswap = Instruction::new(GateKind::CSwap, vec![2, 0, 1], vec![]);
        // q0=1, control q2=0 → unchanged.
        let mut sv = StateVector::new(3);
        apply_instruction(&mut sv, &Instruction::new(GateKind::X, vec![0], vec![]), &mut rng);
        apply_instruction(&mut sv, &cswap, &mut rng);
        assert!(sv.amp(0b001).norm_sqr() > 0.999);
        // control q2=1 → q0,q1 swap.
        let mut sv = StateVector::new(3);
        apply_instruction(&mut sv, &Instruction::new(GateKind::X, vec![0], vec![]), &mut rng);
        apply_instruction(&mut sv, &Instruction::new(GateKind::X, vec![2], vec![]), &mut rng);
        apply_instruction(&mut sv, &cswap, &mut rng);
        assert!(sv.amp(0b110).norm_sqr() > 0.999);
    }
}
