//! The state vector and its (optionally parallel) update kernels.
//!
//! A [`StateVector`] stores the 2^n amplitudes of an n-qubit register and
//! exposes the primitive updates gates compile to: single-qubit matrix
//! application with an arbitrary control mask, conditional phase rotation,
//! (controlled) swaps, controlled classical permutations, measurement and
//! reset.
//!
//! Every kernel loops over amplitude indices; when the state's
//! [`ThreadPool`] has more than one thread the loop is work-shared over the
//! pool, exactly as Quantum++'s OpenMP pragmas work-share its amplitude
//! loops. This is the paper's "inner simulator level parallelism". As in
//! Quantum++ the dispatch is unconditional by default (see
//! [`StateVector::set_par_threshold`]), so small registers pay the fork/join
//! overhead that the paper's evaluation (§VI-A) observes when oversubscribing
//! a kernel with threads.
//!
//! # Control-aware index enumeration
//!
//! Unlike Quantum++ (and our earlier port of it), controlled kernels do not
//! scan all indices and branch-skip the ones whose control bits are unset.
//! Instead they enumerate exactly the indices that satisfy the control
//! mask, by inserting the fixed bits (controls = 1, cleared bits = 0) into
//! a compressed loop counter at their sorted positions ([`BitInserts`]).
//! A kernel with `c` control bits therefore executes `2^(n-1-c)` loop
//! iterations instead of `2^(n-1)` — a CX does half the iterations of an
//! H, a CCX a quarter — and the loop body is branch-free. The executed
//! iteration counts are reported to [`crate::stats`], which is what the
//! `gatefuse_guard` CI gate asserts on.
//!
//! Measurement reductions ([`StateVector::prob_one`], `norm_sqr`) fold
//! fixed-size chunks in a fixed order via
//! [`ThreadPool::parallel_reduce_ordered`], so their sums are bit-identical
//! on any pool size — the inner-parallel path no longer depends on
//! floating-point fold order.
//!
//! # Loop shape and memory layout
//!
//! Amplitudes are stored interleaved (`re, im` pairs — AoS). The
//! flop-heavy kernels ([`StateVector::apply_single`],
//! [`StateVector::apply_pair`]) restructure their uncontrolled sweeps into
//! **contiguous runs**: instead of re-expanding the compressed counter per
//! iteration, the loop emits maximal unit-stride spans (`2^t` pairs at a
//! time for target `t`), which the compiler can autovectorize and the
//! prefetcher can stream. The `layout_probe` bench bin compares this shape
//! against a split re/im (SoA) sweep; on the measured hardware the
//! contiguous-run AoS sweep was at parity or better, so the interleaved
//! layout is kept — it is also what keeps `amplitudes()` zero-copy (see
//! `BENCH_layout.json` for the recorded numbers).
//!
//! # Cache-blocked replay
//!
//! For large states the dominant cost is streaming the full vector through
//! the cache hierarchy once per gate. [`StateVector::for_each_block`]
//! partitions the amplitude array into contiguous cache-sized blocks and
//! hands each block to a closure exactly once (work-shared over the pool),
//! letting the compiled executor apply an entire run of block-local fused
//! kernels while each block is L2-resident — the state streams through
//! memory once per *run*, not once per gate.

#[cfg(test)]
use crate::complex::c64;
use crate::complex::Complex64;
use crate::stats::KernelClass;
use qcor_pool::ThreadPool;
use rand::Rng;
use std::ops::Range;
use std::sync::Arc;

/// Raw pointer to the amplitude buffer, shared across pool workers.
///
/// SAFETY invariant: every kernel that uses this wrapper writes each index
/// from exactly one chunk (indices are partitioned by `parallel_for`), so
/// no two threads alias a write.
#[derive(Clone, Copy)]
struct AmpsPtr(*mut Complex64);
unsafe impl Send for AmpsPtr {}
unsafe impl Sync for AmpsPtr {}

impl AmpsPtr {
    /// SAFETY: caller guarantees `i` is in bounds and not concurrently
    /// written by another thread.
    #[inline]
    unsafe fn at(self, i: usize) -> &'static mut Complex64 {
        unsafe { &mut *self.0.add(i) }
    }

    /// SAFETY: caller guarantees `start..start + len` is in bounds and not
    /// concurrently accessed by another thread.
    #[inline]
    unsafe fn slice(self, start: usize, len: usize) -> &'static mut [Complex64] {
        unsafe { std::slice::from_raw_parts_mut(self.0.add(start), len) }
    }
}

/// Bit-insertion table: expands a compressed loop counter into a full basis
/// index by inserting fixed bits at sorted positions.
///
/// `ones_mask` positions are inserted as 1 (control bits), `zeros_mask`
/// positions as 0 (the target bit of a pair loop, or cleared-control bits).
/// Iterating `k` over `0..len >> (ones + zeros).count_ones()` and expanding
/// enumerates exactly the indices with those bits fixed — no scan, no
/// branch. Expansion is injective, so parallel chunks never alias a write.
///
/// The table is a fixed inline array (a state holds ≤ 30 qubits, so ≤ 30
/// inserted bits): building one per kernel invocation touches no heap,
/// keeping compiled replay genuinely allocation-free.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BitInserts {
    /// `(low_mask, fixed_bit)` per inserted position, ascending. Positions
    /// are absolute in the progressively expanded index, which is why
    /// ascending insertion order is correct.
    steps: [(usize, usize); 32],
    len: usize,
}

impl BitInserts {
    pub(crate) fn new(ones_mask: usize, zeros_mask: usize) -> Self {
        debug_assert_eq!(ones_mask & zeros_mask, 0, "a bit cannot be fixed to both 0 and 1");
        let mut steps = [(0usize, 0usize); 32];
        let mut len = 0usize;
        // Merge the two mask bit-streams in ascending position order
        // (trailing_zeros iteration yields each mask low-to-high).
        let (mut ones, mut zeros) = (ones_mask, zeros_mask);
        while ones != 0 || zeros != 0 {
            let p1 = if ones != 0 { ones.trailing_zeros() as usize } else { usize::MAX };
            let p0 = if zeros != 0 { zeros.trailing_zeros() as usize } else { usize::MAX };
            let (p, bit) = if p1 < p0 {
                ones &= ones - 1;
                (p1, 1usize << p1)
            } else {
                zeros &= zeros - 1;
                (p0, 0)
            };
            steps[len] = ((1usize << p) - 1, bit);
            len += 1;
        }
        BitInserts { steps, len }
    }

    /// Number of inserted (fixed) bits.
    pub(crate) fn width(&self) -> usize {
        self.len
    }

    #[inline]
    pub(crate) fn expand(&self, mut k: usize) -> usize {
        for &(low, bit) in &self.steps[..self.len] {
            k = ((k & !low) << 1) | bit | (k & low);
        }
        k
    }
}

/// An n-qubit pure state.
///
/// Bit convention is little-endian: basis index `i` assigns qubit `q` the
/// bit `(i >> q) & 1`.
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<Complex64>,
    pool: Arc<ThreadPool>,
    par_threshold: usize,
    /// When `Some(s)` with `s > 1`, every kernel sweep is split into
    /// exactly `s` contiguous compressed-index ranges submitted to the
    /// pool as batch jobs (amplitude sharding) instead of the classic
    /// `parallel_for` dispatch. `None` = sharding off.
    amp_shards: Option<usize>,
    /// Reusable destination buffer for permutation kernels, allocated on
    /// first use and kept for the lifetime of the state so repeated
    /// `apply_controlled_permutation` calls (Shor's modular exponentiation)
    /// perform zero steady-state allocations.
    scratch: Vec<Complex64>,
    /// How many times `scratch` has been (re)allocated — asserted by the
    /// `gatefuse_guard` zero-steady-state-allocation check.
    scratch_allocs: usize,
}

impl std::fmt::Debug for StateVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateVector")
            .field("num_qubits", &self.num_qubits)
            .field("pool_threads", &self.pool.num_threads())
            .finish()
    }
}

impl StateVector {
    /// |0...0⟩ on `num_qubits` qubits, simulated sequentially.
    pub fn new(num_qubits: usize) -> Self {
        Self::with_pool(num_qubits, ThreadPool::sequential())
    }

    /// |0...0⟩ with amplitude loops work-shared over `pool`.
    pub fn with_pool(num_qubits: usize, pool: Arc<ThreadPool>) -> Self {
        assert!(num_qubits <= 30, "state vector of {num_qubits} qubits will not fit in memory");
        let mut amps = vec![Complex64::ZERO; 1usize << num_qubits];
        amps[0] = Complex64::ONE;
        StateVector {
            num_qubits,
            amps,
            pool,
            par_threshold: 2,
            amp_shards: None,
            scratch: Vec::new(),
            scratch_allocs: 0,
        }
    }

    /// Construct from explicit amplitudes (must have power-of-two length and
    /// unit norm up to `1e-9`).
    pub fn from_amplitudes(amps: Vec<Complex64>) -> Self {
        assert!(amps.len().is_power_of_two() && !amps.is_empty(), "length must be a power of two");
        let n = amps.len().trailing_zeros() as usize;
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-9, "state must be normalized (got norm² = {norm})");
        StateVector {
            num_qubits: n,
            amps,
            pool: ThreadPool::sequential(),
            par_threshold: 2,
            amp_shards: None,
            scratch: Vec::new(),
            scratch_allocs: 0,
        }
    }

    /// Construct from raw amplitudes (no unit-norm check — a density
    /// matrix's vec(ρ) is not a unit vector mid-Kraus-sum), inheriting
    /// this state's pool and dispatch configuration — so a Kraus branch
    /// built from a pooled density matrix keeps work-sharing its sweeps
    /// instead of silently dropping to the sequential pool.
    pub(crate) fn raw_with_amplitudes_like(&self, amps: Vec<Complex64>) -> Self {
        assert!(amps.len().is_power_of_two() && !amps.is_empty());
        let n = amps.len().trailing_zeros() as usize;
        StateVector {
            num_qubits: n,
            amps,
            pool: Arc::clone(&self.pool),
            par_threshold: self.par_threshold,
            amp_shards: self.amp_shards,
            scratch: Vec::new(),
            scratch_allocs: 0,
        }
    }

    /// Reset to |0...0⟩ without reallocating.
    pub fn reset_to_zero(&mut self) {
        let ptr = AmpsPtr(self.amps.as_mut_ptr());
        self.dispatch(self.amps.len(), |range| {
            for i in range {
                // SAFETY: disjoint indices per chunk.
                unsafe { *ptr.at(i) = Complex64::ZERO };
            }
        });
        self.amps[0] = Complex64::ONE;
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of amplitudes (2^n).
    pub fn len(&self) -> usize {
        self.amps.len()
    }

    /// Always false — a state vector has at least one amplitude.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The amplitudes, basis-index order.
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Amplitude of basis state `i`.
    pub fn amp(&self, i: usize) -> Complex64 {
        self.amps[i]
    }

    /// The thread pool used by the kernels.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }

    /// Set the minimum number of loop iterations before a kernel is
    /// dispatched to the pool (default 2, i.e. effectively always when the
    /// pool has more than one thread — matching Quantum++'s unconditional
    /// OpenMP work-sharing). Raise it to amortize fork/join overhead on
    /// small registers.
    pub fn set_par_threshold(&mut self, items: usize) {
        self.par_threshold = items.max(1);
    }

    /// Set the amplitude-shard count: `Some(s)` with `s > 1` splits every
    /// kernel sweep into exactly `s` contiguous compressed-index ranges
    /// submitted to the pool as batch jobs; `None` (the default) keeps the
    /// classic `parallel_for` dispatch. The shard partition is a pure
    /// function of `(len, s)` and each job's per-index arithmetic is
    /// partition-independent (writes are disjoint — expansion is
    /// injective), so sharded amplitudes are bit-identical to sequential
    /// replay on any pool size.
    pub fn set_amp_shards(&mut self, shards: Option<usize>) {
        self.amp_shards = shards.filter(|&s| s > 1);
    }

    /// The configured amplitude-shard count, if sharding is on.
    pub fn amp_shards(&self) -> Option<usize> {
        self.amp_shards
    }

    /// Work-share `f` over `0..len` when profitable, else run inline.
    ///
    /// With amplitude sharding on, the range is instead split into exactly
    /// `s` balanced contiguous jobs handed to [`ThreadPool::submit_batch`]:
    /// nested calls from pool-owned chunk states then fan out onto leftover
    /// team capacity, and idle workers may steal shard jobs from the batch
    /// tail. Kernels iterate the *compressed* index space here, so a job's
    /// contiguous `k`-range expands to both halves of every amplitude pair
    /// it touches — the pairwise-exchange step needs no cross-job
    /// communication and results stay bit-identical on any pool size.
    #[inline]
    fn dispatch<F: Fn(Range<usize>) + Sync>(&self, len: usize, f: F) {
        if let Some(shards) = self.amp_shards {
            if len >= shards {
                crate::stats::record_shard_jobs(shards as u64);
                let f = &f;
                let jobs: Vec<_> = (0..shards)
                    .map(|s| {
                        let (lo, hi) = (s * len / shards, (s + 1) * len / shards);
                        move || f(lo..hi)
                    })
                    .collect();
                self.pool.submit_batch(jobs);
                return;
            }
        }
        if self.pool.num_threads() > 1 && len >= self.par_threshold {
            self.pool.parallel_for(0..len, f);
        } else {
            f(0..len);
        }
    }

    /// Record one pairwise-exchange sweep: amplitude sharding is on and the
    /// pair stride spans at least one shard of the raw amplitude space, so
    /// every shard job updates pair partners outside its own contiguous raw
    /// range (it owns both halves of each of its pairs).
    #[inline]
    fn note_shard_exchange(&self, stride: usize) {
        if let Some(shards) = self.amp_shards {
            if stride >= self.amps.len().div_ceil(shards) {
                crate::stats::record_shard_exchange();
            }
        }
    }

    /// Fixed chunk size of the ordered measurement reductions. The
    /// partition is a pure function of the loop length (never the pool
    /// size), so reduction sums are bit-identical on any team — see
    /// [`ThreadPool::parallel_reduce_ordered`].
    const REDUCE_GRAIN: usize = 1 << 12;

    /// Sum a per-index quantity over `0..len` with a **fixed** chunk
    /// partition and fold order: work-shared when profitable, but
    /// bit-identical regardless of pool size or scheduling.
    #[inline]
    fn reduce<F: Fn(Range<usize>) -> f64 + Sync>(&self, len: usize, f: F) -> f64 {
        let pool = if self.pool.num_threads() > 1 && len >= self.par_threshold {
            Arc::clone(&self.pool)
        } else {
            // Same partition, evaluated inline in chunk order.
            ThreadPool::sequential()
        };
        pool.parallel_reduce_ordered(0..len, Self::REDUCE_GRAIN, 0.0, f, |a, b| a + b)
    }

    /// Apply a single-qubit matrix `m` (row-major `[[m00,m01],[m10,m11]]`) to
    /// qubit `t`, restricted to basis states where every bit of
    /// `ctrl_mask` is set (`ctrl_mask` must not include bit `t`; 0 means
    /// no controls).
    ///
    /// Control-aware: only the `2^(n-1-c)` amplitude pairs satisfying the
    /// `c` control bits are visited (no scan-and-skip).
    pub fn apply_single(&mut self, t: usize, m: [[Complex64; 2]; 2], ctrl_mask: usize) {
        debug_assert!(t < self.num_qubits);
        debug_assert_eq!(ctrl_mask & (1 << t), 0, "control mask must exclude the target");
        let stride = 1usize << t;
        let inserts = BitInserts::new(ctrl_mask, stride);
        let pairs = self.amps.len() >> inserts.width();
        crate::stats::record_iterations(KernelClass::Dense, pairs);
        self.note_shard_exchange(stride);
        let ptr = AmpsPtr(self.amps.as_mut_ptr());
        if ctrl_mask == 0 {
            // Uncontrolled sweep: emit maximal contiguous runs (the `2^t`
            // pairs sharing their high bits) so the inner loop is
            // unit-stride and autovectorizable. The per-pair arithmetic is
            // the same expression as the general path, so amplitudes are
            // bit-identical whichever path runs.
            let low_mask = stride - 1;
            self.dispatch(pairs, |range| {
                let mut k = range.start;
                while k < range.end {
                    let run = (stride - (k & low_mask)).min(range.end - k);
                    let i0 = ((k & !low_mask) << 1) | (k & low_mask);
                    for i in i0..i0 + run {
                        let j = i | stride;
                        // SAFETY: (i, j) pairs are disjoint across k values
                        // (expansion is injective).
                        let (a, b) = unsafe { (*ptr.at(i), *ptr.at(j)) };
                        unsafe {
                            *ptr.at(i) = m[0][0] * a + m[0][1] * b;
                            *ptr.at(j) = m[1][0] * a + m[1][1] * b;
                        }
                    }
                    k += run;
                }
            });
            return;
        }
        self.dispatch(pairs, |range| {
            for k in range {
                let i = inserts.expand(k);
                let j = i | stride;
                // SAFETY: (i, j) pairs are disjoint across k values
                // (expansion is injective).
                let (a, b) = unsafe { (*ptr.at(i), *ptr.at(j)) };
                unsafe {
                    *ptr.at(i) = m[0][0] * a + m[0][1] * b;
                    *ptr.at(j) = m[1][0] * a + m[1][1] * b;
                }
            }
        });
    }

    /// Apply a two-qubit matrix `m` (row-major, basis index
    /// `s = bit(t1) << 1 | bit(t0)`) to the qubit pair `(t0, t1)` with
    /// `t0 < t1`, restricted to basis states where every bit of
    /// `ctrl_mask` is set (`ctrl_mask` must not include either pair bit).
    ///
    /// This is the replay kernel of a fused [`crate::KernelOp::Dense2`]
    /// block: one sweep visiting `2^(n-2-c)` amplitude quads, instead of
    /// one full sweep per fused gate. Like every other kernel it builds
    /// its `BitInserts` table inline — zero steady-state allocations.
    pub fn apply_pair(&mut self, t0: usize, t1: usize, m: &[[Complex64; 4]; 4], ctrl_mask: usize) {
        assert!(t0 < t1, "pair must be ordered low-to-high");
        debug_assert!(t1 < self.num_qubits);
        debug_assert_eq!(ctrl_mask & ((1 << t0) | (1 << t1)), 0, "control mask must exclude the pair");
        let (s0, s1) = (1usize << t0, 1usize << t1);
        let inserts = BitInserts::new(ctrl_mask, s0 | s1);
        let quads = self.amps.len() >> inserts.width();
        crate::stats::record_iterations(KernelClass::Dense2, quads);
        self.note_shard_exchange(s1);
        let ptr = AmpsPtr(self.amps.as_mut_ptr());

        /// One 4×4 mat-vec on the quad based at `i00`.
        ///
        /// SAFETY: caller guarantees the four indices are in bounds and the
        /// quad is written from exactly one chunk (expansion is injective).
        #[inline(always)]
        unsafe fn quad(ptr: AmpsPtr, i00: usize, s0: usize, s1: usize, m: &[[Complex64; 4]; 4]) {
            let (i01, i10, i11) = (i00 | s0, i00 | s1, i00 | s0 | s1);
            let a = unsafe { [*ptr.at(i00), *ptr.at(i01), *ptr.at(i10), *ptr.at(i11)] };
            for (r, &i) in [i00, i01, i10, i11].iter().enumerate() {
                unsafe {
                    *ptr.at(i) = m[r][0] * a[0] + m[r][1] * a[1] + m[r][2] * a[2] + m[r][3] * a[3];
                }
            }
        }

        if ctrl_mask == 0 {
            // Contiguous-run sweep, as in `apply_single`: the `2^t0` quads
            // sharing their bits above `t0` have consecutive base indices.
            let low_mask = s0 - 1;
            self.dispatch(quads, |range| {
                let mut k = range.start;
                while k < range.end {
                    let run = (s0 - (k & low_mask)).min(range.end - k);
                    let base = inserts.expand(k);
                    for off in 0..run {
                        // SAFETY: disjoint quads across k values.
                        unsafe { quad(ptr, base + off, s0, s1, m) };
                    }
                    k += run;
                }
            });
            return;
        }
        self.dispatch(quads, |range| {
            for k in range {
                // SAFETY: disjoint quads across k values.
                unsafe { quad(ptr, inserts.expand(k), s0, s1, m) };
            }
        });
    }

    /// Apply the anti-diagonal matrix [[0, m01], [m10, 0]] to qubit `t`
    /// under `ctrl_mask` — the branch-free specialization backing X / CX /
    /// CCX (and Y up to its phases): each visited pair is exchanged with
    /// two multiplies instead of a full 2×2 apply (zero multiplies for a
    /// pure bit flip).
    pub fn apply_antidiag(&mut self, t: usize, m01: Complex64, m10: Complex64, ctrl_mask: usize) {
        debug_assert!(t < self.num_qubits);
        debug_assert_eq!(ctrl_mask & (1 << t), 0, "control mask must exclude the target");
        let stride = 1usize << t;
        let inserts = BitInserts::new(ctrl_mask, stride);
        let pairs = self.amps.len() >> inserts.width();
        crate::stats::record_iterations(KernelClass::Flip, pairs);
        self.note_shard_exchange(stride);
        let ptr = AmpsPtr(self.amps.as_mut_ptr());
        let pure_flip = m01 == Complex64::ONE && m10 == Complex64::ONE;
        self.dispatch(pairs, |range| {
            for k in range {
                let i = inserts.expand(k);
                let j = i | stride;
                // SAFETY: (i, j) pairs are disjoint across k values.
                unsafe {
                    if pure_flip {
                        std::ptr::swap(ptr.at(i), ptr.at(j));
                    } else {
                        let (a, b) = (*ptr.at(i), *ptr.at(j));
                        *ptr.at(i) = m01 * b;
                        *ptr.at(j) = m10 * a;
                    }
                }
            }
        });
    }

    /// Apply the diagonal matrix diag(d0, d1) to qubit `t` under
    /// `ctrl_mask`: visited pairs multiply their |0⟩ amplitude by `d0` and
    /// their |1⟩ amplitude by `d1`, branch-free.
    pub fn apply_diag(&mut self, t: usize, d0: Complex64, d1: Complex64, ctrl_mask: usize) {
        debug_assert!(t < self.num_qubits);
        debug_assert_eq!(ctrl_mask & (1 << t), 0, "control mask must exclude the target");
        let stride = 1usize << t;
        let inserts = BitInserts::new(ctrl_mask, stride);
        let pairs = self.amps.len() >> inserts.width();
        crate::stats::record_iterations(KernelClass::Diag, pairs);
        let ptr = AmpsPtr(self.amps.as_mut_ptr());
        self.dispatch(pairs, |range| {
            for k in range {
                let i = inserts.expand(k);
                // SAFETY: disjoint pairs across k values.
                unsafe {
                    *ptr.at(i) *= d0;
                    *ptr.at(i | stride) *= d1;
                }
            }
        });
    }

    /// Multiply amplitudes by e^{iθ} on basis states where all bits of
    /// `set_mask` are 1 and all bits of `clear_mask` are 0.
    pub fn phase_where(&mut self, set_mask: usize, clear_mask: usize, theta: f64) {
        self.mul_where(set_mask, clear_mask, Complex64::from_polar_unit(theta));
    }

    /// Multiply amplitudes by `z` on basis states where all bits of
    /// `set_mask` are 1 and all bits of `clear_mask` are 0 — the phase
    /// kernel behind every diagonal gate, control-aware: only the
    /// `2^(n-s-c)` matching indices are visited.
    pub fn mul_where(&mut self, set_mask: usize, clear_mask: usize, z: Complex64) {
        debug_assert_eq!(set_mask & clear_mask, 0);
        let inserts = BitInserts::new(set_mask, clear_mask);
        let matching = self.amps.len() >> inserts.width();
        crate::stats::record_iterations(KernelClass::Phase, matching);
        let ptr = AmpsPtr(self.amps.as_mut_ptr());
        self.dispatch(matching, |range| {
            for k in range {
                // SAFETY: disjoint indices per chunk (expansion injective).
                unsafe { *ptr.at(inserts.expand(k)) *= z };
            }
        });
    }

    /// Multiply every amplitude by `z` (used for the global phase of Rz).
    pub fn scale_all(&mut self, z: Complex64) {
        crate::stats::record_iterations(KernelClass::Scale, self.amps.len());
        let ptr = AmpsPtr(self.amps.as_mut_ptr());
        self.dispatch(self.amps.len(), |range| {
            for i in range {
                // SAFETY: disjoint indices per chunk.
                unsafe { *ptr.at(i) *= z };
            }
        });
    }

    /// Swap qubits `a` and `b`, restricted to basis states where
    /// `ctrl_mask` bits are all set (0 = unconditional).
    ///
    /// Control-aware: enumerates only the `2^(n-2-c)` indices with
    /// `a = 1`, `b = 0` and every control bit set — each swapped pair is
    /// visited exactly once from its (a=1, b=0) side.
    pub fn apply_swap(&mut self, a: usize, b: usize, ctrl_mask: usize) {
        assert_ne!(a, b, "swap requires distinct qubits");
        debug_assert_eq!(ctrl_mask & ((1 << a) | (1 << b)), 0);
        let (bit_a, bit_b) = (1usize << a, 1usize << b);
        let inserts = BitInserts::new(ctrl_mask | bit_a, bit_b);
        let count = self.amps.len() >> inserts.width();
        crate::stats::record_iterations(KernelClass::Swap, count);
        self.note_shard_exchange(bit_a.max(bit_b));
        let ptr = AmpsPtr(self.amps.as_mut_ptr());
        self.dispatch(count, |range| {
            for k in range {
                let i = inserts.expand(k);
                let j = i ^ bit_a ^ bit_b;
                // SAFETY: each (i, j) pair is enumerated exactly once (only
                // from its a=1, b=0 side) and pairs are disjoint across k.
                unsafe { std::ptr::swap(ptr.at(i), ptr.at(j)) };
            }
        });
    }

    /// Apply the classical bijection `perm` to the value encoded (little-
    /// endian) in `targets`, restricted to basis states where `ctrl_mask`
    /// bits are set. `perm` must have length `2^targets.len()` and be a
    /// bijection.
    pub fn apply_controlled_permutation(&mut self, ctrl_mask: usize, targets: &[usize], perm: &[usize]) {
        assert_eq!(perm.len(), 1usize << targets.len(), "permutation table size mismatch");
        // Invert the permutation so each destination pulls from its source.
        let mut inv = vec![usize::MAX; perm.len()];
        for (x, &y) in perm.iter().enumerate() {
            assert!(y < perm.len() && inv[y] == usize::MAX, "perm is not a bijection");
            inv[y] = x;
        }
        self.apply_permutation_with_inverse(ctrl_mask, targets, &inv);
    }

    /// [`StateVector::apply_controlled_permutation`] with the inverse
    /// permutation already computed — the replay path of a compiled
    /// circuit, which inverts the table once at compile time instead of
    /// allocating and inverting on every shot.
    ///
    /// Uses the state's reusable scratch buffer as the destination, so
    /// repeated calls perform **zero steady-state allocations**, and
    /// enumerates only the control-satisfying indices (everything else is
    /// a bulk copy).
    pub fn apply_permutation_with_inverse(&mut self, ctrl_mask: usize, targets: &[usize], inv: &[usize]) {
        assert_eq!(inv.len(), 1usize << targets.len(), "permutation table size mismatch");
        if self.scratch.len() != self.amps.len() {
            self.scratch = vec![Complex64::ZERO; self.amps.len()];
            self.scratch_allocs += 1;
        }
        if ctrl_mask != 0 {
            // Indices failing the controls keep their amplitude.
            self.scratch.copy_from_slice(&self.amps);
        }
        let inserts = BitInserts::new(ctrl_mask, 0);
        let matching = self.amps.len() >> inserts.width();
        crate::stats::record_iterations(KernelClass::Perm, matching);
        let out_ptr = AmpsPtr(self.scratch.as_mut_ptr());
        let amps = &self.amps;
        let src_of = |i: usize| -> usize {
            let mut x = 0usize;
            for (pos, &q) in targets.iter().enumerate() {
                x |= ((i >> q) & 1) << pos;
            }
            let sx = inv[x];
            let mut j = i;
            for (pos, &q) in targets.iter().enumerate() {
                j = (j & !(1 << q)) | (((sx >> pos) & 1) << q);
            }
            j
        };
        self.dispatch(matching, |range| {
            for k in range {
                let i = inserts.expand(k);
                // SAFETY: each output index written once; reads are shared.
                unsafe { *out_ptr.at(i) = amps[src_of(i)] };
            }
        });
        std::mem::swap(&mut self.amps, &mut self.scratch);
    }

    /// How many times the permutation scratch buffer has been allocated
    /// over this state's lifetime (1 after any number of permutation calls
    /// = zero steady-state allocations).
    pub fn scratch_allocations(&self) -> usize {
        self.scratch_allocs
    }

    /// Partition the amplitude array into contiguous blocks of
    /// `1 << block_qubits` amplitudes and run `f` on each block exactly
    /// once, work-shared over the pool.
    ///
    /// This is the cache-blocked replay primitive: the compiled executor
    /// applies an entire run of block-local kernels (every support bit
    /// below `block_qubits`) to each block while it is cache-resident.
    /// Blocks are disjoint `&mut` slices, and block-local kernels cannot
    /// read or write across a block boundary, so the result is
    /// bit-identical to applying the same kernels to the full state one at
    /// a time — only the traversal order (and the cache behavior) changes.
    ///
    /// `block_qubits` must not exceed the register size.
    pub(crate) fn for_each_block<F: Fn(&mut [Complex64]) + Sync>(&mut self, block_qubits: usize, f: F) {
        let block_len = 1usize << block_qubits;
        assert!(block_len <= self.amps.len(), "block larger than the state");
        let blocks = self.amps.len() >> block_qubits;
        let ptr = AmpsPtr(self.amps.as_mut_ptr());
        self.dispatch(blocks, |range| {
            for b in range {
                // SAFETY: blocks are disjoint across b values and `f` is
                // handed each block exactly once, so no two threads alias.
                let block = unsafe { ptr.slice(b << block_qubits, block_len) };
                f(block);
            }
        });
    }

    /// Probability of measuring |1⟩ on qubit `q`.
    pub fn prob_one(&self, q: usize) -> f64 {
        let bit = 1usize << q;
        let amps = &self.amps;
        self.reduce(self.amps.len(), |range| {
            let mut acc = 0.0;
            for i in range {
                if i & bit != 0 {
                    acc += amps[i].norm_sqr();
                }
            }
            acc
        })
    }

    /// Probability distribution over all basis states (|amp|²).
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Measure qubit `q` in the computational basis: samples an outcome,
    /// collapses the state, renormalizes, and returns the outcome bit.
    pub fn measure(&mut self, q: usize, rng: &mut impl Rng) -> u8 {
        let p1 = self.prob_one(q).clamp(0.0, 1.0);
        let outcome = if rng.gen::<f64>() < p1 { 1u8 } else { 0u8 };
        self.collapse(q, outcome, if outcome == 1 { p1 } else { 1.0 - p1 });
        outcome
    }

    /// Project qubit `q` onto `outcome` (which must have probability
    /// `prob > 0`) and renormalize.
    pub fn collapse(&mut self, q: usize, outcome: u8, prob: f64) {
        assert!(prob > 0.0, "cannot collapse onto a zero-probability outcome");
        let bit = 1usize << q;
        let keep_set = outcome == 1;
        let scale = 1.0 / prob.sqrt();
        let ptr = AmpsPtr(self.amps.as_mut_ptr());
        self.dispatch(self.amps.len(), |range| {
            for i in range {
                let set = i & bit != 0;
                // SAFETY: disjoint indices per chunk.
                unsafe {
                    if set == keep_set {
                        *ptr.at(i) = ptr.at(i).scale(scale);
                    } else {
                        *ptr.at(i) = Complex64::ZERO;
                    }
                }
            }
        });
    }

    /// Reset qubit `q` to |0⟩ (measure and flip if needed).
    pub fn reset(&mut self, q: usize, rng: &mut impl Rng) {
        if self.measure(q, rng) == 1 {
            // X on qubit q
            self.apply_swap_bitflip(q);
        }
    }

    /// Apply X to qubit `q` by index pairing (internal fast path for reset).
    fn apply_swap_bitflip(&mut self, q: usize) {
        self.apply_antidiag(q, Complex64::ONE, Complex64::ONE, 0);
    }

    /// ⟨self|other⟩.
    pub fn inner_product(&self, other: &StateVector) -> Complex64 {
        assert_eq!(self.len(), other.len());
        let mut acc = Complex64::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            acc += a.conj() * *b;
        }
        acc
    }

    /// Squared overlap |⟨self|other⟩|².
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Σ|amp|² (should stay 1 under unitary evolution).
    pub fn norm_sqr(&self) -> f64 {
        let amps = &self.amps;
        self.reduce(self.amps.len(), |range| range.map(|i| amps[i].norm_sqr()).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::FRAC_1_SQRT_2;

    fn h_matrix() -> [[Complex64; 2]; 2] {
        let s = c64(FRAC_1_SQRT_2, 0.0);
        [[s, s], [s, -s]]
    }

    #[test]
    fn initial_state_is_all_zero() {
        let sv = StateVector::new(3);
        assert_eq!(sv.len(), 8);
        assert_eq!(sv.amp(0), Complex64::ONE);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hadamard_gives_uniform_superposition() {
        let mut sv = StateVector::new(1);
        sv.apply_single(0, h_matrix(), 0);
        assert!(sv.amp(0).approx_eq(c64(FRAC_1_SQRT_2, 0.0), 1e-12));
        assert!(sv.amp(1).approx_eq(c64(FRAC_1_SQRT_2, 0.0), 1e-12));
    }

    #[test]
    fn bell_state_via_h_and_controlled_x() {
        let mut sv = StateVector::new(2);
        sv.apply_single(0, h_matrix(), 0);
        let x = [[Complex64::ZERO, Complex64::ONE], [Complex64::ONE, Complex64::ZERO]];
        sv.apply_single(1, x, 1 << 0); // CX control q0 target q1
        assert!(sv.amp(0b00).approx_eq(c64(FRAC_1_SQRT_2, 0.0), 1e-12));
        assert!(sv.amp(0b11).approx_eq(c64(FRAC_1_SQRT_2, 0.0), 1e-12));
        assert!(sv.amp(0b01).approx_eq(Complex64::ZERO, 1e-12));
        assert!(sv.amp(0b10).approx_eq(Complex64::ZERO, 1e-12));
    }

    #[test]
    fn phase_where_applies_to_selected_states() {
        let mut sv =
            StateVector::from_amplitudes(vec![c64(0.5, 0.0), c64(0.5, 0.0), c64(0.5, 0.0), c64(0.5, 0.0)]);
        sv.phase_where(0b11, 0, std::f64::consts::PI); // CZ
        assert!(sv.amp(0b11).approx_eq(c64(-0.5, 0.0), 1e-12));
        assert!(sv.amp(0b01).approx_eq(c64(0.5, 0.0), 1e-12));
    }

    #[test]
    fn swap_exchanges_bits() {
        let mut sv = StateVector::new(2);
        let x = [[Complex64::ZERO, Complex64::ONE], [Complex64::ONE, Complex64::ZERO]];
        sv.apply_single(0, x, 0); // |01⟩ (q0=1)
        sv.apply_swap(0, 1, 0);
        assert!(sv.amp(0b10).approx_eq(Complex64::ONE, 1e-12)); // q1=1
    }

    #[test]
    fn controlled_permutation_maps_values() {
        // 2 target qubits encode x ∈ {0..3}; perm = +1 mod 4; no controls.
        let mut sv = StateVector::new(2);
        let perm: Vec<usize> = (0..4).map(|x| (x + 1) % 4).collect();
        sv.apply_controlled_permutation(0, &[0, 1], &perm);
        assert!(sv.amp(1).approx_eq(Complex64::ONE, 1e-12)); // 0 → 1
    }

    #[test]
    fn controlled_permutation_respects_control() {
        // Control qubit 2 is |0⟩: nothing moves.
        let mut sv = StateVector::new(3);
        let perm: Vec<usize> = (0..4).map(|x| (x + 1) % 4).collect();
        sv.apply_controlled_permutation(1 << 2, &[0, 1], &perm);
        assert!(sv.amp(0).approx_eq(Complex64::ONE, 1e-12));
    }

    #[test]
    fn measure_collapses_and_normalizes() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sv = StateVector::new(2);
        sv.apply_single(0, h_matrix(), 0);
        let x = [[Complex64::ZERO, Complex64::ONE], [Complex64::ONE, Complex64::ZERO]];
        sv.apply_single(1, x, 1); // Bell
        let m0 = sv.measure(0, &mut rng);
        let m1 = sv.measure(1, &mut rng);
        assert_eq!(m0, m1, "Bell state measurements must correlate");
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_statistics_match_probabilities() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut ones = 0;
        for _ in 0..2000 {
            let mut sv = StateVector::new(1);
            sv.apply_single(0, h_matrix(), 0);
            ones += sv.measure(0, &mut rng) as usize;
        }
        let frac = ones as f64 / 2000.0;
        assert!((frac - 0.5).abs() < 0.05, "measured {frac}");
    }

    #[test]
    fn reset_forces_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let mut sv = StateVector::new(1);
            sv.apply_single(0, h_matrix(), 0);
            sv.reset(0, &mut rng);
            assert!(sv.amp(1).approx_eq(Complex64::ZERO, 1e-12));
            assert!(sv.amp(0).norm_sqr() > 0.999);
        }
    }

    #[test]
    fn parallel_pool_matches_sequential() {
        let pool = Arc::new(ThreadPool::new(4));
        let mut seq = StateVector::new(6);
        let mut par = StateVector::with_pool(6, pool);
        // A layered random-ish circuit applied to both.
        for q in 0..6 {
            seq.apply_single(q, h_matrix(), 0);
            par.apply_single(q, h_matrix(), 0);
        }
        for q in 0..5 {
            let x = [[Complex64::ZERO, Complex64::ONE], [Complex64::ONE, Complex64::ZERO]];
            seq.apply_single(q + 1, x, 1 << q);
            par.apply_single(q + 1, x, 1 << q);
            seq.phase_where((1 << q) | (1 << (q + 1)), 0, 0.3 * (q as f64 + 1.0));
            par.phase_where((1 << q) | (1 << (q + 1)), 0, 0.3 * (q as f64 + 1.0));
        }
        for (a, b) in seq.amplitudes().iter().zip(par.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn fidelity_of_identical_states_is_one() {
        let mut a = StateVector::new(3);
        let mut b = StateVector::new(3);
        a.apply_single(1, h_matrix(), 0);
        b.apply_single(1, h_matrix(), 0);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_to_zero_reuses_buffer() {
        let mut sv = StateVector::new(4);
        sv.apply_single(2, h_matrix(), 0);
        sv.reset_to_zero();
        assert_eq!(sv.amp(0), Complex64::ONE);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not a bijection")]
    fn bad_permutation_panics() {
        let mut sv = StateVector::new(2);
        sv.apply_controlled_permutation(0, &[0, 1], &[0, 0, 1, 2]);
    }

    // ---- control-aware enumeration vs the old scan-and-skip kernels ----
    //
    // Reference implementations of the pre-PR-4 kernels: scan every index
    // (or pair) and branch-skip the ones failing the control mask. The
    // control-aware kernels must produce bit-identical amplitudes.

    fn insert_zero_at(k: usize, t: usize) -> usize {
        let low = (1usize << t) - 1;
        ((k & !low) << 1) | (k & low)
    }

    fn scan_apply_single(amps: &mut [Complex64], t: usize, m: [[Complex64; 2]; 2], ctrl: usize) {
        let stride = 1usize << t;
        for k in 0..amps.len() / 2 {
            let i = insert_zero_at(k, t);
            if i & ctrl != ctrl {
                continue;
            }
            let (a, b) = (amps[i], amps[i | stride]);
            amps[i] = m[0][0] * a + m[0][1] * b;
            amps[i | stride] = m[1][0] * a + m[1][1] * b;
        }
    }

    fn scan_mul_where(amps: &mut [Complex64], set: usize, clear: usize, z: Complex64) {
        for (i, amp) in amps.iter_mut().enumerate() {
            if i & set == set && i & clear == 0 {
                *amp *= z;
            }
        }
    }

    fn scan_swap(amps: &mut [Complex64], a: usize, b: usize, ctrl: usize) {
        let (bit_a, bit_b) = (1usize << a, 1usize << b);
        for i in 0..amps.len() {
            if i & bit_a != 0 && i & bit_b == 0 && i & ctrl == ctrl {
                amps.swap(i, i ^ bit_a ^ bit_b);
            }
        }
    }

    /// A deterministic non-trivial 6-qubit state to run kernels against.
    fn scrambled_state() -> StateVector {
        let mut sv = StateVector::new(6);
        for q in 0..6 {
            sv.apply_single(q, h_matrix(), 0);
            sv.phase_where(1 << q, 0, 0.17 * (q as f64 + 1.0));
        }
        for q in 0..5 {
            let x = [[Complex64::ZERO, Complex64::ONE], [Complex64::ONE, Complex64::ZERO]];
            sv.apply_single(q + 1, x, 1 << q);
        }
        sv
    }

    #[test]
    fn control_aware_single_matches_scan_and_skip() {
        let u = [[c64(0.6, 0.0), c64(0.0, 0.8)], [c64(0.0, 0.8), c64(0.6, 0.0)]];
        for ctrl in [0usize, 1 << 0, (1 << 0) | (1 << 4), (1 << 1) | (1 << 3) | (1 << 5)] {
            let base = scrambled_state();
            let mut expect: Vec<Complex64> = base.amplitudes().to_vec();
            scan_apply_single(&mut expect, 2, u, ctrl);
            let mut got = scrambled_state();
            got.apply_single(2, u, ctrl);
            for (e, g) in expect.iter().zip(got.amplitudes()) {
                assert_eq!(e.re.to_bits(), g.re.to_bits(), "ctrl={ctrl:#b}");
                assert_eq!(e.im.to_bits(), g.im.to_bits(), "ctrl={ctrl:#b}");
            }
        }
    }

    #[test]
    fn control_aware_mul_where_matches_scan_and_skip() {
        let z = Complex64::from_polar_unit(1.234);
        for (set, clear) in [(1usize << 1, 0usize), ((1 << 0) | (1 << 3), 1 << 5), (0, (1 << 2) | (1 << 4))] {
            let base = scrambled_state();
            let mut expect: Vec<Complex64> = base.amplitudes().to_vec();
            scan_mul_where(&mut expect, set, clear, z);
            let mut got = scrambled_state();
            got.mul_where(set, clear, z);
            for (e, g) in expect.iter().zip(got.amplitudes()) {
                assert_eq!(e.re.to_bits(), g.re.to_bits(), "set={set:#b} clear={clear:#b}");
                assert_eq!(e.im.to_bits(), g.im.to_bits(), "set={set:#b} clear={clear:#b}");
            }
        }
    }

    #[test]
    fn control_aware_swap_matches_scan_and_skip() {
        for ctrl in [0usize, 1 << 2, (1 << 2) | (1 << 5)] {
            let base = scrambled_state();
            let mut expect: Vec<Complex64> = base.amplitudes().to_vec();
            scan_swap(&mut expect, 0, 3, ctrl);
            let mut got = scrambled_state();
            got.apply_swap(0, 3, ctrl);
            for (e, g) in expect.iter().zip(got.amplitudes()) {
                assert_eq!(e.re.to_bits(), g.re.to_bits(), "ctrl={ctrl:#b}");
                assert_eq!(e.im.to_bits(), g.im.to_bits(), "ctrl={ctrl:#b}");
            }
        }
    }

    #[test]
    fn antidiag_and_diag_kernels_match_dense_apply() {
        // X via the anti-diagonal kernel vs the dense matrix.
        let x = [[Complex64::ZERO, Complex64::ONE], [Complex64::ONE, Complex64::ZERO]];
        let mut a = scrambled_state();
        let mut b = scrambled_state();
        a.apply_single(3, x, 1 << 1);
        b.apply_antidiag(3, Complex64::ONE, Complex64::ONE, 1 << 1);
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert!(x.approx_eq(*y, 1e-15));
        }
        // diag(d0, d1) via the diagonal kernel vs the dense matrix.
        let (d0, d1) = (Complex64::from_polar_unit(-0.4), Complex64::from_polar_unit(0.9));
        let dm = [[d0, Complex64::ZERO], [Complex64::ZERO, d1]];
        let mut a = scrambled_state();
        let mut b = scrambled_state();
        a.apply_single(2, dm, 1 << 4);
        b.apply_diag(2, d0, d1, 1 << 4);
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert!(x.approx_eq(*y, 1e-15));
        }
    }

    #[test]
    fn controlled_kernels_iterate_exponentially_less() {
        use crate::stats::{kernel_iterations, reset_kernel_iterations};
        let mut sv = StateVector::new(8);
        let x = [[Complex64::ZERO, Complex64::ONE], [Complex64::ONE, Complex64::ZERO]];
        reset_kernel_iterations();
        sv.apply_single(0, x, 0);
        assert_eq!(kernel_iterations(), 128); // 2^(8-1)
        reset_kernel_iterations();
        sv.apply_single(1, x, 1 << 0); // CX
        assert_eq!(kernel_iterations(), 64); // 2^(8-2)
        reset_kernel_iterations();
        sv.apply_single(2, x, 0b11); // CCX
        assert_eq!(kernel_iterations(), 32); // 2^(8-3)
        reset_kernel_iterations();
        sv.apply_swap(0, 1, 1 << 7); // CSwap
        assert_eq!(kernel_iterations(), 32); // 2^(8-3)
        reset_kernel_iterations();
        sv.mul_where(0b101, 0, Complex64::I);
        assert_eq!(kernel_iterations(), 64); // 2^(8-2)
    }

    #[test]
    fn permutation_scratch_allocates_once() {
        let mut sv = StateVector::new(6);
        let perm: Vec<usize> = (0..16).map(|x| (x + 3) % 16).collect();
        assert_eq!(sv.scratch_allocations(), 0);
        for _ in 0..20 {
            sv.apply_controlled_permutation(1 << 5, &[0, 1, 2, 3], &perm);
        }
        assert_eq!(sv.scratch_allocations(), 1, "steady-state permutations must not allocate");
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn precomputed_inverse_matches_public_permutation() {
        let perm: Vec<usize> = vec![2, 0, 3, 1];
        let mut inv = vec![0usize; 4];
        for (x, &y) in perm.iter().enumerate() {
            inv[y] = x;
        }
        let mut a = scrambled_state();
        let mut b = scrambled_state();
        a.apply_controlled_permutation(1 << 4, &[1, 2], &perm);
        b.apply_permutation_with_inverse(1 << 4, &[1, 2], &inv);
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    /// Scan-and-skip reference for the pair kernel: visit every index with
    /// both pair bits clear and the controls satisfied, gather the quad,
    /// apply the 4×4.
    fn scan_apply_pair(amps: &mut [Complex64], t0: usize, t1: usize, m: &[[Complex64; 4]; 4], ctrl: usize) {
        let (s0, s1) = (1usize << t0, 1usize << t1);
        for i00 in 0..amps.len() {
            if i00 & (s0 | s1) != 0 || i00 & ctrl != ctrl {
                continue;
            }
            let idx = [i00, i00 | s0, i00 | s1, i00 | s0 | s1];
            let a = [amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]];
            for (r, &i) in idx.iter().enumerate() {
                amps[i] = m[r][0] * a[0] + m[r][1] * a[1] + m[r][2] * a[2] + m[r][3] * a[3];
            }
        }
    }

    fn test_pair_matrix() -> [[Complex64; 4]; 4] {
        // An arbitrary unitary-ish 4×4 (unitarity is irrelevant for the
        // kernel-equivalence check; exact arithmetic equality is what
        // matters).
        let mut m = [[Complex64::ZERO; 4]; 4];
        for (r, row) in m.iter_mut().enumerate() {
            for (c, cell) in row.iter_mut().enumerate() {
                *cell = c64(0.1 + 0.2 * r as f64 - 0.15 * c as f64, 0.05 * (r * 4 + c) as f64);
            }
        }
        m
    }

    #[test]
    fn pair_kernel_matches_scan_and_skip() {
        let m = test_pair_matrix();
        for (t0, t1, ctrl) in
            [(0usize, 1usize, 0usize), (2, 4, 0), (0, 5, 1 << 2), (1, 3, (1 << 0) | (1 << 5))]
        {
            let base = scrambled_state();
            let mut expect: Vec<Complex64> = base.amplitudes().to_vec();
            scan_apply_pair(&mut expect, t0, t1, &m, ctrl);
            let mut got = scrambled_state();
            got.apply_pair(t0, t1, &m, ctrl);
            for (e, g) in expect.iter().zip(got.amplitudes()) {
                assert_eq!(e.re.to_bits(), g.re.to_bits(), "t0={t0} t1={t1} ctrl={ctrl:#b}");
                assert_eq!(e.im.to_bits(), g.im.to_bits(), "t0={t0} t1={t1} ctrl={ctrl:#b}");
            }
        }
    }

    #[test]
    fn pair_kernel_parallel_matches_sequential() {
        let m = test_pair_matrix();
        let mut seq = scrambled_state();
        let mut par = StateVector::with_pool(6, Arc::new(ThreadPool::new(4)));
        // Rebuild the scrambled state on the pooled instance.
        for q in 0..6 {
            par.apply_single(q, h_matrix(), 0);
            par.phase_where(1 << q, 0, 0.17 * (q as f64 + 1.0));
        }
        for q in 0..5 {
            let x = [[Complex64::ZERO, Complex64::ONE], [Complex64::ONE, Complex64::ZERO]];
            par.apply_single(q + 1, x, 1 << q);
        }
        seq.apply_pair(1, 4, &m, 0);
        par.apply_pair(1, 4, &m, 0);
        for (a, b) in seq.amplitudes().iter().zip(par.amplitudes()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn pair_kernel_iterates_quarter_of_the_state() {
        use crate::stats::{kernel_class_iterations, kernel_iterations, reset_kernel_iterations};
        let m = test_pair_matrix();
        let mut sv = StateVector::new(8);
        reset_kernel_iterations();
        sv.apply_pair(0, 1, &m, 0);
        assert_eq!(kernel_iterations(), 64); // 2^(8-2)
        assert_eq!(kernel_class_iterations(KernelClass::Dense2), 64);
        reset_kernel_iterations();
        sv.apply_pair(2, 5, &m, 1 << 0);
        assert_eq!(kernel_iterations(), 32); // 2^(8-2-1)
        reset_kernel_iterations();
        sv.apply_pair(3, 4, &m, (1 << 0) | (1 << 7));
        assert_eq!(kernel_iterations(), 16); // 2^(8-2-2)
        assert_eq!(kernel_class_iterations(KernelClass::Dense2), 16);
        assert_eq!(kernel_class_iterations(KernelClass::Dense), 0);
    }

    #[test]
    fn for_each_block_covers_every_amplitude_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let mut sv = scrambled_state();
        let expect: Vec<Complex64> = sv.amplitudes().iter().map(|a| a.scale(2.0)).collect();
        let blocks = AtomicUsize::new(0);
        sv.for_each_block(2, |block| {
            assert_eq!(block.len(), 4);
            blocks.fetch_add(1, Ordering::Relaxed);
            for a in block {
                *a = a.scale(2.0);
            }
        });
        assert_eq!(blocks.load(Ordering::Relaxed), 16);
        for (e, g) in expect.iter().zip(sv.amplitudes()) {
            assert_eq!(e, g);
        }
    }

    /// Replay the scramble circuit on a sharded state and demand
    /// bit-identical amplitudes against the sequential sweep — the
    /// shard boundaries are a function of the shard count only, and a
    /// shard job owns both halves of every pair it updates, so no pool
    /// size or shard count may perturb a single bit.
    /// The shard counters are process-global; every test that drives
    /// sharded kernels serializes through this lock so the counter test's
    /// absolute assertions cannot race another test's increments.
    static SHARD_STATS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn sharded_kernels_are_bit_identical_to_sequential() {
        let _guard = SHARD_STATS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let scramble = |sv: &mut StateVector| {
            let x = [[Complex64::ZERO, Complex64::ONE], [Complex64::ONE, Complex64::ZERO]];
            for q in 0..6 {
                sv.apply_single(q, h_matrix(), 0);
                sv.phase_where(1 << q, 0, 0.17 * (q as f64 + 1.0));
            }
            for q in 0..5 {
                sv.apply_single(q + 1, x, 1 << q);
            }
            sv.apply_antidiag(0, Complex64::ONE, Complex64::ONE, 1 << 5);
            sv.apply_swap(1, 4, 1 << 0);
            sv.scale_all(c64(0.0, 1.0));
        };
        let mut reference = StateVector::new(6);
        scramble(&mut reference);
        for threads in [1, 4] {
            for shards in [2, 3, 5, 64] {
                let pool = Arc::new(ThreadPool::new(threads));
                let mut sv = StateVector::with_pool(6, pool);
                sv.set_amp_shards(Some(shards));
                assert_eq!(sv.amp_shards(), Some(shards));
                scramble(&mut sv);
                assert_eq!(sv.amplitudes(), reference.amplitudes(), "threads={threads} shards={shards}");
            }
        }
    }

    #[test]
    fn shard_counters_track_jobs_and_exchanges() {
        let _guard = SHARD_STATS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::stats::reset_shard_stats();
        let mut sv = StateVector::new(4);
        sv.set_amp_shards(Some(2));
        // Low target: 8 pairs split into 2 shard jobs, stride 1 stays
        // inside one shard of the raw space — no exchange step.
        sv.apply_single(0, h_matrix(), 0);
        assert_eq!(crate::stats::shard_jobs_launched(), 2);
        assert_eq!(crate::stats::shard_exchange_steps(), 0);
        // High target: stride 8 = len/2 spans a full shard, so each job
        // owns both halves of its pairs — one exchange step.
        sv.apply_single(3, h_matrix(), 0);
        assert_eq!(crate::stats::shard_jobs_launched(), 4);
        assert_eq!(crate::stats::shard_exchange_steps(), 1);
        // shards = 1 is filtered to None (sharding off).
        sv.set_amp_shards(Some(1));
        assert_eq!(sv.amp_shards(), None);
        sv.apply_single(0, h_matrix(), 0);
        assert_eq!(crate::stats::shard_jobs_launched(), 4);
        crate::stats::reset_shard_stats();
        assert_eq!(crate::stats::shard_jobs_launched(), 0);
        assert_eq!(crate::stats::shard_exchange_steps(), 0);
    }

    #[test]
    fn bit_inserts_enumerate_exactly_the_matching_indices() {
        let ones = (1usize << 1) | (1 << 4);
        let zeros = 1usize << 2;
        let inserts = BitInserts::new(ones, zeros);
        let n = 6;
        let mut seen: Vec<usize> = (0..(1usize << n) >> inserts.width()).map(|k| inserts.expand(k)).collect();
        seen.sort_unstable();
        let expect: Vec<usize> = (0..1usize << n).filter(|i| i & ones == ones && i & zeros == 0).collect();
        assert_eq!(seen, expect);
    }
}
