//! The state vector and its (optionally parallel) update kernels.
//!
//! A [`StateVector`] stores the 2^n amplitudes of an n-qubit register and
//! exposes the primitive updates gates compile to: single-qubit matrix
//! application with an arbitrary control mask, conditional phase rotation,
//! (controlled) swaps, controlled classical permutations, measurement and
//! reset.
//!
//! Every kernel loops over amplitude indices; when the state's
//! [`ThreadPool`] has more than one thread the loop is work-shared over the
//! pool, exactly as Quantum++'s OpenMP pragmas work-share its amplitude
//! loops. This is the paper's "inner simulator level parallelism". As in
//! Quantum++ the dispatch is unconditional by default (see
//! [`StateVector::set_par_threshold`]), so small registers pay the fork/join
//! overhead that the paper's evaluation (§VI-A) observes when oversubscribing
//! a kernel with threads.

#[cfg(test)]
use crate::complex::c64;
use crate::complex::Complex64;
use qcor_pool::ThreadPool;
use rand::Rng;
use std::ops::Range;
use std::sync::Arc;

/// Raw pointer to the amplitude buffer, shared across pool workers.
///
/// SAFETY invariant: every kernel that uses this wrapper writes each index
/// from exactly one chunk (indices are partitioned by `parallel_for`), so
/// no two threads alias a write.
#[derive(Clone, Copy)]
struct AmpsPtr(*mut Complex64);
unsafe impl Send for AmpsPtr {}
unsafe impl Sync for AmpsPtr {}

impl AmpsPtr {
    /// SAFETY: caller guarantees `i` is in bounds and not concurrently
    /// written by another thread.
    #[inline]
    unsafe fn at(self, i: usize) -> &'static mut Complex64 {
        unsafe { &mut *self.0.add(i) }
    }
}

/// An n-qubit pure state.
///
/// Bit convention is little-endian: basis index `i` assigns qubit `q` the
/// bit `(i >> q) & 1`.
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<Complex64>,
    pool: Arc<ThreadPool>,
    par_threshold: usize,
}

impl std::fmt::Debug for StateVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateVector")
            .field("num_qubits", &self.num_qubits)
            .field("pool_threads", &self.pool.num_threads())
            .finish()
    }
}

impl StateVector {
    /// |0...0⟩ on `num_qubits` qubits, simulated sequentially.
    pub fn new(num_qubits: usize) -> Self {
        Self::with_pool(num_qubits, ThreadPool::sequential())
    }

    /// |0...0⟩ with amplitude loops work-shared over `pool`.
    pub fn with_pool(num_qubits: usize, pool: Arc<ThreadPool>) -> Self {
        assert!(num_qubits <= 30, "state vector of {num_qubits} qubits will not fit in memory");
        let mut amps = vec![Complex64::ZERO; 1usize << num_qubits];
        amps[0] = Complex64::ONE;
        StateVector { num_qubits, amps, pool, par_threshold: 2 }
    }

    /// Construct from explicit amplitudes (must have power-of-two length and
    /// unit norm up to `1e-9`).
    pub fn from_amplitudes(amps: Vec<Complex64>) -> Self {
        assert!(amps.len().is_power_of_two() && !amps.is_empty(), "length must be a power of two");
        let n = amps.len().trailing_zeros() as usize;
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-9, "state must be normalized (got norm² = {norm})");
        StateVector { num_qubits: n, amps, pool: ThreadPool::sequential(), par_threshold: 2 }
    }

    /// Construct from raw amplitudes without the unit-norm check — used by
    /// the density-matrix representation, whose vec(ρ) is not a unit
    /// vector mid-Kraus-sum.
    pub(crate) fn raw_with_amplitudes(amps: Vec<Complex64>) -> Self {
        assert!(amps.len().is_power_of_two() && !amps.is_empty());
        let n = amps.len().trailing_zeros() as usize;
        StateVector { num_qubits: n, amps, pool: ThreadPool::sequential(), par_threshold: 2 }
    }

    /// Reset to |0...0⟩ without reallocating.
    pub fn reset_to_zero(&mut self) {
        let ptr = AmpsPtr(self.amps.as_mut_ptr());
        self.dispatch(self.amps.len(), |range| {
            for i in range {
                // SAFETY: disjoint indices per chunk.
                unsafe { *ptr.at(i) = Complex64::ZERO };
            }
        });
        self.amps[0] = Complex64::ONE;
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of amplitudes (2^n).
    pub fn len(&self) -> usize {
        self.amps.len()
    }

    /// Always false — a state vector has at least one amplitude.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The amplitudes, basis-index order.
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Amplitude of basis state `i`.
    pub fn amp(&self, i: usize) -> Complex64 {
        self.amps[i]
    }

    /// The thread pool used by the kernels.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }

    /// Set the minimum number of loop iterations before a kernel is
    /// dispatched to the pool (default 2, i.e. effectively always when the
    /// pool has more than one thread — matching Quantum++'s unconditional
    /// OpenMP work-sharing). Raise it to amortize fork/join overhead on
    /// small registers.
    pub fn set_par_threshold(&mut self, items: usize) {
        self.par_threshold = items.max(1);
    }

    /// Work-share `f` over `0..len` when profitable, else run inline.
    #[inline]
    fn dispatch<F: Fn(Range<usize>) + Sync>(&self, len: usize, f: F) {
        if self.pool.num_threads() > 1 && len >= self.par_threshold {
            self.pool.parallel_for(0..len, f);
        } else {
            f(0..len);
        }
    }

    /// Sum a per-index quantity over `0..len`, work-shared when profitable.
    #[inline]
    fn reduce<F: Fn(Range<usize>) -> f64 + Sync>(&self, len: usize, f: F) -> f64 {
        if self.pool.num_threads() > 1 && len >= self.par_threshold {
            self.pool.parallel_reduce(0..len, qcor_pool::Schedule::Auto, 0.0, f, |a, b| a + b)
        } else {
            f(0..len)
        }
    }

    /// Expand a pair index `k` into the basis index with qubit `t` = 0:
    /// inserts a zero bit at position `t`.
    #[inline]
    fn expand(k: usize, t: usize) -> usize {
        let low_mask = (1usize << t) - 1;
        ((k & !low_mask) << 1) | (k & low_mask)
    }

    /// Apply a single-qubit matrix `m` (row-major [[m00,m01],[m10,m11]]) to
    /// qubit `t`, restricted to basis states where every bit of
    /// `ctrl_mask` is set (`ctrl_mask` must not include bit `t`; 0 means
    /// no controls).
    pub fn apply_single(&mut self, t: usize, m: [[Complex64; 2]; 2], ctrl_mask: usize) {
        debug_assert!(t < self.num_qubits);
        debug_assert_eq!(ctrl_mask & (1 << t), 0, "control mask must exclude the target");
        let half = self.amps.len() / 2;
        let stride = 1usize << t;
        let ptr = AmpsPtr(self.amps.as_mut_ptr());
        self.dispatch(half, |range| {
            for k in range {
                let i = Self::expand(k, t);
                if i & ctrl_mask != ctrl_mask {
                    continue;
                }
                let j = i | stride;
                // SAFETY: (i, j) pairs are disjoint across k values.
                let (a, b) = unsafe { (*ptr.at(i), *ptr.at(j)) };
                unsafe {
                    *ptr.at(i) = m[0][0] * a + m[0][1] * b;
                    *ptr.at(j) = m[1][0] * a + m[1][1] * b;
                }
            }
        });
    }

    /// Multiply amplitudes by e^{iθ} on basis states where all bits of
    /// `set_mask` are 1 and all bits of `clear_mask` are 0.
    pub fn phase_where(&mut self, set_mask: usize, clear_mask: usize, theta: f64) {
        debug_assert_eq!(set_mask & clear_mask, 0);
        let phase = Complex64::from_polar_unit(theta);
        let ptr = AmpsPtr(self.amps.as_mut_ptr());
        self.dispatch(self.amps.len(), |range| {
            for i in range {
                if i & set_mask == set_mask && i & clear_mask == 0 {
                    // SAFETY: disjoint indices per chunk.
                    unsafe { *ptr.at(i) *= phase };
                }
            }
        });
    }

    /// Multiply every amplitude by `z` (used for the global phase of Rz).
    pub fn scale_all(&mut self, z: Complex64) {
        let ptr = AmpsPtr(self.amps.as_mut_ptr());
        self.dispatch(self.amps.len(), |range| {
            for i in range {
                // SAFETY: disjoint indices per chunk.
                unsafe { *ptr.at(i) *= z };
            }
        });
    }

    /// Swap qubits `a` and `b`, restricted to basis states where
    /// `ctrl_mask` bits are all set (0 = unconditional).
    pub fn apply_swap(&mut self, a: usize, b: usize, ctrl_mask: usize) {
        assert_ne!(a, b, "swap requires distinct qubits");
        debug_assert_eq!(ctrl_mask & ((1 << a) | (1 << b)), 0);
        let (bit_a, bit_b) = (1usize << a, 1usize << b);
        let ptr = AmpsPtr(self.amps.as_mut_ptr());
        self.dispatch(self.amps.len(), |range| {
            for i in range {
                // Visit each pair once: from the (a=1, b=0) side.
                if i & bit_a != 0 && i & bit_b == 0 && i & ctrl_mask == ctrl_mask {
                    let j = i ^ bit_a ^ bit_b;
                    // SAFETY: i and j=partner are swapped exactly once and
                    // only the thread owning index i touches the pair (the
                    // partner index j fails the visit condition).
                    unsafe { std::ptr::swap(ptr.at(i), ptr.at(j)) };
                }
            }
        });
    }

    /// Apply the classical bijection `perm` to the value encoded (little-
    /// endian) in `targets`, restricted to basis states where `ctrl_mask`
    /// bits are set. `perm` must have length `2^targets.len()` and be a
    /// bijection.
    pub fn apply_controlled_permutation(&mut self, ctrl_mask: usize, targets: &[usize], perm: &[usize]) {
        assert_eq!(perm.len(), 1usize << targets.len(), "permutation table size mismatch");
        // Invert the permutation so each destination pulls from its source.
        let mut inv = vec![usize::MAX; perm.len()];
        for (x, &y) in perm.iter().enumerate() {
            assert!(y < perm.len() && inv[y] == usize::MAX, "perm is not a bijection");
            inv[y] = x;
        }
        let src_of = |i: usize| -> usize {
            if i & ctrl_mask != ctrl_mask {
                return i;
            }
            let mut x = 0usize;
            for (pos, &q) in targets.iter().enumerate() {
                x |= ((i >> q) & 1) << pos;
            }
            let sx = inv[x];
            let mut j = i;
            for (pos, &q) in targets.iter().enumerate() {
                j = (j & !(1 << q)) | (((sx >> pos) & 1) << q);
            }
            j
        };
        let mut out = vec![Complex64::ZERO; self.amps.len()];
        let out_ptr = AmpsPtr(out.as_mut_ptr());
        let amps = &self.amps;
        self.dispatch(self.amps.len(), |range| {
            for i in range {
                // SAFETY: each output index written once; reads are shared.
                unsafe { *out_ptr.at(i) = amps[src_of(i)] };
            }
        });
        self.amps = out;
    }

    /// Probability of measuring |1⟩ on qubit `q`.
    pub fn prob_one(&self, q: usize) -> f64 {
        let bit = 1usize << q;
        let amps = &self.amps;
        self.reduce(self.amps.len(), |range| {
            let mut acc = 0.0;
            for i in range {
                if i & bit != 0 {
                    acc += amps[i].norm_sqr();
                }
            }
            acc
        })
    }

    /// Probability distribution over all basis states (|amp|²).
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Measure qubit `q` in the computational basis: samples an outcome,
    /// collapses the state, renormalizes, and returns the outcome bit.
    pub fn measure(&mut self, q: usize, rng: &mut impl Rng) -> u8 {
        let p1 = self.prob_one(q).clamp(0.0, 1.0);
        let outcome = if rng.gen::<f64>() < p1 { 1u8 } else { 0u8 };
        self.collapse(q, outcome, if outcome == 1 { p1 } else { 1.0 - p1 });
        outcome
    }

    /// Project qubit `q` onto `outcome` (which must have probability
    /// `prob > 0`) and renormalize.
    pub fn collapse(&mut self, q: usize, outcome: u8, prob: f64) {
        assert!(prob > 0.0, "cannot collapse onto a zero-probability outcome");
        let bit = 1usize << q;
        let keep_set = outcome == 1;
        let scale = 1.0 / prob.sqrt();
        let ptr = AmpsPtr(self.amps.as_mut_ptr());
        self.dispatch(self.amps.len(), |range| {
            for i in range {
                let set = i & bit != 0;
                // SAFETY: disjoint indices per chunk.
                unsafe {
                    if set == keep_set {
                        *ptr.at(i) = ptr.at(i).scale(scale);
                    } else {
                        *ptr.at(i) = Complex64::ZERO;
                    }
                }
            }
        });
    }

    /// Reset qubit `q` to |0⟩ (measure and flip if needed).
    pub fn reset(&mut self, q: usize, rng: &mut impl Rng) {
        if self.measure(q, rng) == 1 {
            // X on qubit q
            self.apply_swap_bitflip(q);
        }
    }

    /// Apply X to qubit `q` by index pairing (internal fast path for reset).
    fn apply_swap_bitflip(&mut self, q: usize) {
        let x = [[Complex64::ZERO, Complex64::ONE], [Complex64::ONE, Complex64::ZERO]];
        self.apply_single(q, x, 0);
    }

    /// ⟨self|other⟩.
    pub fn inner_product(&self, other: &StateVector) -> Complex64 {
        assert_eq!(self.len(), other.len());
        let mut acc = Complex64::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            acc += a.conj() * *b;
        }
        acc
    }

    /// Squared overlap |⟨self|other⟩|².
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Σ|amp|² (should stay 1 under unitary evolution).
    pub fn norm_sqr(&self) -> f64 {
        let amps = &self.amps;
        self.reduce(self.amps.len(), |range| range.map(|i| amps[i].norm_sqr()).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::FRAC_1_SQRT_2;

    fn h_matrix() -> [[Complex64; 2]; 2] {
        let s = c64(FRAC_1_SQRT_2, 0.0);
        [[s, s], [s, -s]]
    }

    #[test]
    fn initial_state_is_all_zero() {
        let sv = StateVector::new(3);
        assert_eq!(sv.len(), 8);
        assert_eq!(sv.amp(0), Complex64::ONE);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hadamard_gives_uniform_superposition() {
        let mut sv = StateVector::new(1);
        sv.apply_single(0, h_matrix(), 0);
        assert!(sv.amp(0).approx_eq(c64(FRAC_1_SQRT_2, 0.0), 1e-12));
        assert!(sv.amp(1).approx_eq(c64(FRAC_1_SQRT_2, 0.0), 1e-12));
    }

    #[test]
    fn bell_state_via_h_and_controlled_x() {
        let mut sv = StateVector::new(2);
        sv.apply_single(0, h_matrix(), 0);
        let x = [[Complex64::ZERO, Complex64::ONE], [Complex64::ONE, Complex64::ZERO]];
        sv.apply_single(1, x, 1 << 0); // CX control q0 target q1
        assert!(sv.amp(0b00).approx_eq(c64(FRAC_1_SQRT_2, 0.0), 1e-12));
        assert!(sv.amp(0b11).approx_eq(c64(FRAC_1_SQRT_2, 0.0), 1e-12));
        assert!(sv.amp(0b01).approx_eq(Complex64::ZERO, 1e-12));
        assert!(sv.amp(0b10).approx_eq(Complex64::ZERO, 1e-12));
    }

    #[test]
    fn phase_where_applies_to_selected_states() {
        let mut sv =
            StateVector::from_amplitudes(vec![c64(0.5, 0.0), c64(0.5, 0.0), c64(0.5, 0.0), c64(0.5, 0.0)]);
        sv.phase_where(0b11, 0, std::f64::consts::PI); // CZ
        assert!(sv.amp(0b11).approx_eq(c64(-0.5, 0.0), 1e-12));
        assert!(sv.amp(0b01).approx_eq(c64(0.5, 0.0), 1e-12));
    }

    #[test]
    fn swap_exchanges_bits() {
        let mut sv = StateVector::new(2);
        let x = [[Complex64::ZERO, Complex64::ONE], [Complex64::ONE, Complex64::ZERO]];
        sv.apply_single(0, x, 0); // |01⟩ (q0=1)
        sv.apply_swap(0, 1, 0);
        assert!(sv.amp(0b10).approx_eq(Complex64::ONE, 1e-12)); // q1=1
    }

    #[test]
    fn controlled_permutation_maps_values() {
        // 2 target qubits encode x ∈ {0..3}; perm = +1 mod 4; no controls.
        let mut sv = StateVector::new(2);
        let perm: Vec<usize> = (0..4).map(|x| (x + 1) % 4).collect();
        sv.apply_controlled_permutation(0, &[0, 1], &perm);
        assert!(sv.amp(1).approx_eq(Complex64::ONE, 1e-12)); // 0 → 1
    }

    #[test]
    fn controlled_permutation_respects_control() {
        // Control qubit 2 is |0⟩: nothing moves.
        let mut sv = StateVector::new(3);
        let perm: Vec<usize> = (0..4).map(|x| (x + 1) % 4).collect();
        sv.apply_controlled_permutation(1 << 2, &[0, 1], &perm);
        assert!(sv.amp(0).approx_eq(Complex64::ONE, 1e-12));
    }

    #[test]
    fn measure_collapses_and_normalizes() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sv = StateVector::new(2);
        sv.apply_single(0, h_matrix(), 0);
        let x = [[Complex64::ZERO, Complex64::ONE], [Complex64::ONE, Complex64::ZERO]];
        sv.apply_single(1, x, 1); // Bell
        let m0 = sv.measure(0, &mut rng);
        let m1 = sv.measure(1, &mut rng);
        assert_eq!(m0, m1, "Bell state measurements must correlate");
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_statistics_match_probabilities() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut ones = 0;
        for _ in 0..2000 {
            let mut sv = StateVector::new(1);
            sv.apply_single(0, h_matrix(), 0);
            ones += sv.measure(0, &mut rng) as usize;
        }
        let frac = ones as f64 / 2000.0;
        assert!((frac - 0.5).abs() < 0.05, "measured {frac}");
    }

    #[test]
    fn reset_forces_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let mut sv = StateVector::new(1);
            sv.apply_single(0, h_matrix(), 0);
            sv.reset(0, &mut rng);
            assert!(sv.amp(1).approx_eq(Complex64::ZERO, 1e-12));
            assert!(sv.amp(0).norm_sqr() > 0.999);
        }
    }

    #[test]
    fn parallel_pool_matches_sequential() {
        let pool = Arc::new(ThreadPool::new(4));
        let mut seq = StateVector::new(6);
        let mut par = StateVector::with_pool(6, pool);
        // A layered random-ish circuit applied to both.
        for q in 0..6 {
            seq.apply_single(q, h_matrix(), 0);
            par.apply_single(q, h_matrix(), 0);
        }
        for q in 0..5 {
            let x = [[Complex64::ZERO, Complex64::ONE], [Complex64::ONE, Complex64::ZERO]];
            seq.apply_single(q + 1, x, 1 << q);
            par.apply_single(q + 1, x, 1 << q);
            seq.phase_where((1 << q) | (1 << (q + 1)), 0, 0.3 * (q as f64 + 1.0));
            par.phase_where((1 << q) | (1 << (q + 1)), 0, 0.3 * (q as f64 + 1.0));
        }
        for (a, b) in seq.amplitudes().iter().zip(par.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn fidelity_of_identical_states_is_one() {
        let mut a = StateVector::new(3);
        let mut b = StateVector::new(3);
        a.apply_single(1, h_matrix(), 0);
        b.apply_single(1, h_matrix(), 0);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_to_zero_reuses_buffer() {
        let mut sv = StateVector::new(4);
        sv.apply_single(2, h_matrix(), 0);
        sv.reset_to_zero();
        assert_eq!(sv.amp(0), Complex64::ONE);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not a bijection")]
    fn bad_permutation_panics() {
        let mut sv = StateVector::new(2);
        sv.apply_controlled_permutation(0, &[0, 1], &[0, 0, 1, 2]);
    }
}
